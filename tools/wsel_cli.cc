/**
 * @file
 * wsel command-line interface: drive the paper's methodology from a
 * shell.
 *
 *   wsel_cli characterize [--cores K] [--insns N] [--jobs N]
 *       [--metrics-out FILE] [--trace-out FILE] [--trace-mem MIB]
 *       per-benchmark features and automatic vs Table-IV classes
 *   wsel_cli campaign --out FILE [--cores K] [--insns N]
 *       [--policies LRU,DIP,...] [--limit N] [--resume 0|1]
 *       [--jobs N] [--metrics-out FILE] [--trace-out FILE]
 *       [--trace-mem MIB]
 *       run a BADCO population campaign and save it as CSV;
 *       progress checkpoints to FILE.partial and, by default, an
 *       interrupted run resumes from it (--resume 0 restarts);
 *       --jobs N simulates cells on N worker threads (default 0 =
 *       $WSEL_JOBS, else all hardware threads; the result is
 *       bitwise identical to --jobs 1, see docs/PARALLELISM.md);
 *       --metrics-out writes the metrics snapshot as JSON and
 *       --trace-out a Chrome/Perfetto trace on exit
 *       (docs/OBSERVABILITY.md; $WSEL_METRICS and $WSEL_TRACE set
 *       the same outputs for every command);
 *       --trace-mem caps the shared trace store's resident chunk
 *       memory in MiB (default 512; $WSEL_TRACE_MEM sets the same
 *       budget, see docs/PERFORMANCE.md)
 *   wsel_cli population --out DIR [--cores K] [--insns N]
 *       [--policies LRU,DIP,...] [--shard-size CELLS] [--jobs N]
 *       [--first R] [--last R|--limit N] [--resume 0|1]
 *       [--metric IPCT|WSU|HSU|GSU] [--verbose 1]
 *       run a full-population (or rank-range) BADCO campaign,
 *       streaming cells into a sharded binary campaign_v3
 *       directory (docs/PERFORMANCE.md, "Population campaigns")
 *       with O(shard) memory, and print the streamed per-pair
 *       d(w) statistics (mean, sigma, cv, 1/cv, eq. 8 sample
 *       size, approximate stratum count); an interrupted run
 *       resumes at shard granularity (--resume 0 restarts);
 *       with --distributed N the campaign instead runs through
 *       the crash-resilient campaign service: an in-process
 *       coordinator leases shards to N spawned wsel_worker
 *       processes and --out is the content-addressed result-store
 *       root (docs/ROBUSTNESS.md, "Distributed campaigns");
 *       with --sequential 1 (and --policies Y,X) the campaign is
 *       driven by the adaptive stopping rule instead of the full
 *       population (equivalent to the adaptive command below);
 *       with --hybrid 1 it runs the mixed-fidelity campaign
 *       (equivalent to the hybrid command below)
 *   wsel_cli adaptive --out DIR [--x POL --y POL] [--metric M]
 *       [--cores K] [--insns N] [--target C] [--budget W]
 *       [--min W] [--batch W] [--jobs N]
 *       [--method random|ranked-set] [--set-size M] [--redraws N]
 *       [--wall-clock SECS] [--resume 0|1] [--seed S]
 *       sequential campaign: simulate deterministic batches of W
 *       workloads and stop when the eq. 5 confidence in the
 *       leading policy crosses the target (default 0.977) or the
 *       budget runs out (docs/SAMPLING.md); --method ranked-set
 *       spends a cheap 2B-cell pre-pass to rank candidates; an
 *       interrupted run resumes bitwise identically (--resume 0
 *       restarts)
 *   wsel_cli hybrid --out DIR [--x POL --y POL|--policies Y,X]
 *       [--metric M] [--cores K] [--insns N] [--limit N]
 *       [--first R] [--last R] [--shard-size CELLS] [--jobs N]
 *       [--quantile Q] [--budget-frac F] [--threshold T]
 *       [--batch-rows W] [--profile FILE] [--calibrate W]
 *       [--resume 0|1] [--seed S]
 *       error-bounded mixed-fidelity campaign (docs/FIDELITY.md):
 *       BADCO sweep, then cells whose d(w) error interval
 *       straddles --threshold escalate to the detailed simulator
 *       (at most --budget-frac of the population); the report
 *       separates eq. 5 sampling error from model error; the
 *       per-benchmark error profile is calibrated automatically
 *       from a --calibrate W detailed-vs-BADCO pair when missing
 *       and learns online from every escalated cell
 *   wsel_cli serve submit --socket PATH [--wait 0|1]
 *       [campaign options as for population]
 *       [--escalate-budget F] [--escalate-quantile Q]
 *       [--escalate-metric M]
 *       submit a campaign to a running wsel_serve daemon and (by
 *       default) wait for it; with --escalate-budget F > 0 the
 *       coordinator, after the BADCO sweep commits, re-leases the
 *       shards holding suspect rows at detailed fidelity using the
 *       error profile in its cache dir (docs/FIDELITY.md); serve
 *       status --socket PATH --id N polls one campaign, serve
 *       metrics --socket PATH dumps the daemon's metrics snapshot
 *       as JSON, and serve stop --socket PATH --id N halts a
 *       queued or running campaign (in-flight shards finish and
 *       stay in the store for dedup)
 *   wsel_cli analyze --campaign FILE --x POL --y POL
 *       [--metric IPCT|WSU|HSU|GSU]
 *       cv, 1/cv, eq.(8) sample size, §VII regime, CI estimates
 *   wsel_cli select --campaign FILE --x POL --y POL --size W
 *       [--metric M] [--method random|balanced|bench|workload]
 *       emit a workload sample for a detailed simulator
 *   wsel_cli confidence --campaign FILE --x POL --y POL --size W
 *       [--metric M] [--draws D]
 *       model vs empirical confidence at the given sample size
 *   wsel_cli simulate --workload b1+b2+... [--policy LRU]
 *       [--insns N] [--detailed 1]
 *       run one multiprogram workload through the simulators
 *   wsel_cli report --campaign FILE --out FILE.md
 *       full pairwise markdown analysis of a saved campaign
 *   wsel_cli cache verify [--dir DIR] [--quarantine 0|1]
 *       validate every campaign and BADCO-model cache file in the
 *       cache directory; with --quarantine 1, rename damaged files
 *       to *.corrupt
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "badco/badco_model.hh"
#include "core/classify/classify.hh"
#include "obs/obs.hh"
#include "core/report/report.hh"
#include "core/confidence/confidence.hh"
#include "core/sampling/sampling.hh"
#include "fidelity/calibrate.hh"
#include "fidelity/error_profile.hh"
#include "fidelity/persist_fidelity.hh"
#include "serve/coordinator.hh"
#include "serve/protocol.hh"
#include "serve/spawn.hh"
#include "serve/worker.hh"
#include "sim/adaptive.hh"
#include "sim/campaign.hh"
#include "sim/hybrid.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "sim/characterize.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "sim/population.hh"
#include "trace/trace_store.hh"

namespace
{

using namespace wsel;

/** Minimal --key value argument parser. */
class Args
{
  public:
    /** Parse --key value pairs from argv[start] onward. */
    Args(int argc, char **argv, int start = 2)
    {
        for (int i = start; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                WSEL_FATAL("expected --option, got '" << key << "'");
            key = key.substr(2);
            if (i + 1 >= argc)
                WSEL_FATAL("missing value for --" << key);
            kv_[key] = argv[++i];
        }
    }

    std::string
    get(const std::string &key, const std::string &def) const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? def : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t def) const
    {
        auto it = kv_.find(key);
        return it == kv_.end()
                   ? def
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    bool has(const std::string &key) const
    {
        return kv_.count(key) != 0;
    }

  private:
    std::map<std::string, std::string> kv_;
};

double
argF64(const Args &args, const std::string &key, double def)
{
    return args.has(key)
               ? std::strtod(args.get(key, "").c_str(), nullptr)
               : def;
}

std::vector<PolicyKind>
parsePolicyList(const std::string &s)
{
    std::vector<PolicyKind> out;
    std::string cur;
    for (char c : s + ",") {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(parsePolicyKind(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    return out;
}

/**
 * Observability for the simulation commands: metrics are always
 * collected (the verbose campaign summary prints the scheduler
 * section), and --metrics-out/--trace-out route the end-of-run
 * snapshot and trace (docs/OBSERVABILITY.md).
 */
void
setupObs(const Args &args)
{
    obs::enableMetrics();
    if (args.has("metrics-out"))
        obs::setMetricsOutput(args.get("metrics-out", ""));
    if (args.has("trace-out")) {
        if (!obs::tracingEnabled())
            obs::enableTracing();
        obs::setTraceOutput(args.get("trace-out", ""));
    }
    if (args.has("trace-mem"))
        TraceStore::global().setBudgetBytes(
            args.getU64("trace-mem", 512) << 20);
}

int
cmdCharacterize(const Args &args)
{
    setupObs(args);
    const std::uint32_t cores =
        static_cast<std::uint32_t>(args.getU64("cores", 4));
    const std::uint64_t insns = args.getU64("insns", 100000);
    const auto &suite = spec2006Suite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);

    const std::size_t jobs =
        static_cast<std::size_t>(args.getU64("jobs", 0));

    std::printf("characterizing %zu benchmarks (%llu uops, %u-core "
                "uncore)...\n\n",
                suite.size(),
                static_cast<unsigned long long>(insns), cores);
    const auto feats = characterizeSuite(suite, CoreConfig{}, ucfg,
                                         insns, 1, jobs);

    Rng rng(1);
    const auto auto_cls = classifyByFeatures(
        featureMatrix(feats), 3, BenchmarkFeatures::kLlcMpkiColumn,
        rng);

    std::printf("%-12s %6s %8s %8s %7s %8s %8s %8s\n", "benchmark",
                "IPC", "dl1MPKI", "llcMPKI", "brMPR", "tableIV",
                "mpki-cls", "auto-cls");
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &f = feats[i];
        std::printf("%-12s %6.3f %8.2f %8.2f %6.1f%% %8s %8s %8u\n",
                    f.name.c_str(), f.ipc, f.dl1Mpki, f.llcMpki,
                    100.0 * f.branchMispredictRate,
                    toString(suite[i].paperClass).c_str(),
                    toString(classifyMpki(f.llcMpki)).c_str(),
                    auto_cls[i]);
    }
    return 0;
}

int
cmdCampaign(const Args &args)
{
    setupObs(args);
    if (!args.has("out"))
        WSEL_FATAL("campaign requires --out FILE");
    const std::uint32_t cores =
        static_cast<std::uint32_t>(args.getU64("cores", 4));
    const std::uint64_t insns = args.getU64("insns", 100000);
    const std::size_t limit =
        static_cast<std::size_t>(args.getU64("limit", 0));
    const auto policies = parsePolicyList(
        args.get("policies", "LRU,RND,FIFO,DIP,DRRIP"));

    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    WorkloadSet workloads;
    if (limit == 0 || limit >= pop.size()) {
        // Rank-based set: the full population without an O(N)
        // vector of Workloads.
        workloads = WorkloadSet::fullPopulation(pop);
    } else {
        Rng rng(2013);
        std::vector<std::uint64_t> ranks;
        ranks.reserve(limit);
        for (std::size_t i :
             rng.sampleWithoutReplacement(
                 static_cast<std::size_t>(pop.size()), limit))
            ranks.push_back(i);
        workloads = WorkloadSet::fromRanks(pop, std::move(ranks));
    }

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, insns, ucfg.llcHitLatency,
                          defaultCacheDir());
    CampaignOptions opts;
    opts.verbose = true;
    // 0 = auto: $WSEL_JOBS when set, else all hardware threads.
    opts.jobs = static_cast<std::size_t>(args.getU64("jobs", 0));
    // Checkpoint each completed (policy, workload) cell so a killed
    // campaign can pick up where it left off (--resume 0 restarts).
    const std::string out = args.get("out", "");
    const std::string journal = out + ".partial";
    if (args.getU64("resume", 1) == 0) {
        std::error_code ec;
        std::filesystem::remove(journal, ec);
    }
    opts.journalPath = journal;
    const Campaign c = runBadcoCampaign(workloads, policies, cores,
                                        insns, store, suite, opts);
    c.save(out);
    {
        std::error_code ec;
        std::filesystem::remove(journal, ec);
    }
    std::printf("saved %zu workloads x %zu policies to %s "
                "(%.1f MIPS)\n",
                c.workloads.size(), c.policies.size(), out.c_str(),
                c.mips());
    return 0;
}

/**
 * CampaignSpec from the shared population/campaign options: the
 * wire-level description a coordinator and its workers rebuild the
 * campaign context from.
 */
serve::CampaignSpec
campaignSpecFromArgs(const Args &args)
{
    serve::CampaignSpec spec;
    spec.cores =
        static_cast<std::uint32_t>(args.getU64("cores", 4));
    spec.targetUops = args.getU64("insns", 100000);
    spec.seed = args.getU64("seed", 1);
    const auto policies = parsePolicyList(
        args.get("policies", "LRU,RND,FIFO,DIP,DRRIP"));
    for (PolicyKind p : policies)
        spec.policies.push_back(toString(p));
    const auto &suite = spec2006Suite();
    for (const BenchmarkProfile &p : suite)
        spec.benchmarks.push_back(p.name);
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), spec.cores);
    spec.firstRank = args.getU64("first", 0);
    spec.lastRank = args.getU64("last", 0);
    if (args.has("limit") && !args.has("last"))
        spec.lastRank = std::min<std::uint64_t>(
            pop.size(), spec.firstRank + args.getU64("limit", 0));
    const std::uint64_t shard_cells =
        args.getU64("shard-size", 64 * 1024);
    spec.shardRows = std::max<std::uint64_t>(
        1, shard_cells / std::max<std::size_t>(1, policies.size()));
    // Mixed-fidelity escalation (docs/FIDELITY.md): with
    // --escalate-budget F > 0 the coordinator re-leases suspect
    // shards at detailed fidelity after the BADCO sweep commits.
    spec.fidelity =
        static_cast<std::uint32_t>(args.getU64("fidelity", 0));
    spec.escalateBudget = argF64(args, "escalate-budget", 0.0);
    spec.escalateQuantile =
        argF64(args, "escalate-quantile", 0.9);
    spec.escalateMetric =
        args.get("escalate-metric", args.get("metric", "IPCT"));
    return spec;
}

void
printServeStatus(std::uint64_t id, const serve::StatusMsg &st)
{
    std::printf("campaign %llu: %s  (%llu/%llu shards, "
                "%llu deduped, %llu quarantined, %llu leases "
                "active)\n",
                static_cast<unsigned long long>(id),
                serve::toString(st.state),
                static_cast<unsigned long long>(st.shardsDone),
                static_cast<unsigned long long>(st.shardsTotal),
                static_cast<unsigned long long>(st.shardsDeduped),
                static_cast<unsigned long long>(
                    st.shardsQuarantined),
                static_cast<unsigned long long>(st.leasesActive));
    if (!st.dir.empty())
        std::printf("  dir: %s\n", st.dir.c_str());
    if (!st.message.empty())
        std::printf("  %s\n", st.message.c_str());
}

/**
 * `population --distributed N`: run the campaign through the
 * coordinator/worker service instead of in-process threads — an
 * in-process coordinator loop plus N spawned wsel_worker
 * processes.  --out is the result-store ROOT; the campaign lands
 * in a content-addressed directory under it (printed on
 * completion), so resubmitting the same campaign — or an
 * overlapping one — reuses every shard already present.
 */
int
cmdPopulationDistributed(const Args &args)
{
    setupObs(args);
    if (!args.has("out"))
        WSEL_FATAL("population requires --out DIR (the result-"
                   "store root in --distributed mode)");
    const std::size_t nworkers =
        static_cast<std::size_t>(args.getU64("distributed", 4));
    if (nworkers == 0)
        WSEL_FATAL("--distributed needs at least 1 worker");

    const serve::CampaignSpec spec = campaignSpecFromArgs(args);
    serve::CoordinatorOptions copts;
    copts.socketPath =
        args.get("socket", "/tmp/wsel-serve-" +
                               std::to_string(::getpid()) +
                               ".sock");
    copts.storeRoot = args.get("out", "");
    copts.cacheDir = defaultCacheDir();
    copts.jobs = std::max<std::size_t>(
        1, static_cast<std::size_t>(args.getU64("jobs", 1)));
    copts.lease.ttl =
        std::chrono::milliseconds(args.getU64("ttl-ms", 2000));
    copts.exitWhenIdle = true;

    // Resolve the worker binary before starting anything that
    // needs cleanup; a missing binary is a plain fatal error.
    const std::string worker_bin = serve::findWorkerBinary();

    serve::Coordinator coordinator(copts);
    std::thread loop([&coordinator] {
        try {
            coordinator.run();
        } catch (const std::exception &e) {
            warn(std::string("coordinator died: ") + e.what());
        }
    });

    int rc = 1;
    std::vector<pid_t> workers;
    try {
        for (std::size_t i = 0; i < nworkers; ++i)
            workers.push_back(serve::spawnProcess(
                {worker_bin, "--socket", copts.socketPath,
                 "--cache-dir", copts.cacheDir}));
        serve::Client client(copts.socketPath);
        const std::uint64_t id = client.submit(spec);
        std::printf("campaign %llu submitted to %zu workers\n",
                    static_cast<unsigned long long>(id),
                    nworkers);
        const serve::StatusMsg st = client.waitFinished(id);
        printServeStatus(id, st);
        rc = st.state == serve::CampaignState::Done ? 0 : 1;
        // Client goes out of scope here; the idle coordinator
        // exits and shuts the workers down.
    } catch (...) {
        coordinator.requestStop();
        for (pid_t pid : workers)
            (void)serve::waitProcess(pid);
        loop.join();
        throw;
    }
    for (pid_t pid : workers)
        (void)serve::waitProcess(pid);
    loop.join();
    return rc;
}

int
cmdServe(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: wsel_cli serve <submit|status|"
                     "metrics|stop> --socket PATH ...\n");
        return 2;
    }
    const std::string sub = argv[2];
    const Args args(argc, argv, 3);
    const std::string socket = args.get("socket", "");
    if (socket.empty())
        WSEL_FATAL("serve " << sub << " requires --socket PATH");
    serve::Client client(socket);
    if (sub == "submit") {
        const std::uint64_t id =
            client.submit(campaignSpecFromArgs(args));
        std::printf("campaign %llu accepted\n",
                    static_cast<unsigned long long>(id));
        if (args.getU64("wait", 1) != 0) {
            const serve::StatusMsg st = client.waitFinished(id);
            printServeStatus(id, st);
            return st.state == serve::CampaignState::Done ? 0 : 1;
        }
        return 0;
    }
    if (sub == "status") {
        if (!args.has("id"))
            WSEL_FATAL("serve status requires --id N");
        const std::uint64_t id = args.getU64("id", 0);
        printServeStatus(id, client.status(id));
        return 0;
    }
    if (sub == "metrics") {
        std::printf("%s\n", client.metricsJson().c_str());
        return 0;
    }
    if (sub == "stop") {
        if (!args.has("id"))
            WSEL_FATAL("serve stop requires --id N");
        const std::uint64_t id = args.getU64("id", 0);
        const std::string msg = client.stop(id);
        std::printf("campaign %llu: %s\n",
                    static_cast<unsigned long long>(id),
                    msg.c_str());
        if (args.getU64("wait", 0) != 0)
            printServeStatus(id, client.waitFinished(id));
        return 0;
    }
    std::fprintf(stderr, "unknown serve subcommand '%s'\n",
                 sub.c_str());
    return 2;
}

/**
 * `adaptive` (and `population --sequential 1`): drive the campaign
 * by the live stopping rule instead of a fixed cell count
 * (docs/SAMPLING.md).
 */
int
cmdAdaptive(const Args &args)
{
    setupObs(args);
    if (!args.has("out"))
        WSEL_FATAL("adaptive requires --out DIR");
    const std::string out = args.get("out", "");
    const std::uint32_t cores =
        static_cast<std::uint32_t>(args.getU64("cores", 4));
    const std::uint64_t insns = args.getU64("insns", 100000);
    const ThroughputMetric metric =
        parseMetric(args.get("metric", "IPCT"));

    // Either --x/--y, or the population command's --policies Y,X
    // (oriented as its pair labels: "first outperforms second").
    PolicyKind x = PolicyKind::FIFO;
    PolicyKind y = PolicyKind::LRU;
    if (args.has("policies")) {
        const auto pol =
            parsePolicyList(args.get("policies", ""));
        if (pol.size() != 2)
            WSEL_FATAL("a sequential campaign compares exactly two "
                       "policies (--policies Y,X; got "
                       << pol.size() << ")");
        y = pol[0];
        x = pol[1];
    } else {
        x = parsePolicyKind(args.get("x", "FIFO"));
        y = parsePolicyKind(args.get("y", "LRU"));
    }

    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);

    AdaptiveOptions opts;
    opts.seed = args.getU64("seed", 1);
    opts.jobs = static_cast<std::size_t>(args.getU64("jobs", 0));
    opts.batchWorkloads = args.getU64("batch", 64);
    opts.stop.targetConfidence = argF64(args, "target", 0.977);
    opts.stop.minWorkloads = args.getU64("min", 32);
    opts.stop.maxWorkloads = args.getU64("budget", 0);
    opts.wallClockBudget = argF64(args, "wall-clock", 0.0);
    opts.method =
        parseAdaptiveMethod(args.get("method", "random"));
    opts.setSize =
        static_cast<std::size_t>(args.getU64("set-size", 5));
    opts.subsampleRedraws =
        static_cast<std::size_t>(args.getU64("redraws", 256));
    opts.resume = args.getU64("resume", 1) != 0;
    opts.verbose = args.getU64("verbose", 0) != 0;
    opts.batchCells =
        static_cast<std::uint32_t>(args.getU64("batch-cells", 0));
    opts.batchWave =
        static_cast<std::uint32_t>(args.getU64("batch-wave", 0));

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, insns, ucfg.llcHitLatency,
                          defaultCacheDir());

    std::printf("adaptive campaign: %s vs %s (%s, %u cores, "
                "population %llu, method %s, target %.3f) -> %s\n",
                toString(y).c_str(), toString(x).c_str(),
                toString(metric).c_str(), cores,
                static_cast<unsigned long long>(pop.size()),
                toString(opts.method), opts.stop.targetConfidence,
                out.c_str());

    const AdaptiveResult r = runAdaptiveCampaign(
        pop, x, y, metric, insns, store, suite, out, opts);

    const std::string winner =
        r.verdict.yWins ? toString(y) : toString(x);
    std::printf("\nstopped: %s after %llu workloads "
                "(%llu batches)\n",
                toString(r.verdict.reason),
                static_cast<unsigned long long>(
                    r.verdict.workloads),
                static_cast<unsigned long long>(
                    r.decision.batches));
    std::printf("verdict: %s leads with confidence %.4f "
                "(cv %.3f, mean d %+.6f)\n",
                winner.c_str(), r.verdict.confidence, r.verdict.cv,
                r.d.mean());
    if (r.subsample.redraws > 0)
        std::printf("subsample cross-check: %zu redraws of %zu -> "
                    "win rate %.4f, sigma of means %.6f\n",
                    r.subsample.redraws, r.subsample.subsampleSize,
                    r.subsample.confidence,
                    r.subsample.stddevOfMeans);
    std::printf("cells: %llu simulated (%llu resumed, %llu "
                "pre-pass), %llu of the %llu-workload budget "
                "saved\n",
                static_cast<unsigned long long>(r.cellsSimulated),
                static_cast<unsigned long long>(r.cellsResumed),
                static_cast<unsigned long long>(r.prepassCells),
                static_cast<unsigned long long>(r.cellsSaved()),
                static_cast<unsigned long long>(
                    r.budgetWorkloads));
    return 0;
}

/**
 * `hybrid` (and `population --hybrid 1`): an error-bounded
 * mixed-fidelity X-vs-Y campaign (docs/FIDELITY.md).  A BADCO sweep
 * runs first; cells whose d(w) error interval straddles the
 * decision boundary are re-run on the detailed simulator, capped by
 * --budget-frac, and the final report separates sampling error from
 * model error.  The error profile lives beside the model cache
 * (--profile overrides) and is calibrated automatically from a
 * --calibrate W workload detailed-vs-BADCO pair when missing.
 */
int
cmdHybrid(const Args &args)
{
    setupObs(args);
    if (!args.has("out"))
        WSEL_FATAL("hybrid requires --out DIR");
    const std::string out = args.get("out", "");
    const std::uint32_t cores =
        static_cast<std::uint32_t>(args.getU64("cores", 4));
    const std::uint64_t insns = args.getU64("insns", 100000);
    const ThroughputMetric metric =
        parseMetric(args.get("metric", "IPCT"));

    // Same orientation as adaptive: --x/--y, or --policies Y,X.
    PolicyKind x = PolicyKind::FIFO;
    PolicyKind y = PolicyKind::LRU;
    if (args.has("policies")) {
        const auto pol =
            parsePolicyList(args.get("policies", ""));
        if (pol.size() != 2)
            WSEL_FATAL("a hybrid campaign compares exactly two "
                       "policies (--policies Y,X; got "
                       << pol.size() << ")");
        y = pol[0];
        x = pol[1];
    } else {
        x = parsePolicyKind(args.get("x", "FIFO"));
        y = parsePolicyKind(args.get("y", "LRU"));
    }

    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);

    HybridOptions opts;
    opts.seed = args.getU64("seed", 1);
    opts.jobs = static_cast<std::size_t>(args.getU64("jobs", 0));
    opts.shardCells = static_cast<std::size_t>(
        args.getU64("shard-size", 64 * 1024));
    opts.firstRank = args.getU64("first", 0);
    opts.lastRank = args.getU64("last", 0);
    if (args.has("limit") && !args.has("last"))
        opts.lastRank = std::min<std::uint64_t>(
            pop.size(),
            opts.firstRank + args.getU64("limit", 0));
    opts.resume = args.getU64("resume", 1) != 0;
    opts.verbose = args.getU64("verbose", 0) != 0;
    opts.quantile = argF64(args, "quantile", 0.95);
    opts.budgetFraction = argF64(args, "budget-frac", 0.25);
    opts.threshold = argF64(args, "threshold", 0.0);
    opts.batchRows = args.getU64("batch-rows", 64);
    opts.batchCells =
        static_cast<std::uint32_t>(args.getU64("batch-cells", 0));
    opts.batchWave =
        static_cast<std::uint32_t>(args.getU64("batch-wave", 0));

    const std::string profile_path = args.get(
        "profile", fidelity::errorProfilePath(defaultCacheDir()));
    const std::uint64_t suite_hash =
        fidelity::ErrorProfile::hashSuite(suite);
    fidelity::ErrorProfile profile;
    bool have_profile = false;
    if (std::filesystem::exists(profile_path)) {
        try {
            profile = fidelity::readErrorProfile(profile_path);
            have_profile = profile.suiteHash() == suite_hash;
            if (!have_profile)
                std::printf("error profile %s is for a different "
                            "suite; re-calibrating\n",
                            profile_path.c_str());
        } catch (const persist::CacheInvalid &e) {
            const std::string moved =
                persist::quarantineFile(profile_path);
            warn("corrupt error profile " + profile_path + " (" +
                 e.what() + ")" +
                 (moved.empty() ? "" : "; quarantined to " + moved) +
                 "; re-calibrating");
        }
    }
    if (!have_profile) {
        const std::size_t calib_w = static_cast<std::size_t>(
            args.getU64("calibrate", 24));
        std::printf("calibrating error profile: %zu workloads, "
                    "detailed vs BADCO (%u cores)...\n",
                    calib_w, cores);
        profile = fidelity::calibrateErrorProfile(
            cores, insns, calib_w, opts.seed, suite, {x, y},
            defaultCacheDir(), opts.jobs, opts.verbose);
        fidelity::writeErrorProfile(profile_path, profile);
        std::printf("calibrated from %llu samples -> %s\n",
                    static_cast<unsigned long long>(
                        profile.totalSamples()),
                    profile_path.c_str());
    }

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, insns, ucfg.llcHitLatency,
                          defaultCacheDir());

    std::printf("hybrid campaign: %s vs %s (%s, %u cores, "
                "quantile %.2f, budget %.0f%%) -> %s\n",
                toString(y).c_str(), toString(x).c_str(),
                toString(metric).c_str(), cores, opts.quantile,
                100.0 * opts.budgetFraction, out.c_str());

    const HybridResult r = runHybridCampaign(
        pop, x, y, metric, insns, store, suite, profile, out,
        opts);
    if (r.profileUpdated)
        fidelity::writeErrorProfile(profile_path, profile);

    const fidelity::HybridReportRecord &rep = r.report;
    std::printf("\n%llu workloads, %llu escalated to detailed "
                "(%.1f%%; %llu cells simulated, %llu resumed)\n",
                static_cast<unsigned long long>(rep.workloads),
                static_cast<unsigned long long>(rep.escalated),
                100.0 * rep.escalationFraction,
                static_cast<unsigned long long>(
                    r.detailedCellsSimulated),
                static_cast<unsigned long long>(
                    r.detailedCellsResumed));
    std::printf("mean d = %+.6f  sigma = %.6f  cv = %.3f  "
                "eq.5 confidence = %.4f\n",
                rep.meanD, rep.sigma, rep.cv, rep.confidence);
    std::printf("model error in [%+.6f, %+.6f]; combined bound "
                "[%+.6f, %+.6f]\n",
                rep.modelLo, rep.modelHi, rep.comboLo, rep.comboHi);
    const bool decisive = rep.comboLo > opts.threshold ||
                          rep.comboHi < opts.threshold;
    std::printf("verdict: %s leads%s\n",
                (rep.yWins ? toString(y) : toString(x)).c_str(),
                decisive ? "" : " (combined bound straddles the "
                                "threshold; not decisive)");
    return 0;
}

int
cmdPopulation(const Args &args)
{
    if (args.getU64("sequential", 0) != 0)
        return cmdAdaptive(args);
    if (args.getU64("hybrid", 0) != 0)
        return cmdHybrid(args);
    if (args.has("distributed"))
        return cmdPopulationDistributed(args);
    setupObs(args);
    if (!args.has("out"))
        WSEL_FATAL("population requires --out DIR");
    const std::string out = args.get("out", "");
    const std::uint32_t cores =
        static_cast<std::uint32_t>(args.getU64("cores", 4));
    const std::uint64_t insns = args.getU64("insns", 100000);
    const auto policies = parsePolicyList(
        args.get("policies", "LRU,RND,FIFO,DIP,DRRIP"));
    const ThroughputMetric metric =
        parseMetric(args.get("metric", "IPCT"));

    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);

    PopulationOptions opts;
    opts.seed = args.getU64("seed", 1);
    opts.jobs = static_cast<std::size_t>(args.getU64("jobs", 0));
    opts.shardCells = static_cast<std::size_t>(
        args.getU64("shard-size", 64 * 1024));
    opts.firstRank = args.getU64("first", 0);
    opts.lastRank = args.getU64("last", 0);
    if (args.has("limit") && !args.has("last"))
        opts.lastRank = std::min<std::uint64_t>(
            pop.size(),
            opts.firstRank + args.getU64("limit", 0));
    opts.resume = args.getU64("resume", 1) != 0;
    opts.verbose = args.getU64("verbose", 0) != 0;
    opts.batchCells =
        static_cast<std::uint32_t>(args.getU64("batch-cells", 0));
    opts.batchWave =
        static_cast<std::uint32_t>(args.getU64("batch-wave", 0));

    // Every ordered policy pair i<j, oriented "i outperforms j".
    std::vector<PopulationPairSpec> pairs;
    for (std::size_t i = 0; i < policies.size(); ++i) {
        for (std::size_t j = i + 1; j < policies.size(); ++j) {
            PopulationPairSpec s;
            s.y = i;
            s.x = j;
            s.metric = metric;
            s.label = toString(policies[i]) + ">" +
                      toString(policies[j]);
            pairs.push_back(std::move(s));
        }
    }

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, insns, ucfg.llcHitLatency,
                          defaultCacheDir());

    const std::uint64_t last =
        opts.lastRank == 0 ? pop.size() : opts.lastRank;
    std::printf("population campaign: %llu of %llu workloads x "
                "%zu policies (%u cores) -> %s\n",
                static_cast<unsigned long long>(last -
                                                opts.firstRank),
                static_cast<unsigned long long>(pop.size()),
                policies.size(), cores, out.c_str());

    const PopulationResult r = runBadcoPopulationCampaign(
        pop, policies, insns, store, suite, pairs, out, opts);

    std::printf("\n%-12s %10s %10s %8s %8s %8s %7s\n", "pair",
                "mean d", "sigma", "cv", "1/cv", "eq8-W", "strata");
    for (const PopulationPairSummary &p : r.pairs) {
        const StreamedWorkloadStrata strata(
            p.sketch, p.d.count(), WorkloadStrataConfig{});
        std::printf("%-12s %+10.6f %10.6f %8.3f %8.3f %8zu %7zu\n",
                    p.spec.label.c_str(), p.d.mean(),
                    p.d.stddevPopulation(), p.cv(), p.inverseCv(),
                    requiredSampleSize(p.cv()),
                    strata.strataCount());
    }
    std::printf("\n%llu cells simulated (%llu resumed), "
                "%llu shards written (%llu reused), "
                "%.0f cells/sec, %.1f MiB\n",
                static_cast<unsigned long long>(r.cellsSimulated),
                static_cast<unsigned long long>(r.cellsResumed),
                static_cast<unsigned long long>(r.shardsWritten),
                static_cast<unsigned long long>(r.shardsResumed),
                r.cellsPerSec(),
                static_cast<double>(r.manifest.rows() *
                                    policies.size() * cores * 8) /
                    (1024.0 * 1024.0));
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    if (argc < 3 || std::string(argv[2]) != "verify") {
        std::fprintf(stderr,
                     "usage: wsel_cli cache verify [--dir DIR] "
                     "[--quarantine 0|1]\n");
        return 2;
    }
    const Args args(argc, argv, 3);
    const std::string dir = args.get("dir", defaultCacheDir());
    if (dir.empty())
        WSEL_FATAL("no cache directory configured "
                   "(WSEL_CACHE_DIR is empty)");
    const bool quarantine = args.getU64("quarantine", 0) != 0;
    std::size_t ok = 0, corrupt = 0, journals = 0;
    std::vector<std::filesystem::path> entries;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec))
        entries.push_back(it->path());
    if (ec)
        WSEL_FATAL("cannot read cache directory '" << dir
                   << "': " << ec.message());
    std::sort(entries.begin(), entries.end());
    for (const auto &path : entries) {
        const std::string name = path.filename().string();
        const std::string p = path.string();
        if (name.find(".corrupt") != std::string::npos ||
            name.find(".tmp.") != std::string::npos ||
            (name.size() >= 5 &&
             name.compare(name.size() - 5, 5, ".lock") == 0))
            continue;
        if (name.size() >= 8 &&
            name.compare(name.size() - 8, 8, ".partial") == 0) {
            ++journals;
            std::printf("JOURNAL %s (interrupted campaign; will "
                        "resume on next run)\n",
                        p.c_str());
            continue;
        }
        const bool is_campaign =
            name.rfind("campaign_", 0) == 0 &&
            name.size() >= 4 &&
            name.compare(name.size() - 4, 4, ".csv") == 0;
        const bool is_model = name.rfind("badco_", 0) == 0 &&
                              name.size() >= 4 &&
                              name.compare(name.size() - 4, 4,
                                           ".bin") == 0;
        if (!is_campaign && !is_model)
            continue;
        std::string why;
        try {
            if (is_campaign) {
                const Campaign c = Campaign::load(p);
                std::printf("OK      %s (%s, %u cores, %zu policies "
                            "x %zu workloads%s)\n",
                            p.c_str(), c.simulator.c_str(), c.cores,
                            c.policies.size(), c.workloads.size(),
                            c.formatVersion < 2 ? ", legacy v1"
                                                : "");
            } else {
                const BadcoModel m = BadcoModel::loadFile(p);
                std::printf("OK      %s (model '%s', %zu nodes)\n",
                            p.c_str(), m.benchmark.c_str(),
                            m.nodes.size());
            }
            ++ok;
            continue;
        } catch (const FatalError &e) {
            why = e.what();
        }
        ++corrupt;
        if (quarantine) {
            const std::string moved = persist::quarantineFile(p);
            std::printf("CORRUPT %s -> %s\n  %s\n", p.c_str(),
                        moved.empty() ? "(quarantine failed)"
                                      : moved.c_str(),
                        why.c_str());
        } else {
            std::printf("CORRUPT %s\n  %s\n", p.c_str(),
                        why.c_str());
        }
    }
    std::printf("%zu ok, %zu corrupt, %zu resumable journal%s\n",
                ok, corrupt, journals, journals == 1 ? "" : "s");
    return corrupt == 0 ? 0 : 1;
}

struct PairData
{
    Campaign campaign;
    ThroughputMetric metric;
    std::vector<double> tx, ty, d;
};

PairData
loadPair(const Args &args)
{
    if (!args.has("campaign"))
        WSEL_FATAL("this command requires --campaign FILE");
    PairData p{Campaign::load(args.get("campaign", "")),
               parseMetric(args.get("metric", "IPCT")),
               {},
               {},
               {}};
    const PolicyKind x = parsePolicyKind(args.get("x", "LRU"));
    const PolicyKind y = parsePolicyKind(args.get("y", "DIP"));
    p.tx = p.campaign.perWorkloadThroughputs(
        p.campaign.policyIndex(x), p.metric);
    p.ty = p.campaign.perWorkloadThroughputs(
        p.campaign.policyIndex(y), p.metric);
    p.d = perWorkloadDifferences(p.metric, p.tx, p.ty);
    return p;
}

int
cmdAnalyze(const Args &args)
{
    const PairData p = loadPair(args);
    const DifferenceStats ds = differenceStats(p.d);
    std::printf("workloads: %zu   metric: %s\n", p.tx.size(),
                toString(p.metric).c_str());
    std::printf("mean d(w) = %+.6f  sigma = %.6f  cv = %.3f  "
                "1/cv = %.3f\n",
                ds.mu, ds.sigma, ds.cv, ds.inverseCv());
    std::printf("eq.(8) random-sample size: %zu\n",
                requiredSampleSize(ds.cv));
    switch (classifyCv(ds.cv)) {
      case CvRegime::Equivalent:
        std::printf("regime: |cv| > 10 -> machines are "
                    "throughput-equivalent\n");
        break;
      case CvRegime::RandomSampling:
        std::printf("regime: |cv| < 2 -> (balanced) random "
                    "sampling suffices\n");
        break;
      case CvRegime::Stratification:
        std::printf("regime: 2 <= |cv| <= 10 -> use workload "
                    "stratification\n");
        break;
    }
    // Whole-population estimates with CIs for both configs.
    Sample whole;
    whole.strata.resize(1);
    whole.strata[0].weight = 1.0;
    for (std::size_t i = 0; i < p.tx.size(); ++i)
        whole.strata[0].indices.push_back(i);
    const auto ex = estimateThroughput(whole, p.metric, p.tx);
    const auto ey = estimateThroughput(whole, p.metric, p.ty);
    std::printf("T_x = %.4f [%.4f, %.4f]   T_y = %.4f "
                "[%.4f, %.4f]\n",
                ex.value, ex.lo, ex.hi, ey.value, ey.lo, ey.hi);
    return 0;
}

int
cmdSelect(const Args &args)
{
    const PairData p = loadPair(args);
    const std::size_t size = args.getU64("size", 30);
    const std::string method = args.get("method", "workload");
    Rng rng(args.getU64("seed", 1));

    std::unique_ptr<Sampler> sampler;
    if (method == "random") {
        sampler = makeRandomSampler(p.tx.size());
    } else if (method == "balanced") {
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(
                p.campaign.benchmarks.size()),
            p.campaign.cores);
        if (p.campaign.workloads.size() != pop.size())
            WSEL_FATAL("balanced sampling needs a full-population "
                       "campaign");
        std::vector<std::size_t> identity(pop.size());
        for (std::size_t i = 0; i < identity.size(); ++i)
            identity[i] = i;
        sampler = makeBalancedRandomSampler(pop, identity);
    } else if (method == "bench") {
        std::vector<std::uint32_t> cls;
        for (const auto &name : p.campaign.benchmarks)
            cls.push_back(static_cast<std::uint32_t>(
                findProfile(name).paperClass));
        sampler = makeBenchmarkStratifiedSampler(
            p.campaign.workloads, cls, 3);
    } else if (method == "workload") {
        sampler = makeWorkloadStratifiedSampler(p.d, {});
    } else {
        WSEL_FATAL("unknown method '" << method << "'");
    }

    const Sample s = sampler->draw(size, rng);
    std::printf("# method=%s size=%zu metric=%s\n",
                sampler->name().c_str(), s.totalSize(),
                toString(p.metric).c_str());
    std::printf("stratum,weight,benchmarks\n");
    for (std::size_t h = 0; h < s.strata.size(); ++h) {
        for (std::size_t idx : s.strata[h].indices) {
            const Workload &w = p.campaign.workloads[idx];
            std::printf("%zu,%.0f,", h, s.strata[h].weight);
            for (std::size_t k = 0; k < w.size(); ++k)
                std::printf("%s%s", k ? "+" : "",
                            p.campaign.benchmarks[w[k]].c_str());
            std::printf("\n");
        }
    }
    return 0;
}

int
cmdConfidence(const Args &args)
{
    const PairData p = loadPair(args);
    const std::size_t size = args.getU64("size", 30);
    const std::size_t draws = args.getU64("draws", 2000);
    const DifferenceStats ds = differenceStats(p.d);
    Rng rng(args.getU64("seed", 1));
    auto rnd = makeRandomSampler(p.tx.size());
    auto strat = makeWorkloadStratifiedSampler(p.d, {});
    std::printf("W=%zu  model(eq.5)=%.4f  random=%.4f  "
                "workload-strata=%.4f\n",
                size, modelConfidence(ds.cv, size),
                empiricalConfidence(*rnd, size, draws, p.metric,
                                    p.tx, p.ty, rng),
                empiricalConfidence(*strat, size, draws, p.metric,
                                    p.tx, p.ty, rng));
    return 0;
}

int
cmdSimulate(const Args &args)
{
    if (!args.has("workload"))
        WSEL_FATAL("simulate requires --workload b1+b2+...");
    const std::uint64_t insns = args.getU64("insns", 100000);
    const PolicyKind policy =
        parsePolicyKind(args.get("policy", "LRU"));
    const bool run_detailed = args.getU64("detailed", 1) != 0;

    const auto &suite = spec2006Suite();
    std::vector<std::uint32_t> ids;
    {
        std::string cur;
        for (char c : args.get("workload", "") + "+") {
            if (c == '+') {
                if (cur.empty())
                    continue;
                bool found = false;
                for (std::uint32_t i = 0; i < suite.size(); ++i) {
                    if (suite[i].name == cur) {
                        ids.push_back(i);
                        found = true;
                        break;
                    }
                }
                if (!found)
                    WSEL_FATAL("unknown benchmark '" << cur << "'");
                cur.clear();
            } else {
                cur += c;
            }
        }
    }
    const Workload w(ids);
    const std::uint32_t cores =
        static_cast<std::uint32_t>(w.size());
    const UncoreConfig ucfg = UncoreConfig::forCores(
        cores == 1 ? 2 : cores, policy);

    BadcoModelStore store(CoreConfig{}, insns, ucfg.llcHitLatency,
                          defaultCacheDir());
    BadcoMulticoreSim bad(ucfg, cores, insns);
    const SimResult rb = bad.run(w, store.getSuite(suite));
    std::printf("%-12s %10s %10s\n", "benchmark", "badco",
                run_detailed ? "detailed" : "");
    std::vector<double> det_ipc(cores, 0.0);
    if (run_detailed) {
        DetailedMulticoreSim det(CoreConfig{}, ucfg, cores, insns);
        const SimResult rd = det.run(w, suite);
        det_ipc = rd.ipc;
    }
    for (std::uint32_t k = 0; k < cores; ++k) {
        std::printf("%-12s %10.3f", suite[w[k]].name.c_str(),
                    rb.ipc[k]);
        if (run_detailed)
            std::printf(" %10.3f", det_ipc[k]);
        std::printf("\n");
    }
    std::printf("policy %s, %llu uops/thread, badco %.1f MIPS\n",
                toString(policy).c_str(),
                static_cast<unsigned long long>(insns), rb.mips());
    return 0;
}

int
cmdReport(const Args &args)
{
    if (!args.has("campaign") || !args.has("out"))
        WSEL_FATAL("report requires --campaign FILE --out FILE.md");
    const Campaign c = Campaign::load(args.get("campaign", ""));
    ReportInput in;
    in.title = "wsel campaign report (" + c.simulator + ", " +
               std::to_string(c.cores) + " cores, " +
               std::to_string(c.workloads.size()) + " workloads)";
    for (PolicyKind p : c.policies)
        in.configs.push_back(toString(p));
    for (ThroughputMetric m : paperMetrics()) {
        ReportInput::MetricBlock mb;
        mb.metric = m;
        for (std::size_t p = 0; p < c.policies.size(); ++p)
            mb.t.push_back(c.perWorkloadThroughputs(p, m));
        in.metrics.push_back(std::move(mb));
    }
    writeMarkdownReport(in, args.get("out", ""));
    std::printf("wrote %s\n", args.get("out", "").c_str());
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: wsel_cli <command> [--options]\n"
        "\n"
        "commands:\n"
        "  characterize [--cores K] [--insns N] [--jobs N]\n"
        "      per-benchmark features and Table-IV classes\n"
        "  campaign --out FILE [--cores K] [--insns N]\n"
        "      [--policies LRU,DIP,...] [--limit N] [--resume 0|1]\n"
        "      [--jobs N]\n"
        "      BADCO campaign saved as CSV, checkpointed to\n"
        "      FILE.partial\n"
        "  population --out DIR [--cores K] [--insns N]\n"
        "      [--policies LRU,...] [--shard-size CELLS]\n"
        "      [--jobs N] [--first R] [--last R|--limit N]\n"
        "      [--resume 0|1] [--metric IPCT|WSU|HSU|GSU]\n"
        "      [--seed S] [--distributed N] [--sequential 1]\n"
        "      [--hybrid 1] [--batch-cells B] [--batch-wave W]\n"
        "      [--verbose 1]\n"
        "      full-population campaign into a sharded campaign_v3\n"
        "      dir; --distributed N leases shards to N spawned\n"
        "      wsel_worker processes with --out as the result-store\n"
        "      root (docs/ROBUSTNESS.md); --sequential 1 runs the\n"
        "      adaptive stopping rule instead (--policies Y,X;\n"
        "      docs/SAMPLING.md); --hybrid 1 runs the\n"
        "      mixed-fidelity campaign (docs/FIDELITY.md)\n"
        "  adaptive --out DIR [--x POL --y POL] [--metric M]\n"
        "      [--cores K] [--insns N] [--target C] [--budget W]\n"
        "      [--min W] [--batch W] [--jobs N]\n"
        "      [--method random|ranked-set] [--set-size M]\n"
        "      [--redraws N] [--wall-clock SECS] [--resume 0|1]\n"
        "      [--seed S] [--batch-cells B] [--batch-wave W]\n"
        "      [--verbose 1]\n"
        "      sequential campaign that stops at target confidence\n"
        "      (docs/SAMPLING.md); resumable bitwise-identically\n"
        "  hybrid --out DIR [--x POL --y POL|--policies Y,X]\n"
        "      [--metric M] [--cores K] [--insns N] [--limit N]\n"
        "      [--quantile Q] [--budget-frac F] [--threshold T]\n"
        "      [--profile FILE] [--calibrate W] [--jobs N]\n"
        "      [--resume 0|1] [--seed S] [--batch-cells B]\n"
        "      [--batch-wave W]\n"
        "      error-bounded mixed-fidelity campaign: BADCO sweep,\n"
        "      then suspect cells escalate to the detailed\n"
        "      simulator, at most --budget-frac of the population;\n"
        "      the report separates sampling error from model\n"
        "      error (docs/FIDELITY.md)\n"
        "  serve <submit|status|metrics|stop> --socket PATH\n"
        "      [--id N] [--wait 0|1] [campaign options]\n"
        "      [--escalate-budget F] [--escalate-quantile Q]\n"
        "      [--escalate-metric M]\n"
        "      talk to a wsel_serve daemon; stop halts a campaign,\n"
        "      keeping finished shards in the store;\n"
        "      --escalate-budget F > 0 re-leases suspect shards at\n"
        "      detailed fidelity after the BADCO sweep commits\n"
        "  analyze --campaign FILE --x POL --y POL [--metric M]\n"
        "      cv, 1/cv, eq. 8 sample size, regime, CI estimates\n"
        "  select --campaign FILE --x POL --y POL --size W\n"
        "      [--method random|balanced|bench|workload]\n"
        "      emit a workload sample for a detailed simulator\n"
        "  confidence --campaign FILE --x POL --y POL --size W\n"
        "      [--draws D]\n"
        "      model vs empirical confidence at one sample size\n"
        "  simulate --workload b1+b2+... [--policy LRU] [--insns N]\n"
        "  report --campaign FILE --out FILE.md\n"
        "  cache verify [--dir DIR] [--quarantine 0|1]\n"
        "\n"
        "common options: --jobs N (0 = $WSEL_JOBS, else hardware),\n"
        "  --metrics-out FILE, --trace-out FILE, --trace-mem MIB,\n"
        "  --batch-cells B (cells per batched-engine group; 0 =\n"
        "  $WSEL_BATCH_CELLS else 32, 1 = serial, max 4096; bitwise\n"
        "  identical at every value),\n"
        "  --batch-wave W (resident cells advanced in lockstep per\n"
        "  group; 0 = $WSEL_BATCH_WAVE else 1 = cell-major; clamped\n"
        "  so W uncores fit $WSEL_WAVE_MEM MiB, default 256;\n"
        "  bitwise identical at every value)\n"
        "environment: WSEL_JOBS, WSEL_METRICS, WSEL_TRACE,\n"
        "  WSEL_TRACE_MEM, WSEL_CACHE_DIR, WSEL_BATCH_CELLS,\n"
        "  WSEL_BATCH_WAVE, WSEL_WAVE_MEM, WSEL_NUMA\n"
        "  (firsttouch|interleave|off),\n"
        "  WSEL_SIMD (scalar|swar|sse2|avx2), WSEL_TRACE_HUGEPAGES;\n"
        "  bench binaries write a machine-readable summary to\n"
        "  $WSEL_BENCH_JSON\n"
        "see the file header of tools/wsel_cli.cc for details\n");
    return 2;
}

int
dispatch(int argc, char **argv)
{
    const std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    if (cmd == "cache")
        return cmdCache(argc, argv);
    if (cmd == "serve")
        return cmdServe(argc, argv);
    const Args args(argc, argv);
    if (cmd == "characterize")
        return cmdCharacterize(args);
    if (cmd == "campaign")
        return cmdCampaign(args);
    if (cmd == "population")
        return cmdPopulation(args);
    if (cmd == "adaptive")
        return cmdAdaptive(args);
    if (cmd == "hybrid")
        return cmdHybrid(args);
    if (cmd == "analyze")
        return cmdAnalyze(args);
    if (cmd == "select")
        return cmdSelect(args);
    if (cmd == "confidence")
        return cmdConfidence(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "report")
        return cmdReport(args);
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    wsel::obs::initFromEnv();
    // WSEL_KILL_POINT works on the CLI exactly as on wsel_worker
    // (src/serve/worker.hh): CI's crash/resume smokes SIGKILL a
    // real process at a named persist kill point.
    wsel::serve::armKillPointsFromEnv();
    int rc;
    try {
        rc = dispatch(argc, argv);
    } catch (const wsel::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        rc = 1;
    }
    // Write --metrics-out/--trace-out (and the $WSEL_* outputs)
    // even when the command failed: the partial trace is exactly
    // what one wants when diagnosing the failure.
    wsel::obs::flushOutputs();
    return rc;
}
