/**
 * @file
 * wsel_worker: one campaign-service worker process
 * (docs/ROBUSTNESS.md, "Distributed campaigns").
 *
 *   wsel_worker --socket PATH [--cache-dir DIR] [--jobs N]
 *       connect to the coordinator at PATH and lease shards until
 *       told to shut down (exit 0) or the coordinator disappears
 *       (exit 1)
 *
 *   wsel_worker --mkdir-race DIR
 *       test helper: create the directory tree DIR through
 *       persist::ensureDirTree and exit 0/1 — lets the two-process
 *       directory-creation race test exercise real concurrent
 *       processes without fork()ing inside a (tsan-instrumented)
 *       threaded test binary
 *
 * Fault injection for the crash-recovery tests is armed from the
 * environment (WSEL_KILL_POINT / WSEL_KILL_SHARD, see
 * src/serve/worker.hh): the armed point raises SIGKILL on this
 * process, which is exactly the failure the coordinator must
 * absorb.
 */

#include <cstdio>
#include <string>

#include "serve/worker.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"

int
main(int argc, char **argv)
{
    using namespace wsel;

    std::string socket_path;
    std::string cache_dir;
    std::string mkdir_race;
    std::size_t jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (key == "--socket" && val) {
            socket_path = val;
            ++i;
        } else if (key == "--cache-dir" && val) {
            cache_dir = val;
            ++i;
        } else if (key == "--jobs" && val) {
            jobs = static_cast<std::size_t>(
                std::strtoull(val, nullptr, 10));
            ++i;
        } else if (key == "--mkdir-race" && val) {
            mkdir_race = val;
            ++i;
        } else {
            std::fprintf(stderr,
                         "usage: wsel_worker --socket PATH "
                         "[--cache-dir DIR] [--jobs N]\n"
                         "       wsel_worker --mkdir-race DIR\n");
            return 2;
        }
    }

    try {
        if (!mkdir_race.empty()) {
            persist::ensureDirTree(mkdir_race);
            return 0;
        }
        if (socket_path.empty()) {
            std::fprintf(stderr, "wsel_worker: --socket PATH "
                                 "required\n");
            return 2;
        }
        serve::armKillPointsFromEnv();
        serve::WorkerOptions opts;
        opts.socketPath = socket_path;
        opts.cacheDir = cache_dir;
        opts.jobs = jobs == 0 ? 1 : jobs;
        return serve::runWorker(opts);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "wsel_worker: %s\n", e.what());
        return 2;
    }
}
