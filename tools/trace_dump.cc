/**
 * @file
 * trace_dump: print (or CSV-dump) the first N µops of a benchmark's
 * deterministic trace, for debugging profiles and reproducing
 * simulator inputs.
 *
 *   trace_dump <benchmark> [count] [--csv]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "stats/logging.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace
{

using namespace wsel;

const char *
kindName(OpKind k)
{
    switch (k) {
      case OpKind::IntAlu:
        return "alu";
      case OpKind::FpAlu:
        return "fp";
      case OpKind::Load:
        return "load";
      case OpKind::Store:
        return "store";
      case OpKind::Branch:
        return "branch";
    }
    return "?";
}

const char *
regionName(std::uint64_t addr)
{
    if (addr == 0)
        return "-";
    if (addr >= TraceGenerator::randomBase)
        return "random";
    if (addr >= TraceGenerator::streamBase)
        return "stream";
    if (addr >= TraceGenerator::chaseBase)
        return "chase";
    if (addr >= TraceGenerator::hotBase)
        return "hot";
    return "l1";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wsel;
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_dump <benchmark> [count] "
                     "[--csv]\n  benchmarks:");
        for (const auto &p : spec2006Suite())
            std::fprintf(stderr, " %s", p.name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }
    try {
        const BenchmarkProfile &p = findProfile(argv[1]);
        const std::uint64_t count =
            argc > 2 && std::strncmp(argv[2], "--", 2) != 0
                ? std::strtoull(argv[2], nullptr, 10)
                : 64;
        bool csv = false;
        for (int i = 2; i < argc; ++i)
            csv = csv || std::strcmp(argv[i], "--csv") == 0;

        TraceGenerator gen(p);
        if (csv)
            std::printf("seq,pc,kind,addr,region,dep1,dep2,latency,"
                        "taken\n");
        else
            std::printf("%-8s %-10s %-7s %-12s %-7s %5s %5s %4s "
                        "%6s\n",
                        "seq", "pc", "kind", "addr", "region",
                        "dep1", "dep2", "lat", "taken");
        for (std::uint64_t i = 0; i < count; ++i) {
            const MicroOp &u = gen.next();
            if (csv) {
                std::printf("%llu,0x%llx,%s,0x%llx,%s,%u,%u,%u,%d\n",
                            static_cast<unsigned long long>(i),
                            static_cast<unsigned long long>(u.pc),
                            kindName(u.kind),
                            static_cast<unsigned long long>(u.addr),
                            regionName(u.addr), u.dep1, u.dep2,
                            u.latency, u.taken ? 1 : 0);
            } else {
                std::printf("%-8llu 0x%-8llx %-7s 0x%-10llx %-7s "
                            "%5u %5u %4u %6s\n",
                            static_cast<unsigned long long>(i),
                            static_cast<unsigned long long>(u.pc),
                            kindName(u.kind),
                            static_cast<unsigned long long>(u.addr),
                            regionName(u.addr), u.dep1, u.dep2,
                            u.latency,
                            u.kind == OpKind::Branch
                                ? (u.taken ? "T" : "NT")
                                : "-");
            }
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
