/**
 * @file
 * Developer calibration tool: per-benchmark single-thread runs with
 * full stat breakdowns, used to tune the synthetic profiles so the
 * suite lands in the paper's Table IV MPKI classes with sane IPCs.
 */

#include <cstdio>

#include "cpu/detailed_core.hh"
#include "mem/uncore.hh"
#include "sim/model_store.hh"
#include "badco/badco_machine.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

int
main(int argc, char **argv)
{
    using namespace wsel;
    const std::uint64_t target =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

    const auto &suite = spec2006Suite();
    const CoreConfig ccfg;
    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);

    std::printf("%-12s %6s %6s | %7s %7s %7s %6s %6s %6s %6s | "
                "%5s %6s\n",
                "bench", "IPC", "bIPC", "dl1MPK", "llcMPK", "class",
                "il1m", "dtlbm", "brMPR", "pfMPK", "cls?", "cyc/u");
    for (const auto &p : suite) {
        Uncore uncore(ucfg, 1, 1);
        DetailedCore core(ccfg, TraceStore::global().cursor(p),
                          uncore, 0, target, 1);
        std::uint64_t now = 0;
        while (!core.reachedTarget()) {
            core.tick(now);
            const std::uint64_t next = core.nextEventCycle(now);
            now = std::max(now + 1,
                           next == UINT64_MAX ? now + 1 : next);
        }
        const CoreStats &cs = core.stats();
        const double kinsn = static_cast<double>(target) / 1000.0;
        const double llc_mpki =
            static_cast<double>(uncore.coreStats(0).demandMisses) /
            kinsn;
        const double dl1_mpki =
            static_cast<double>(cs.dl1Misses) / kinsn;
        const double pf_mpki =
            static_cast<double>(cs.uncorePrefetches) / kinsn;

        // BADCO single-thread IPC for the same benchmark.
        BadcoModel model = buildBadcoModel(p, ccfg, target,
                                           ucfg.llcHitLatency);
        Uncore uncore2(ucfg, 1, 1);
        BadcoMachine machine(model, uncore2, 0, target);
        while (!machine.reachedTarget())
            machine.run(machine.localClock() + 1000);

        const MpkiClass cls = classifyMpki(llc_mpki);
        std::printf("%-12s %6.3f %6.3f | %7.2f %7.2f %7s %6llu "
                    "%6llu %5.1f%% %6.2f | %5s %6.1f\n",
                    p.name.c_str(), core.ipc(), machine.ipc(),
                    dl1_mpki, llc_mpki, toString(cls).c_str(),
                    static_cast<unsigned long long>(cs.il1Misses),
                    static_cast<unsigned long long>(cs.dtlbMisses),
                    100.0 * static_cast<double>(
                        cs.branchMispredicts) /
                        static_cast<double>(cs.branches),
                    pf_mpki,
                    cls == p.paperClass ? "ok" : "MISS",
                    static_cast<double>(cs.cyclesToTarget) /
                        static_cast<double>(target));
    }
    return 0;
}
