/**
 * @file
 * Workload-selection tool: given a pair of LLC policies and a
 * throughput metric, produce a representative workload sample with
 * each of the paper's four methods side by side, and report each
 * method's measured confidence at that sample size. Writes the
 * selected workload lists to CSV files for use by an external
 * detailed simulator.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "core/confidence/confidence.hh"
#include "core/sampling/sampling.hh"
#include "sim/campaign.hh"
#include "sim/model_store.hh"

namespace
{

using namespace wsel;

void
writeCsv(const std::string &path,
         const std::vector<Workload> &workloads, const Sample &s,
         const std::vector<BenchmarkProfile> &suite)
{
    std::ofstream os(path);
    os << "stratum,weight,benchmarks\n";
    for (std::size_t h = 0; h < s.strata.size(); ++h) {
        for (std::size_t pos : s.strata[h].indices) {
            os << h << "," << s.strata[h].weight << ",";
            const Workload &w = workloads[pos];
            for (std::size_t k = 0; k < w.size(); ++k)
                os << (k ? "+" : "") << suite[w[k]].name;
            os << "\n";
        }
    }
    std::printf("  wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wsel;

    const PolicyKind x =
        argc > 1 ? parsePolicyKind(argv[1]) : PolicyKind::LRU;
    const PolicyKind y =
        argc > 2 ? parsePolicyKind(argv[2]) : PolicyKind::DIP;
    const ThroughputMetric metric =
        argc > 3 ? parseMetric(argv[3]) : ThroughputMetric::IPCT;
    const std::size_t sample_size =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 30;
    const std::uint32_t cores = 4;
    const std::uint64_t target = 100000;

    std::printf("selecting %zu workloads for %s vs %s under %s "
                "(%u cores)\n\n",
                sample_size, toString(y).c_str(),
                toString(x).c_str(), toString(metric).c_str(),
                cores);

    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    const auto workloads = pop.enumerateAll();

    const UncoreConfig ucfg = UncoreConfig::forCores(cores, x);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    CampaignOptions opts;
    opts.verbose = true;
    const Campaign c = cachedCampaign(
        "example_selection_k4_u" + std::to_string(target),
        campaignFingerprint("badco", cores, target,
                            paperPolicies(), suite),
        [&](const std::string &journal) {
            opts.journalPath = journal;
            return runBadcoCampaign(workloads, paperPolicies(),
                                    cores, target, store, suite,
                                    opts);
        });

    const auto tx = c.perWorkloadThroughputs(c.policyIndex(x),
                                             metric);
    const auto ty = c.perWorkloadThroughputs(c.policyIndex(y),
                                             metric);
    const auto d = perWorkloadDifferences(metric, tx, ty);
    const DifferenceStats ds = differenceStats(d);
    std::printf("population cv = %.2f; eq.(8) random sample size = "
                "%zu\n\n",
                ds.cv, requiredSampleSize(ds.cv));

    // Build all four samplers.
    std::vector<std::size_t> identity(pop.size());
    for (std::size_t i = 0; i < identity.size(); ++i)
        identity[i] = i;
    std::vector<std::uint32_t> classes;
    for (const auto &p : suite)
        classes.push_back(static_cast<std::uint32_t>(p.paperClass));

    struct Entry
    {
        std::unique_ptr<Sampler> sampler;
        std::string file;
    };
    std::vector<Entry> methods;
    methods.push_back({makeRandomSampler(workloads.size()),
                       "sample_random.csv"});
    methods.push_back({makeBalancedRandomSampler(pop, identity),
                       "sample_balanced.csv"});
    methods.push_back(
        {makeBenchmarkStratifiedSampler(workloads, classes, 3),
         "sample_bench_strata.csv"});
    methods.push_back({makeWorkloadStratifiedSampler(d, {}),
                       "sample_workload_strata.csv"});

    Rng rng(2013);
    std::printf("%-18s %12s  file\n", "method",
                "confidence");
    for (auto &m : methods) {
        const double conf = empiricalConfidence(
            *m.sampler, sample_size, 2000, metric, tx, ty, rng);
        std::printf("%-18s %12.3f  %s\n",
                    m.sampler->name().c_str(), conf,
                    m.file.c_str());
        writeCsv(m.file, workloads, m.sampler->draw(sample_size, rng),
                 suite);
    }
    std::printf("\nNOTE: the workload-strata sample is only valid "
                "for this (pair, metric); rerun for others.\n");
    return 0;
}
