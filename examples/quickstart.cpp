/**
 * @file
 * Quickstart: simulate one 4-core workload with both simulators,
 * compare their IPCs (the approximate-vs-detailed tradeoff the paper
 * builds on), and run the paper's sample-size rule on a toy example.
 */

#include <cstdio>

#include "core/confidence/confidence.hh"
#include "sim/campaign.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "trace/benchmark_profile.hh"

int
main()
{
    using namespace wsel;

    const std::uint64_t target = 100000; // µops per thread
    const std::uint32_t cores = 4;
    const auto &suite = spec2006Suite();

    // A 4-thread workload: two cache-friendly threads, one
    // streaming thread, one pointer-chasing thread.
    std::vector<std::uint32_t> ids;
    for (const char *name :
         {"povray", "bzip2", "libquantum", "mcf"}) {
        for (std::uint32_t i = 0; i < suite.size(); ++i) {
            if (suite[i].name == name)
                ids.push_back(i);
        }
    }
    const Workload wl(ids);

    std::printf("workload:");
    for (std::uint32_t b : wl.benchmarks())
        std::printf(" %s", suite[b].name.c_str());
    std::printf("\n\n");

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    const CoreConfig ccfg;

    // Detailed (cycle-level) simulation.
    DetailedMulticoreSim detailed(ccfg, ucfg, cores, target);
    const SimResult dres = detailed.run(wl, suite);
    std::printf("detailed:  ");
    for (std::size_t k = 0; k < dres.ipc.size(); ++k)
        std::printf("IPC%zu=%.3f ", k, dres.ipc[k]);
    std::printf(" (%.2f MIPS)\n", dres.mips());

    // BADCO (behavioural) simulation: build models once, then
    // simulate quickly.
    BadcoModelStore store(ccfg, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    BadcoMulticoreSim badco(ucfg, cores, target);
    const SimResult bres = badco.run(wl, store.getSuite(suite));
    std::printf("badco:     ");
    for (std::size_t k = 0; k < bres.ipc.size(); ++k)
        std::printf("IPC%zu=%.3f ", k, bres.ipc[k]);
    std::printf(" (%.2f MIPS, %.1fx speedup)\n\n",
                bres.mips(), bres.mips() / dres.mips());

    for (std::size_t k = 0; k < cores; ++k) {
        const double cpi_d = 1.0 / dres.ipc[k];
        const double cpi_b = 1.0 / bres.ipc[k];
        std::printf("  core %zu (%s): CPI detailed=%.2f badco=%.2f "
                    "(%+.0f%%)\n",
                    k, suite[wl[k]].name.c_str(), cpi_d, cpi_b,
                    100.0 * (cpi_b - cpi_d) / cpi_d);
    }

    // The paper's sample-size rule (eq. 8) on a made-up cv.
    const double cv = 2.5;
    std::printf("\neq. (8): comparing two designs with cv=%.1f "
                "needs W = %zu random workloads\n",
                cv, requiredSampleSize(cv));
    return 0;
}
