/**
 * @file
 * The paper's §VII practical guideline, end to end: compare a
 * baseline microarchitecture (LRU LLC) against a challenger (DRRIP)
 * the way the paper recommends —
 *
 *  1. build BADCO models (fast approximate simulator);
 *  2. simulate a large balanced-random workload sample with BADCO;
 *  3. estimate the coefficient of variation cv of d(w);
 *  4. decide the regime: equivalent (|cv|>10), random sampling
 *     (|cv|<2) or workload stratification (2<=|cv|<=10);
 *  5. construct the sample and report what the detailed simulator
 *     should run.
 */

#include <cstdio>

#include "core/confidence/confidence.hh"
#include "core/sampling/sampling.hh"
#include "sim/campaign.hh"
#include "sim/model_store.hh"

int
main()
{
    using namespace wsel;

    const std::uint32_t cores = 4;
    const std::uint64_t target = 100000;
    const ThroughputMetric metric = ThroughputMetric::WSU;
    const PolicyKind baseline = PolicyKind::LRU;
    const PolicyKind challenger = PolicyKind::DRRIP;
    const std::size_t big_sample = 800; // the paper's suggestion

    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);

    std::printf("== step 1: build BADCO models (one-off cost) ==\n");
    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, baseline);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    store.getSuite(suite);
    std::printf("built %zu models in %.1fs (cached for reuse)\n\n",
                store.modelsBuilt(), store.buildSeconds());

    std::printf("== step 2: balanced-random %zu-workload sample, "
                "simulated with BADCO ==\n",
                big_sample);
    // Balanced random sampling: every benchmark appears equally
    // often (paper §VI-A / §VII).
    std::vector<std::size_t> identity(pop.size());
    for (std::size_t i = 0; i < identity.size(); ++i)
        identity[i] = i;
    auto balanced = makeBalancedRandomSampler(pop, identity);
    Rng rng(1);
    const Sample big = balanced->draw(big_sample, rng);
    std::vector<Workload> workloads;
    for (std::size_t rank : big.flatten())
        workloads.push_back(pop.unrank(rank));

    CampaignOptions opts;
    opts.verbose = true;
    const Campaign c =
        runBadcoCampaign(workloads, {baseline, challenger}, cores,
                         target, store, suite, opts);
    std::printf("simulated %zu workload-sims at %.1f MIPS\n\n",
                workloads.size() * 2, c.mips());

    std::printf("== step 3: estimate cv ==\n");
    const auto tx = c.perWorkloadThroughputs(0, metric);
    const auto ty = c.perWorkloadThroughputs(1, metric);
    const DifferenceStats ds = differenceStats(metric, tx, ty);
    std::printf("%s vs %s under %s: mean d = %+.5f, sigma = %.5f, "
                "cv = %.2f (1/cv = %.2f)\n\n",
                toString(challenger).c_str(),
                toString(baseline).c_str(),
                toString(metric).c_str(), ds.mu, ds.sigma, ds.cv,
                ds.inverseCv());

    std::printf("== step 4: regime decision (paper §VII) ==\n");
    switch (classifyCv(ds.cv)) {
      case CvRegime::Equivalent:
        std::printf("|cv| > 10: the two machines offer the same "
                    "average throughput; stop here.\n");
        return 0;
      case CvRegime::RandomSampling: {
        const std::size_t w = requiredSampleSize(ds.cv);
        std::printf("|cv| < 2: random sampling suffices. eq. (8) "
                    "says W = %zu workloads\n(prefer balanced "
                    "random for such small samples).\n\n",
                    w);
        const Sample final_sample =
            balanced->draw(std::max<std::size_t>(w, 8), rng);
        std::printf("== step 5: workloads for the detailed "
                    "simulator ==\n");
        for (std::size_t rank : final_sample.flatten()) {
            const Workload wl = pop.unrank(rank);
            std::printf("  ");
            for (std::size_t k = 0; k < wl.size(); ++k)
                std::printf("%s%s", k ? "+" : "",
                            suite[wl[k]].name.c_str());
            std::printf("\n");
        }
        return 0;
      }
      case CvRegime::Stratification:
        break;
    }

    std::printf("2 <= |cv| <= 10: use workload stratification.\n\n");
    const auto d = perWorkloadDifferences(metric, tx, ty);
    WorkloadStrataConfig cfg; // paper: TSD=0.001, WT=50
    auto strat = makeWorkloadStratifiedSampler(d, cfg);
    const std::size_t strata = countWorkloadStrata(d, cfg);
    const std::size_t w = std::max<std::size_t>(strata, 30);
    std::printf("== step 5: %zu strata; drawing a %zu-workload "
                "stratified sample ==\n",
                strata, w);
    const Sample final_sample = strat->draw(w, rng);
    std::printf("(the stratified estimator must weight strata by "
                "N_h/N, eq. 9)\n");
    std::size_t h = 0;
    for (const auto &st : final_sample.strata) {
        std::printf("stratum %zu (weight %.0f):", h++, st.weight);
        for (std::size_t pos : st.indices) {
            const Workload &wl = workloads[pos];
            std::printf(" ");
            for (std::size_t k = 0; k < wl.size(); ++k)
                std::printf("%s%s", k ? "+" : "",
                            suite[wl[k]].name.c_str());
        }
        std::printf("\n");
    }
    return 0;
}
