/**
 * @file
 * Section V-C in miniature: different throughput metrics may need
 * different sample sizes. Runs the full 2-core population with
 * BADCO, then reports, per policy pair and metric, the population
 * 1/cv and the eq. (8) sample size — showing that all metrics agree
 * on who wins while disagreeing on how many workloads it takes to
 * prove it.
 */

#include <cstdio>

#include "core/confidence/confidence.hh"
#include "sim/campaign.hh"
#include "sim/model_store.hh"

int
main()
{
    using namespace wsel;

    const std::uint32_t cores = 2;
    const std::uint64_t target = 100000;
    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    CampaignOptions opts;
    opts.verbose = true;
    std::printf("simulating the full %llu-workload 2-core "
                "population with BADCO...\n",
                static_cast<unsigned long long>(pop.size()));
    const Campaign c = cachedCampaign(
        "example_metric_study_k2_u" + std::to_string(target),
        campaignFingerprint("badco", cores, target,
                            paperPolicies(), suite),
        [&](const std::string &journal) {
            opts.journalPath = journal;
            return runBadcoCampaign(pop.enumerateAll(),
                                    paperPolicies(), cores, target,
                                    store, suite, opts);
        });

    struct Pair
    {
        PolicyKind a, b;
    };
    const Pair pairs[] = {
        {PolicyKind::LRU, PolicyKind::FIFO},
        {PolicyKind::LRU, PolicyKind::Random},
        {PolicyKind::DIP, PolicyKind::LRU},
        {PolicyKind::DRRIP, PolicyKind::DIP},
    };

    std::printf("\n%-14s", "pair");
    for (ThroughputMetric m : paperMetrics())
        std::printf("  %6s[1/cv]  %6s[W]", toString(m).c_str(),
                    toString(m).c_str());
    std::printf("\n");

    for (const Pair &p : pairs) {
        std::printf("%-6s>%-7s", toString(p.a).c_str(),
                    toString(p.b).c_str());
        for (ThroughputMetric m : paperMetrics()) {
            const auto tb = c.perWorkloadThroughputs(
                c.policyIndex(p.b), m);
            const auto ta = c.perWorkloadThroughputs(
                c.policyIndex(p.a), m);
            const DifferenceStats ds = differenceStats(m, tb, ta);
            std::printf("  %12.3f  %9zu", ds.inverseCv(),
                        requiredSampleSize(ds.cv));
        }
        std::printf("\n");
    }

    std::printf("\ntakeaways (paper §V-C): the sign of 1/cv — who "
                "wins — is metric-independent, but the\nmagnitude "
                "is not: when using several metrics on one fixed "
                "sample, size it for the most\ndemanding metric.\n");
    return 0;
}
