/**
 * @file
 * Extending the suite: define a custom synthetic benchmark profile,
 * inspect its trace, measure its MPKI class, build its BADCO model,
 * and co-schedule it with suite benchmarks on a 4-core CMP.
 */

#include <cstdio>

#include "badco/badco_machine.hh"
#include "cpu/detailed_core.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "trace/trace_generator.hh"

int
main()
{
    using namespace wsel;

    // A "database-like" benchmark: pointer chasing over a large
    // index plus a hot row buffer.
    BenchmarkProfile dbms;
    dbms.name = "dbms";
    dbms.seed = 777;
    dbms.loadFrac = 0.34;
    dbms.storeFrac = 0.12;
    dbms.branchFrac = 0.17;
    dbms.fpFrac = 0.01;
    dbms.l1Frac = 0.70;
    dbms.hotFrac = 0.12;
    dbms.streamFrac = 0.02;
    dbms.randomFrac = 0.06;
    dbms.chaseFrac = 0.10;
    dbms.l1Bytes = 8 * 1024;
    dbms.hotBytes = 48 * 1024;
    dbms.footprintBytes = 16 * 1024 * 1024;
    dbms.chaseBytes = 4 * 1024 * 1024;
    dbms.staticBlocks = 768;
    dbms.branchBias = 0.75;
    dbms.branchNoise = 0.15;
    dbms.validate();

    const std::uint64_t target = 100000;

    // 1. Inspect the trace stream.
    TraceGenerator gen(dbms);
    std::uint64_t loads = 0, chase = 0;
    for (int i = 0; i < 50000; ++i) {
        const MicroOp &u = gen.next();
        if (u.kind == OpKind::Load) {
            ++loads;
            if (u.addr >= TraceGenerator::chaseBase &&
                u.addr < TraceGenerator::streamBase)
                ++chase;
        }
    }
    std::printf("trace check: %llu loads / 50k uops, %.1f%% "
                "pointer-chasing\n",
                static_cast<unsigned long long>(loads),
                100.0 * static_cast<double>(chase) /
                    static_cast<double>(loads));

    // 2. Single-thread characterization with the detailed core.
    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    Uncore uncore(ucfg, 1, 1);
    CoreConfig ccfg;
    DetailedCore core(ccfg, TraceStore::global().cursor(dbms),
                      uncore, 0, target, 1);
    std::uint64_t now = 0;
    while (!core.reachedTarget()) {
        core.tick(now);
        const std::uint64_t next = core.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }
    const double mpki =
        static_cast<double>(uncore.coreStats(0).demandMisses) /
        (static_cast<double>(target) / 1000.0);
    std::printf("alone on the 4-core uncore: IPC %.3f, LLC %.1f "
                "MPKI -> class %s\n",
                core.ipc(), mpki,
                toString(classifyMpki(mpki)).c_str());

    // 3. BADCO model (two detailed traces internally).
    const BadcoModel model =
        buildBadcoModel(dbms, ccfg, target, ucfg.llcHitLatency);
    std::printf("BADCO model: %zu nodes, %llu loads, calibrated "
                "window %u uops\n",
                model.nodes.size(),
                static_cast<unsigned long long>(model.loadCount),
                model.window);

    // 4. Co-schedule with three suite benchmarks.
    const auto &suite = spec2006Suite();
    std::vector<BenchmarkProfile> extended = suite;
    extended.push_back(dbms);
    BadcoModelStore store(ccfg, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    const auto models = store.getSuite(extended);
    BadcoMulticoreSim sim(ucfg, 4, target);

    std::vector<std::uint32_t> ids;
    for (const char *n : {"povray", "bzip2", "libquantum"}) {
        for (std::uint32_t i = 0; i < extended.size(); ++i)
            if (extended[i].name == n)
                ids.push_back(i);
    }
    ids.push_back(static_cast<std::uint32_t>(extended.size() - 1));
    const Workload w(ids);

    std::printf("\nco-scheduled IPCs under each policy:\n");
    std::printf("%-8s", "policy");
    for (std::uint32_t b : w.benchmarks())
        std::printf(" %12s", extended[b].name.c_str());
    std::printf("\n");
    for (PolicyKind pol : paperPolicies()) {
        const UncoreConfig cfg = UncoreConfig::forCores(4, pol);
        BadcoMulticoreSim s(cfg, 4, target);
        const SimResult r = s.run(w, models);
        std::printf("%-8s", toString(pol).c_str());
        for (double ipc : r.ipc)
            std::printf(" %12.3f", ipc);
        std::printf("\n");
    }
    return 0;
}
