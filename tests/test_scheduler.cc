/**
 * @file
 * Unit tests for the exec/ work-stealing scheduler: work
 * distribution under skewed task costs, exception propagation and
 * group cancellation, deadlock-free nesting, TaskGraph ordering,
 * SchedulerStats consistency, and the WSEL_JOBS resolution rules.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/scheduler.hh"
#include "stats/logging.hh"

namespace wsel
{

namespace
{

using exec::SchedulerStats;
using exec::TaskGraph;
using exec::TaskGroup;
using exec::ThreadPool;

TEST(Scheduler, ResolveJobsAndWselJobsEnv)
{
    unsetenv("WSEL_JOBS");
    EXPECT_GE(exec::hardwareConcurrency(), 1u);
    EXPECT_EQ(exec::defaultJobs(), exec::hardwareConcurrency());
    EXPECT_EQ(exec::resolveJobs(0), exec::defaultJobs());
    EXPECT_EQ(exec::resolveJobs(1), 1u);
    EXPECT_EQ(exec::resolveJobs(7), 7u);
    EXPECT_EQ(exec::resolveJobs(1 << 20), 1024u); // clamped

    setenv("WSEL_JOBS", "3", 1);
    EXPECT_EQ(exec::defaultJobs(), 3u);
    EXPECT_EQ(exec::resolveJobs(0), 3u);
    EXPECT_EQ(exec::resolveJobs(2), 2u); // explicit beats env

    // Invalid values are ignored (with a warning), not fatal.
    for (const char *bad : {"abc", "0", "2048", "-4", "3x"}) {
        setenv("WSEL_JOBS", bad, 1);
        EXPECT_EQ(exec::defaultJobs(), exec::hardwareConcurrency())
            << "WSEL_JOBS='" << bad << "'";
    }
    unsetenv("WSEL_JOBS");
}

TEST(Scheduler, PoolHasRequestedThreadCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
    EXPECT_EQ(pool.stats().threads, 3u);
}

TEST(Scheduler, ParallelForMatchesSerialBitwise)
{
    const std::size_t n = 257;
    std::vector<double> serial(n), parallel(n);
    auto f = [](std::size_t i) {
        // A value whose bits depend on evaluation being identical.
        double x = static_cast<double>(i) + 0.1;
        for (int k = 0; k < 20; ++k)
            x = x * 1.0000001 + 1.0 / (x + 1.0);
        return x;
    };
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = f(i);
    ThreadPool pool(4);
    exec::parallel_for(pool, std::size_t{0}, n,
                       [&](std::size_t i) { parallel[i] = f(i); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "index " << i;

    // Index-ordered reduction over per-slot results is bitwise
    // reproducible too (this is the campaign aggregation pattern).
    double s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        s1 += serial[i];
    for (std::size_t i = 0; i < n; ++i)
        s2 += parallel[i];
    EXPECT_EQ(s1, s2);
}

TEST(Scheduler, SingleWorkerPoolRunsInlineInOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    exec::parallel_for(pool, std::size_t{0}, std::size_t{16},
                       [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
    // Inline execution generates no pool traffic at all.
    EXPECT_EQ(pool.stats().tasksRun, 0u);
}

TEST(Scheduler, WorkStealingUnderSkewedCosts)
{
    // External submissions round-robin across the two workers'
    // deques: blocker -> deque 0, filler -> deque 1, setter ->
    // deque 0.  Worker 0 drains its own deque in FIFO order, so it
    // claims the blocker first and parks in it; the setter behind
    // it can then only run on another thread (worker 1 stealing
    // from deque 0's back, or the waiter helping).  Group
    // completion therefore proves a steal or a help happened.
    ThreadPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    bool set = false;
    std::atomic<int> ran{0};
    {
        TaskGroup group(pool);
        group.run([&] {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return set; });
            ++ran;
        });
        group.run([&] { ++ran; });
        group.run([&] {
            {
                std::lock_guard<std::mutex> g(mu);
                set = true;
            }
            cv.notify_all();
            ++ran;
        });
        group.wait();
    }
    EXPECT_EQ(ran.load(), 3);
    const SchedulerStats st = pool.stats();
    EXPECT_EQ(st.tasksRun, 3u);
    EXPECT_GE(st.tasksStolen + st.tasksHelped, 1u);
}

TEST(Scheduler, SkewedParallelForRunsEveryIndexOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    exec::parallel_for(pool, std::size_t{0}, n, [&](std::size_t i) {
        if (i % 16 == 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(pool.stats().tasksRun, n);
}

TEST(Scheduler, ExceptionCancelsOutstandingTasks)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_TRUE(group.cancelled());

    // Everything submitted after the failure is deterministically
    // skipped: the group is already cancelled.
    for (int i = 0; i < 10; ++i)
        group.run([&] { ++ran; });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
    const SchedulerStats st = pool.stats();
    EXPECT_EQ(st.tasksCancelled, 10u);
    // The pool survives a failed group and stays usable.
    std::atomic<int> after{0};
    exec::parallel_for(pool, std::size_t{0}, std::size_t{8},
                       [&](std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 8);
}

TEST(Scheduler, ParallelForRethrowsFirstError)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        exec::parallel_for(pool, std::size_t{0}, std::size_t{100},
                           [&](std::size_t i) {
                               if (i == 17)
                                   throw std::runtime_error("boom");
                           }),
        std::runtime_error);
}

TEST(Scheduler, NestedParallelForDoesNotDeadlock)
{
    // Outer tasks block in the inner wait; they make progress by
    // helping execute inner tasks.  A lost wakeup or a worker
    // parked forever shows up here as a test timeout.
    for (const std::size_t threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        const std::size_t n = 8;
        std::vector<std::vector<int>> out(
            n, std::vector<int>(n, 0));
        exec::parallel_for(
            pool, std::size_t{0}, n, [&](std::size_t i) {
                exec::parallel_for(
                    pool, std::size_t{0}, n, [&](std::size_t j) {
                        out[i][j] = static_cast<int>(i * n + j);
                    });
            });
        long sum = 0;
        for (const auto &row : out)
            sum = std::accumulate(row.begin(), row.end(), sum);
        EXPECT_EQ(sum, static_cast<long>(n * n * (n * n - 1) / 2))
            << threads << " threads";
    }
}

TEST(Scheduler, StatsAreInternallyConsistent)
{
    ThreadPool pool(4);
    const std::size_t n = 100;
    std::atomic<int> ran{0};
    exec::parallel_for(pool, std::size_t{0}, n,
                       [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), static_cast<int>(n));
    const SchedulerStats st = pool.stats();
    EXPECT_EQ(st.threads, 4u);
    EXPECT_EQ(st.tasksRun, n);
    EXPECT_EQ(st.tasksCancelled, 0u);
    EXPECT_LE(st.tasksStolen + st.tasksHelped, st.tasksRun);
    EXPECT_GE(st.queueSeconds, 0.0);
    EXPECT_GE(st.runSeconds, 0.0);
    EXPECT_LE(st.maxQueueSeconds, st.queueSeconds + 1e-12);
    EXPECT_LE(st.maxRunSeconds, st.runSeconds + 1e-12);
}

TEST(TaskGraphTest, DiamondRespectsDependencies)
{
    ThreadPool pool(2);
    TaskGraph graph(pool);
    std::mutex mu;
    std::vector<char> order;
    auto record = [&](char c) {
        return [&, c] {
            std::lock_guard<std::mutex> g(mu);
            order.push_back(c);
        };
    };
    const auto a = graph.add(record('a'));
    const auto b = graph.add(record('b'), {a});
    const auto c = graph.add(record('c'), {a});
    graph.add(record('d'), {b, c});
    graph.run();

    ASSERT_EQ(order.size(), 4u);
    auto pos = [&](char c) {
        return std::find(order.begin(), order.end(), c) -
               order.begin();
    };
    EXPECT_EQ(pos('a'), 0);
    EXPECT_EQ(pos('d'), 3);
    EXPECT_LT(pos('a'), pos('b'));
    EXPECT_LT(pos('a'), pos('c'));
    EXPECT_LT(pos('b'), pos('d'));
    EXPECT_LT(pos('c'), pos('d'));
}

TEST(TaskGraphTest, ErrorInNodeCancelsDependents)
{
    ThreadPool pool(2);
    TaskGraph graph(pool);
    std::atomic<int> ran{0};
    const auto a =
        graph.add([] { throw std::runtime_error("node failed"); });
    graph.add([&] { ++ran; }, {a});
    graph.add([&] { ++ran; }, {a});
    EXPECT_THROW(graph.run(), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraphTest, ForwardOrSelfDependencyIsFatal)
{
    ThreadPool pool(1);
    TaskGraph graph(pool);
    // Dependencies must name earlier nodes: the graph is a DAG by
    // construction, so a cycle cannot even be expressed.
    EXPECT_THROW(graph.add([] {}, {0}), FatalError);
    const auto a = graph.add([] {});
    EXPECT_THROW(graph.add([] {}, {a + 1}), FatalError);
}

TEST(TaskGraphTest, IndependentNodesAllRun)
{
    ThreadPool pool(4);
    TaskGraph graph(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i)
        graph.add([&] { ++ran; });
    graph.run();
    EXPECT_EQ(ran.load(), 32);
}

} // namespace
} // namespace wsel
