/**
 * @file
 * Determinism tests for parallel campaign execution: the IPC
 * matrix must be bitwise identical for any --jobs count, a
 * campaign killed mid-run under parallel jobs must resume from its
 * journal to the exact uninterrupted matrix (for both per-cell and
 * batched journal fsync), and the per-cell seed derivation must be
 * stable and collision-free across the matrix.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault_injection.hh"
#include "sim/campaign.hh"
#include "sim/characterize.hh"
#include "stats/persist.hh"
#include "test_util.hh"
#include "trace/trace_store.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kUops = 3000;

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    return s;
}

const std::vector<PolicyKind> kPolicies = {PolicyKind::LRU,
                                           PolicyKind::DIP};

void
expectSameResults(const Campaign &a, const Campaign &b)
{
    ASSERT_EQ(a.policies.size(), b.policies.size());
    ASSERT_EQ(a.workloads.size(), b.workloads.size());
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    ASSERT_EQ(a.refIpc.size(), b.refIpc.size());
    for (std::size_t i = 0; i < a.refIpc.size(); ++i)
        EXPECT_EQ(a.refIpc[i], b.refIpc[i]) << "refIpc " << i;
    for (std::size_t p = 0; p < a.policies.size(); ++p) {
        for (std::size_t w = 0; w < a.workloads.size(); ++w) {
            ASSERT_EQ(a.ipc[p][w].size(), b.ipc[p][w].size());
            for (std::size_t k = 0; k < a.ipc[p][w].size(); ++k) {
                // Bitwise equality: N jobs must be
                // indistinguishable from 1 job.
                EXPECT_EQ(a.ipc[p][w][k], b.ipc[p][w][k])
                    << "cell (" << p << "," << w << "," << k << ")";
            }
        }
    }
}

/** Per-test scratch directory for models and journals. */
class CampaignParallel : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_parallel_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        // A leaked WSEL_JOBS would change what jobs=0 means.
        unsetenv("WSEL_JOBS");
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /**
     * The standard campaign of these tests: 2 policies x the full
     * @p cores-way workload population over a 2-benchmark suite
     * (3, 5, or 9 workloads for 2, 4, or 8 cores).
     */
    Campaign
    runParallel(std::uint32_t cores, std::size_t jobs,
                const std::string &journal = "",
                std::size_t batch = 0)
    {
        const auto suite = testSuite();
        const WorkloadPopulation pop(2, cores);
        BadcoModelStore store(CoreConfig{}, kUops, 5,
                              path("models"));
        CampaignOptions opts;
        opts.jobs = jobs;
        opts.journalBatch = batch;
        opts.journalPath = journal;
        return runBadcoCampaign(pop.enumerateAll(), kPolicies,
                                cores, kUops, store, suite, opts);
    }

    std::string dir_;
};

TEST_F(CampaignParallel, JobsInvariantIpcMatrix)
{
    for (const std::uint32_t cores : {2u, 4u, 8u}) {
        const Campaign serial = runParallel(cores, 1);
        const Campaign parallel = runParallel(cores, 8);
        ASSERT_EQ(serial.workloads.size(),
                  static_cast<std::size_t>(cores) + 1);
        expectSameResults(serial, parallel);
    }
}

TEST_F(CampaignParallel, OddJobCountsAgreeToo)
{
    const Campaign serial = runParallel(4, 1);
    for (const std::size_t jobs : {2, 3, 5}) {
        const Campaign parallel = runParallel(4, jobs);
        expectSameResults(serial, parallel);
    }
}

TEST_F(CampaignParallel, KillAndResumeUnderParallelJobs)
{
    const Campaign base = runParallel(4, 1);
    const std::size_t total =
        base.policies.size() * base.workloads.size();
    ASSERT_EQ(total, 10u);

    // batch 1: every completed cell is durable individually;
    // batch 0 (auto, 16 when parallel): the whole run fits one
    // batch, so the kill lands in the final flush instead.
    int variant = 0;
    for (const std::size_t batch : {1, 0}) {
        for (const std::size_t n : {std::size_t{2}, total - 1}) {
            const std::string journal =
                path("kill" + std::to_string(variant++) +
                     ".partial");
            {
                test::FaultInjector kill("journal.append", n);
                EXPECT_THROW(runParallel(4, 8, journal, batch),
                             test::InjectedFault)
                    << "batch " << batch << " kill " << n;
            }
            ASSERT_TRUE(fs::exists(journal));
            const Campaign resumed =
                runParallel(4, 8, journal, batch);
            expectSameResults(base, resumed);
        }
    }
}

TEST_F(CampaignParallel, ResumedJournalSkipsSimulatedCells)
{
    const std::string journal = path("skip.partial");
    const Campaign full = runParallel(4, 8, journal, 5);
    // The journal holds all 10 records, so a rerun replays them
    // and never appends (or simulates) anything.
    test::FaultInjector counting;
    const Campaign rerun = runParallel(4, 8, journal, 5);
    EXPECT_EQ(counting.hits("journal.append"), 0u);
    EXPECT_EQ(counting.hits("journal.before-append"), 0u);
    expectSameResults(full, rerun);
}

TEST_F(CampaignParallel, SerialAndParallelJournalsInterchange)
{
    // A journal written by a parallel run must resume a serial run
    // and vice versa: the record format and the per-cell seeds do
    // not depend on the job count.
    const Campaign base = runParallel(2, 1);
    for (const std::size_t writer_jobs : {std::size_t{1}, std::size_t{8}}) {
        const std::string journal =
            path("x" + std::to_string(writer_jobs) + ".partial");
        {
            test::FaultInjector kill("journal.append", 2);
            EXPECT_THROW(runParallel(2, writer_jobs, journal, 1),
                         test::InjectedFault);
        }
        const std::size_t reader_jobs = writer_jobs == 1 ? 8 : 1;
        const Campaign resumed =
            runParallel(2, reader_jobs, journal, 1);
        expectSameResults(base, resumed);
    }
}

TEST_F(CampaignParallel, DetailedCampaignIsJobsInvariant)
{
    const auto suite = testSuite();
    const WorkloadPopulation pop(2, 2); // 3 workloads
    CampaignOptions opts;
    opts.jobs = 1;
    const Campaign serial = runDetailedCampaign(
        pop.enumerateAll(), {PolicyKind::LRU}, 2, kUops,
        CoreConfig{}, suite, opts);
    opts.jobs = 4;
    const Campaign parallel = runDetailedCampaign(
        pop.enumerateAll(), {PolicyKind::LRU}, 2, kUops,
        CoreConfig{}, suite, opts);
    expectSameResults(serial, parallel);
}

TEST_F(CampaignParallel, DetailedCampaignJobsInvariantUnderTraceEviction)
{
    // Same contract as DetailedCampaignIsJobsInvariant, but with the
    // shared trace store squeezed to a one-chunk budget so workers
    // evict and regenerate each other's chunks mid-simulation: the
    // IPC matrix must still be bitwise identical at every job count.
    const auto suite = testSuite();
    const WorkloadPopulation pop(2, 2); // 3 workloads
    const auto run = [&](std::size_t jobs) {
        CampaignOptions opts;
        opts.jobs = jobs;
        return runDetailedCampaign(pop.enumerateAll(),
                                   {PolicyKind::LRU}, 2, kUops,
                                   CoreConfig{}, suite, opts);
    };
    const Campaign base = run(1);

    TraceStore &ts = TraceStore::global();
    TraceChunk probe;
    probe.count = 256;
    ts.clear();
    ts.setChunkUops(256);
    ts.setBudgetBytes(probe.bytes());
    const std::uint64_t evictions_before = ts.evictions();

    const Campaign squeezed_serial = run(1);
    const Campaign squeezed_parallel = run(8);

    ts.setChunkUops(TraceStore::kDefaultChunkUops);
    ts.setBudgetBytes(TraceStore::kDefaultBudgetBytes);
    ts.clear();

    expectSameResults(base, squeezed_serial);
    expectSameResults(base, squeezed_parallel);
    EXPECT_GT(ts.evictions(), evictions_before)
        << "budget squeeze forced no evictions; test is vacuous";
}

TEST_F(CampaignParallel, CharacterizationIsJobsInvariant)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    const auto serial =
        characterizeSuite(suite, CoreConfig{}, ucfg, kUops, 1, 1);
    const auto parallel =
        characterizeSuite(suite, CoreConfig{}, ucfg, kUops, 1, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_EQ(serial[i].toVector(), parallel[i].toVector())
            << suite[i].name;
    }
}

TEST_F(CampaignParallel, ModelStoreParallelBuildMatchesSerial)
{
    const auto suite = testSuite();
    BadcoModelStore serial_store(CoreConfig{}, kUops, 5, "");
    BadcoModelStore parallel_store(CoreConfig{}, kUops, 5, "");
    const auto a = serial_store.getSuite(suite, 1);
    const auto b = parallel_store.getSuite(suite, 4);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(parallel_store.modelsBuilt(), suite.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i]->benchmark, b[i]->benchmark);
        ASSERT_EQ(a[i]->nodes.size(), b[i]->nodes.size());
        EXPECT_EQ(a[i]->traceUops, b[i]->traceUops);
    }
    // Repeated lookups serve the in-memory models.
    const auto c = parallel_store.getSuite(suite, 4);
    EXPECT_EQ(parallel_store.modelsBuilt(), suite.size());
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(b[i], c[i]); // same pointers
}

TEST_F(CampaignParallel, CellSeedIsStableUniqueAndNonZero)
{
    const std::uint64_t fp = 0x1234abcd5678ef01ULL;
    std::vector<std::uint64_t> seen;
    for (std::size_t p = 0; p < 8; ++p) {
        for (std::size_t w = 0; w < 64; ++w) {
            const std::uint64_t s = campaignCellSeed(fp, 1, p, w);
            EXPECT_NE(s, 0u);
            EXPECT_EQ(s, campaignCellSeed(fp, 1, p, w));
            seen.push_back(s);
        }
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()),
              seen.end())
        << "cell seed collision inside one campaign";
    // Different campaigns and base seeds draw different streams.
    EXPECT_NE(campaignCellSeed(fp, 1, 0, 0),
              campaignCellSeed(fp + 1, 1, 0, 0));
    EXPECT_NE(campaignCellSeed(fp, 1, 0, 0),
              campaignCellSeed(fp, 2, 0, 0));
}

} // namespace
} // namespace wsel
