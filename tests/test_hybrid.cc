/**
 * @file
 * Tests for the mixed-fidelity campaign runner (sim/hybrid.hh):
 * budget-capped escalation, bitwise jobs-invariance of every
 * artifact, kill/resume identity at the `fidelity.escalate` kill
 * point and at the splice boundary, escalated cells matching a
 * pure detailed campaign bit for bit, and the headline acceptance
 * scenario — a campaign where pure BADCO flips the X-vs-Y ranking
 * and the hybrid recovers the detailed verdict by escalating a
 * bounded fraction of rows.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fault_injection.hh"
#include "fidelity/calibrate.hh"
#include "fidelity/error_profile.hh"
#include "fidelity/escalation.hh"
#include "fidelity/persist_fidelity.hh"
#include "sim/campaign.hh"
#include "sim/hybrid.hh"
#include "stats/persist_v3.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kUops = 3000;

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    s.push_back(test::lightProfile(13));
    return s;
}

class HybridCampaign : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_hybrid_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        unsetenv("WSEL_JOBS");
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /**
     * The standard run: LRU vs DIP over the full 4-core population
     * of the 3-benchmark suite (15 rows, 4 shards), quantile 0.95,
     * budget 0.25, 2 rows per detailed batch.  A fresh *empty*
     * profile has an infinite error bound, so every row straddles
     * and the budget alone picks the escalation set — maximally
     * deterministic for the resilience tests.
     */
    HybridResult
    run(const std::string &out, std::size_t jobs = 1)
    {
        const auto suite = testSuite();
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), 4);
        BadcoModelStore store(CoreConfig{}, kUops, 5);
        fidelity::ErrorProfile profile(suite);
        HybridOptions opts;
        opts.jobs = jobs;
        opts.shardCells = 8;
        opts.batchRows = 2;
        return runHybridCampaign(pop, PolicyKind::LRU,
                                 PolicyKind::DIP,
                                 ThroughputMetric::IPCT, kUops,
                                 store, suite, profile, out, opts);
    }

    /**
     * Every artifact of a hybrid campaign directory EXCEPT
     * manifest.bin, which embeds wall-clock simSeconds and is the
     * one legitimately timing-dependent file.
     */
    std::vector<std::pair<std::string, std::string>>
    artifactBytes(const std::string &out, const HybridResult &r)
    {
        std::vector<std::pair<std::string, std::string>> files;
        for (std::uint64_t s = 0; s < r.manifest.shardCount(); ++s)
            files.emplace_back(
                "shard " + std::to_string(s),
                test::readFile(persist::v3ShardPath(out, s)));
        files.emplace_back("fidelity-bitmap",
                           test::readFile(
                               fidelity::escalationRecordPath(out)));
        const std::uint64_t batches =
            (r.escalation.escalatedCount + 1) / 2; // batchRows = 2
        for (std::uint64_t b = 0; b < batches; ++b)
            files.emplace_back(
                fidelity::fidelityBatchName(b),
                test::readFile(
                    fidelity::fidelityBatchPath(out, b)));
        files.emplace_back(
            "hybrid", test::readFile(fidelity::hybridReportPath(out)));
        return files;
    }

    void
    expectIdenticalArtifacts(const std::string &a,
                             const HybridResult &ra,
                             const std::string &b,
                             const HybridResult &rb)
    {
        const auto fa = artifactBytes(a, ra);
        const auto fb = artifactBytes(b, rb);
        ASSERT_EQ(fa.size(), fb.size());
        for (std::size_t i = 0; i < fa.size(); ++i) {
            EXPECT_EQ(fa[i].first, fb[i].first);
            EXPECT_FALSE(fa[i].second.empty()) << fa[i].first;
            EXPECT_EQ(fa[i].second, fb[i].second) << fa[i].first;
        }
    }

    std::string dir_;
};

TEST_F(HybridCampaign, BudgetCapsEscalationSet)
{
    const std::string out = path("v3");
    const HybridResult r = run(out);

    // An empty profile wants to escalate all 15 rows; the 0.25
    // budget caps the set at ceil(0.25 * 15) = 4.
    EXPECT_EQ(r.escalation.escalatedCount, 4u);
    EXPECT_EQ(r.report.workloads, 15u);
    EXPECT_EQ(r.report.escalated, 4u);
    EXPECT_NEAR(r.report.escalationFraction, 4.0 / 15.0, 1e-12);
    EXPECT_EQ(r.detailedCellsSimulated, 4u * 2u); // rows x policies
    EXPECT_EQ(r.detailedCellsResumed, 0u);
    EXPECT_TRUE(r.profileUpdated);

    // The in-memory result matches the committed artifacts.
    const fidelity::EscalationRecord rec =
        fidelity::readEscalationRecord(out);
    EXPECT_EQ(rec.escalatedCount, r.escalation.escalatedCount);
    EXPECT_EQ(rec.bitmap, r.escalation.bitmap);
    const fidelity::HybridReportRecord rep =
        fidelity::readHybridReport(out);
    EXPECT_EQ(rep.meanD, r.report.meanD);
    EXPECT_EQ(rep.comboLo, r.report.comboLo);
    EXPECT_EQ(rep.comboHi, r.report.comboHi);
    EXPECT_EQ(rep.escalated, r.report.escalated);

    // The combined bound brackets the point estimate.
    EXPECT_LE(r.report.comboLo, r.report.meanD);
    EXPECT_GE(r.report.comboHi, r.report.meanD);
}

TEST_F(HybridCampaign, SerialAndParallelBitwiseIdentical)
{
    const std::string serial = path("serial");
    const std::string parallel = path("parallel");
    const HybridResult rs = run(serial, 1);
    const HybridResult rp = run(parallel, 8);

    // The escalation SET must not depend on the job count...
    EXPECT_EQ(rs.escalation.escalatedCount,
              rp.escalation.escalatedCount);
    EXPECT_EQ(rs.escalation.bitmap, rp.escalation.bitmap);
    // ...and neither may any artifact byte.
    expectIdenticalArtifacts(serial, rs, parallel, rp);
}

TEST_F(HybridCampaign, KillMidEscalationResumesIdentical)
{
    const std::string ref = path("ref");
    const HybridResult rr = run(ref);

    // Kill at the 5th escalated cell: batch 0 (2 rows x 2
    // policies) is committed, batch 1 dies mid-flight.
    const std::string out = path("v3");
    {
        test::FaultInjector fi("fidelity.escalate", 5);
        EXPECT_THROW(run(out), test::InjectedFault);
    }
    EXPECT_FALSE(fidelity::hasHybridReport(out));

    const HybridResult r2 = run(out);
    EXPECT_EQ(r2.detailedCellsResumed, 4u);  // batch 0 survives
    EXPECT_EQ(r2.detailedCellsSimulated, 4u); // batch 1 redone
    EXPECT_EQ(r2.badco.cellsSimulated, 0u);  // phase 1 resumed
    expectIdenticalArtifacts(ref, rr, out, r2);
}

TEST_F(HybridCampaign, KillAtSpliceBoundaryResumesIdentical)
{
    // Count the reference run's atomic renames; the LAST one is
    // hybrid.bin (the commit point), so arming exactly that hit
    // kills the campaign after every detailed batch landed but
    // before the splice was committed.
    const std::string ref = path("ref");
    std::uint64_t renames = 0;
    HybridResult rr;
    {
        test::FaultInjector count;
        rr = run(ref);
        renames = count.hits("atomic.before-rename");
    }
    ASSERT_GT(renames, 0u);

    const std::string out = path("v3");
    {
        test::FaultInjector fi("atomic.before-rename", renames);
        EXPECT_THROW(run(out), test::InjectedFault);
    }
    EXPECT_FALSE(fidelity::hasHybridReport(out));
    EXPECT_TRUE(fidelity::hasEscalationRecord(out));

    const HybridResult r2 = run(out);
    EXPECT_EQ(r2.detailedCellsSimulated, 0u); // all batches kept
    EXPECT_EQ(r2.detailedCellsResumed, 4u * 2u);
    expectIdenticalArtifacts(ref, rr, out, r2);
}

TEST_F(HybridCampaign, ResumingCompleteRunSimulatesNothing)
{
    const std::string out = path("v3");
    const HybridResult r1 = run(out);
    const HybridResult r2 = run(out);
    EXPECT_EQ(r2.badco.cellsSimulated, 0u);
    EXPECT_EQ(r2.detailedCellsSimulated, 0u);
    EXPECT_EQ(r2.detailedCellsResumed, 4u * 2u);
    EXPECT_EQ(r2.escalation.bitmap, r1.escalation.bitmap);
    EXPECT_EQ(r2.report.meanD, r1.report.meanD);
    expectIdenticalArtifacts(out, r1, out, r2);
}

TEST_F(HybridCampaign, EscalatedCellsMatchPureDetailedCampaign)
{
    // The whole point of campaignCellSeed over the *detailed*
    // fingerprint: an escalated cell is bitwise the cell a pure
    // detailed campaign would have produced.
    const std::string out = path("v3");
    const HybridResult r = run(out);

    const auto suite = testSuite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 4);
    CampaignOptions copts;
    copts.jobs = 8;
    const Campaign det = runDetailedCampaign(
        WorkloadSet::fullPopulation(pop),
        {PolicyKind::LRU, PolicyKind::DIP}, 4, kUops, CoreConfig{},
        suite, copts);

    std::uint64_t checked = 0;
    const std::uint64_t batches =
        (r.escalation.escalatedCount + 1) / 2;
    for (std::uint64_t b = 0; b < batches; ++b) {
        const fidelity::FidelityBatch batch =
            fidelity::readFidelityBatch(
                out, r.escalation.detailedFingerprint, b);
        for (std::size_t i = 0; i < batch.ranks.size(); ++i) {
            const std::size_t w =
                static_cast<std::size_t>(batch.ranks[i]);
            for (std::size_t p = 0; p < 2; ++p) {
                for (std::uint32_t c = 0; c < 4; ++c) {
                    EXPECT_EQ(batch.ipc[(i * 2 + p) * 4 + c],
                              det.ipc[p][w][c])
                        << "rank " << w << " policy " << p
                        << " core " << c;
                    ++checked;
                }
            }
        }
    }
    EXPECT_EQ(checked, r.escalation.escalatedCount * 2 * 4);
}

/**
 * The headline acceptance scenario: a seeded 4-core DIP-vs-DRRIP
 * campaign where the pure BADCO sweep gets the ranking WRONG (mean
 * d has the opposite sign from the detailed ground truth), and the
 * hybrid — with a profile calibrated from a detailed/BADCO pair —
 * recovers the detailed verdict while escalating no more than 25%
 * of the rows, with the combined error bound containing the
 * detailed mean.  The suite/pair/uops combination was found by a
 * systematic search over suites x policy pairs x uops (see the PR
 * notes); everything here is seeded, so the flip reproduces
 * deterministically.
 */
TEST_F(HybridCampaign, RankingFlipRecoveredWithinBudget)
{
    const std::vector<BenchmarkProfile> suite = {
        test::lightProfile(7), test::heavyProfile(11),
        test::heavyProfile(17)};
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 4);
    const PolicyKind x = PolicyKind::DIP;
    const PolicyKind y = PolicyKind::DRRIP;
    const ThroughputMetric m = ThroughputMetric::IPCT;

    // Ground truth: both full-population campaigns.
    CampaignOptions copts;
    copts.jobs = 8;
    BadcoModelStore store(CoreConfig{}, kUops, 5);
    const Campaign bad =
        runBadcoCampaign(WorkloadSet::fullPopulation(pop), {x, y},
                         4, kUops, store, suite, copts);
    const Campaign det = runDetailedCampaign(
        WorkloadSet::fullPopulation(pop), {x, y}, 4, kUops,
        CoreConfig{}, suite, copts);
    auto meanD = [&](const Campaign &c) {
        const auto tx = c.perWorkloadThroughputs(0, m);
        const auto ty = c.perWorkloadThroughputs(1, m);
        double s = 0.0;
        for (std::size_t i = 0; i < tx.size(); ++i)
            s += perWorkloadDifference(m, tx[i], ty[i]);
        return s / static_cast<double>(tx.size());
    };
    const double mBadco = meanD(bad);
    const double mDetailed = meanD(det);
    // The scenario's premise: BADCO alone flips the verdict.
    ASSERT_GT(mBadco, 0.0);
    ASSERT_LT(mDetailed, 0.0);

    // Hybrid with a calibrated profile and a 20% row budget.
    fidelity::ErrorProfile profile(suite);
    fidelity::calibrateProfile(profile, det, bad);
    HybridOptions opts;
    opts.jobs = 8;
    opts.shardCells = 8;
    opts.batchRows = 2;
    opts.quantile = 0.95;
    opts.budgetFraction = 0.2;
    const HybridResult r = runHybridCampaign(
        pop, x, y, m, kUops, store, suite, profile, path("v3"),
        opts);

    // Recovery: the spliced verdict agrees with the detailed sign
    // while pure BADCO does not...
    EXPECT_LT(r.report.meanD, 0.0);
    EXPECT_EQ(r.report.yWins, 0u);
    // ...escalating no more than a quarter of the rows...
    EXPECT_EQ(r.report.escalated, 3u);
    EXPECT_LE(r.report.escalationFraction, 0.25);
    // ...and the combined (sampling + model) bound contains the
    // detailed ground truth.
    EXPECT_LE(r.report.comboLo, mDetailed);
    EXPECT_GE(r.report.comboHi, mDetailed);
}

} // namespace

} // namespace wsel
