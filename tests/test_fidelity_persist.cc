/**
 * @file
 * Hostile-input tests for the mixed-fidelity persistence layer
 * (fidelity/persist_fidelity.hh).  error_profile.bin, the
 * fidelity-bitmap escalation sidecar, fidelity batches and the
 * hybrid report are all untrusted disk input, so every reader must
 * answer damage with persist::CacheInvalid — never a crash, a giant
 * allocation, or an accepted lie.  Mirrors
 * test_manifest_validation.cc: every prefix truncation, every
 * single-byte bit flip, plus crafted files whose checksums are
 * re-sealed after individual fields are patched to lie.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fidelity/error_profile.hh"
#include "fidelity/persist_fidelity.hh"
#include "stats/persist.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

class FidelityPersist : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_fidelity_fuzz_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    static std::string
    readBytes(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    static void
    writeBytes(const std::string &path, const std::string &bytes)
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    /** Re-seal the trailing FNV-1a after the body was patched. */
    static std::string
    reseal(std::string bytes)
    {
        bytes.resize(bytes.size() - 8);
        const std::uint64_t sum = persist::fnv1a(bytes);
        for (int i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<char>((sum >> (8 * i)) & 0xff));
        return bytes;
    }

    static std::string
    patchU32(std::string bytes, std::size_t at, std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes[at + i] =
                static_cast<char>((v >> (8 * i)) & 0xff);
        return reseal(std::move(bytes));
    }

    static std::string
    patchU8(std::string bytes, std::size_t at, std::uint8_t v)
    {
        bytes[at] = static_cast<char>(v);
        return reseal(std::move(bytes));
    }

    /**
     * Patch the u64 @p offset_from_body_end bytes before the end
     * of the BODY (the file minus its 8-byte checksum) and
     * re-seal — a crafted file the trusted writer itself would
     * refuse to produce.
     */
    static std::string
    patchTailU64(std::string bytes,
                 std::size_t offset_from_body_end,
                 std::uint64_t value)
    {
        bytes.resize(bytes.size() - 8);
        const std::size_t at = bytes.size() - offset_from_body_end;
        for (int i = 0; i < 8; ++i)
            bytes[at + i] =
                static_cast<char>((value >> (8 * i)) & 0xff);
        const std::uint64_t sum = persist::fnv1a(bytes);
        for (int i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<char>((sum >> (8 * i)) & 0xff));
        return bytes;
    }

    std::string
    profilePath() const
    {
        return fidelity::errorProfilePath(dir_);
    }

    /**
     * A small deterministic profile: bench 0 ("alpha") has exactly
     * two observations — crafted-field tests below rely on that
     * count and on the 5-byte name length for byte offsets.
     */
    static fidelity::ErrorProfile
    sampleProfile()
    {
        fidelity::ErrorProfile p(
            0xabcdef1234567890ULL, {"alpha", "beta", "gamma"},
            {MpkiClass::Low, MpkiClass::Medium, MpkiClass::High},
            8);
        p.record(0, 1.00, 1.02);
        p.record(0, 0.97, 1.00);
        p.record(1, 0.88, 0.95);
        p.record(2, 0.70, 0.81);
        p.markApplied(42);
        return p;
    }

    std::string
    profileBytes()
    {
        fidelity::writeErrorProfile(profilePath(), sampleProfile());
        return readBytes(profilePath());
    }

    static fidelity::EscalationRecord
    sampleRecord()
    {
        fidelity::EscalationRecord rec;
        rec.badcoFingerprint = 0x1111222233334444ULL;
        rec.detailedFingerprint = 0x5555666677778888ULL;
        rec.seed = 7;
        rec.metric = "IPCT";
        rec.policyX = "LRU";
        rec.policyY = "DIP";
        rec.quantile = 0.95;
        rec.budgetFraction = 0.25;
        rec.threshold = 0.0;
        rec.firstRank = 0;
        rec.lastRank = 11; // 11 rows -> 2 bitmap bytes, 3 tail bits
        rec.resizeBitmap();
        rec.setEscalated(1);
        rec.setEscalated(4);
        rec.setEscalated(9);
        rec.escalatedCount = 3;
        return rec;
    }

    std::string
    recordBytes()
    {
        fidelity::writeEscalationRecord(dir_, sampleRecord());
        return readBytes(fidelity::escalationRecordPath(dir_));
    }

    static fidelity::FidelityBatch
    sampleBatch()
    {
        fidelity::FidelityBatch b;
        b.detailedFingerprint = 0x5555666677778888ULL;
        b.index = 0;
        b.firstOrdinal = 0;
        b.cores = 2;
        b.numPolicies = 2;
        b.ranks = {3, 5, 8};
        b.ipc.resize(3 * 2 * 2);
        for (std::size_t i = 0; i < b.ipc.size(); ++i)
            b.ipc[i] = 0.5 + 0.01 * static_cast<double>(i);
        return b;
    }

    std::string
    batchBytes()
    {
        fidelity::writeFidelityBatch(dir_, sampleBatch());
        return readBytes(fidelity::fidelityBatchPath(dir_, 0));
    }

    static fidelity::HybridReportRecord
    sampleReport()
    {
        fidelity::HybridReportRecord rep;
        rep.badcoFingerprint = 0x1111222233334444ULL;
        rep.detailedFingerprint = 0x5555666677778888ULL;
        rep.metric = "IPCT";
        rep.policyX = "LRU";
        rep.policyY = "DIP";
        rep.workloads = 11;
        rep.escalated = 3;
        rep.escalationFraction = 3.0 / 11.0;
        rep.meanD = 0.012;
        rep.sigma = 0.004;
        rep.se = 0.0012;
        rep.cv = 0.33;
        rep.confidence = 0.96;
        rep.modelLo = -0.002;
        rep.modelHi = 0.002;
        rep.comboLo = 0.007;
        rep.comboHi = 0.017;
        rep.yWins = 1;
        return rep;
    }

    std::string
    reportBytes()
    {
        fidelity::writeHybridReport(dir_, sampleReport());
        return readBytes(fidelity::hybridReportPath(dir_));
    }

    std::string dir_;
};

// ---------------------------------------------------------------
// error_profile.bin
// ---------------------------------------------------------------

TEST_F(FidelityPersist, ProfileRoundTrips)
{
    const fidelity::ErrorProfile p = sampleProfile();
    fidelity::writeErrorProfile(profilePath(), p);
    const fidelity::ErrorProfile back =
        fidelity::readErrorProfile(profilePath());
    EXPECT_EQ(back.suiteHash(), p.suiteHash());
    EXPECT_EQ(back.numBenchmarks(), p.numBenchmarks());
    EXPECT_EQ(back.benchmarkNames(), p.benchmarkNames());
    EXPECT_EQ(back.totalSamples(), p.totalSamples());
    EXPECT_TRUE(back.wasApplied(42));
    EXPECT_FALSE(back.wasApplied(43));
    for (std::uint32_t b = 0; b < 3; ++b)
        EXPECT_DOUBLE_EQ(back.errorBound(b, 0.95),
                         p.errorBound(b, 0.95))
            << "bench " << b;
}

TEST_F(FidelityPersist, ProfileMissingFileRejected)
{
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileEveryTruncationRejected)
{
    const std::string full = profileBytes();
    ASSERT_GT(full.size(), 16u);
    for (std::size_t len = 0; len < full.size(); ++len) {
        writeBytes(profilePath(), full.substr(0, len));
        EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                     persist::CacheInvalid)
            << "accepted a profile truncated to " << len << " of "
            << full.size() << " bytes";
    }
}

TEST_F(FidelityPersist, ProfileEverySingleBitFlipRejected)
{
    const std::string full = profileBytes();
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string damaged = full;
            damaged[byte] =
                static_cast<char>(damaged[byte] ^ (1 << bit));
            writeBytes(profilePath(), damaged);
            EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                         persist::CacheInvalid)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// Crafted profiles: checksum-valid bytes whose fields lie.  Layout
// of the fixed prefix: magic[8], version u32 @8, suiteHash u64
// @12, window u32 @20, benchmark count u32 @24, then per benchmark
// name (u32 len @28 + bytes), MPKI class u8, and IntervalStats
// (n u64, mean f64, m2 f64, window-fill u32, values).

TEST_F(FidelityPersist, ProfileUnsupportedVersionRejected)
{
    writeBytes(profilePath(), patchU32(profileBytes(), 8, 99));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileZeroWindowRejected)
{
    writeBytes(profilePath(), patchU32(profileBytes(), 20, 0));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileImplausibleWindowRejected)
{
    writeBytes(profilePath(),
               patchU32(profileBytes(), 20, 100000));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileImplausibleBenchCountRejected)
{
    // Far over the cap: rejected before any allocation.
    writeBytes(profilePath(),
               patchU32(profileBytes(), 24, (1u << 20) + 1));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
    // Plausible-looking but one more benchmark than the payload
    // holds: the reader runs out of bytes, never over a buffer.
    writeBytes(profilePath(), patchU32(profileBytes(), 24, 4));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileImplausibleNameLengthRejected)
{
    writeBytes(profilePath(),
               patchU32(profileBytes(), 28, 100000));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileImplausibleMpkiClassRejected)
{
    // "alpha" is 5 bytes; its class byte sits at 28 + 4 + 5.
    writeBytes(profilePath(), patchU8(profileBytes(), 37, 7));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileWindowLargerThanLifetimeRejected)
{
    // Bench 0 has n = 2 lifetime samples and a window fill of 2;
    // claim a fill of 3 (still under the capacity of 8).  Fill
    // count u32 sits after the name (9), class (1) and the Welford
    // triple (24): 28 + 9 + 1 + 24 = 62.
    writeBytes(profilePath(), patchU32(profileBytes(), 62, 3));
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ProfileTrailingBytesRejected)
{
    std::string bytes = profileBytes();
    bytes.resize(bytes.size() - 8);
    bytes.push_back('\0');
    bytes = reseal(bytes + "XXXXXXXX"); // dummy sum, re-sealed
    writeBytes(profilePath(), bytes);
    EXPECT_THROW(fidelity::readErrorProfile(profilePath()),
                 persist::CacheInvalid);
}

// ---------------------------------------------------------------
// fidelity-bitmap.bin (the escalation sidecar)
// ---------------------------------------------------------------

TEST_F(FidelityPersist, EscalationRecordRoundTrips)
{
    const fidelity::EscalationRecord rec = sampleRecord();
    fidelity::writeEscalationRecord(dir_, rec);
    ASSERT_TRUE(fidelity::hasEscalationRecord(dir_));
    const fidelity::EscalationRecord back =
        fidelity::readEscalationRecord(dir_);
    EXPECT_EQ(back.badcoFingerprint, rec.badcoFingerprint);
    EXPECT_EQ(back.detailedFingerprint, rec.detailedFingerprint);
    EXPECT_EQ(back.seed, rec.seed);
    EXPECT_EQ(back.metric, rec.metric);
    EXPECT_EQ(back.policyX, rec.policyX);
    EXPECT_EQ(back.policyY, rec.policyY);
    EXPECT_DOUBLE_EQ(back.quantile, rec.quantile);
    EXPECT_DOUBLE_EQ(back.budgetFraction, rec.budgetFraction);
    EXPECT_EQ(back.firstRank, rec.firstRank);
    EXPECT_EQ(back.lastRank, rec.lastRank);
    EXPECT_EQ(back.escalatedCount, rec.escalatedCount);
    EXPECT_EQ(back.bitmap, rec.bitmap);
    for (std::uint64_t row = 0; row < rec.rows(); ++row)
        EXPECT_EQ(back.escalated(row), rec.escalated(row))
            << "row " << row;
}

TEST_F(FidelityPersist, EscalationRecordEveryTruncationRejected)
{
    const std::string full = recordBytes();
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    for (std::size_t len = 0; len < full.size(); ++len) {
        writeBytes(path, full.substr(0, len));
        EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                     persist::CacheInvalid)
            << "accepted a record truncated to " << len << " of "
            << full.size() << " bytes";
    }
}

TEST_F(FidelityPersist, EscalationRecordEverySingleBitFlipRejected)
{
    const std::string full = recordBytes();
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string damaged = full;
            damaged[byte] =
                static_cast<char>(damaged[byte] ^ (1 << bit));
            writeBytes(path, damaged);
            EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                         persist::CacheInvalid)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// Crafted records: the body ends with firstRank u64, lastRank u64,
// escalatedCount u64, then the 2-byte bitmap, so from the body end
// the bitmap is at -2, escalatedCount at -10, lastRank at -18 and
// firstRank at -26.

TEST_F(FidelityPersist, EscalationRecordInvertedRangeRejected)
{
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    writeBytes(path, patchTailU64(recordBytes(), 26, 100));
    EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, EscalationRecordBitmapSizeLieRejected)
{
    // lastRank claims 100 rows; the bitmap holds only 2 bytes.
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    writeBytes(path, patchTailU64(recordBytes(), 18, 100));
    EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, EscalationRecordCountOverRowsRejected)
{
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    writeBytes(path, patchTailU64(recordBytes(), 10, 50));
    EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, EscalationRecordPopcountLieRejected)
{
    // Three bits are set; claim four.
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    writeBytes(path, patchTailU64(recordBytes(), 10, 4));
    EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, EscalationRecordStrayTailBitsRejected)
{
    // 11 rows use bits 0..2 of the last bitmap byte; set bit 5
    // (a row past the end).  The popcount over real rows still
    // matches, so only the stray-bit check can catch this.
    std::string bytes = recordBytes();
    const std::size_t last_body_byte = bytes.size() - 8 - 1;
    bytes[last_body_byte] = static_cast<char>(
        static_cast<unsigned char>(bytes[last_body_byte]) | 0x20);
    const std::string path =
        fidelity::escalationRecordPath(dir_);
    writeBytes(path, reseal(std::move(bytes)));
    EXPECT_THROW(fidelity::readEscalationRecord(dir_),
                 persist::CacheInvalid);
}

// ---------------------------------------------------------------
// fidelity-batch-*.bin
// ---------------------------------------------------------------

TEST_F(FidelityPersist, BatchRoundTrips)
{
    const fidelity::FidelityBatch b = sampleBatch();
    fidelity::writeFidelityBatch(dir_, b);
    const fidelity::FidelityBatch back =
        fidelity::readFidelityBatch(dir_, b.detailedFingerprint,
                                    0);
    EXPECT_EQ(back.ranks, b.ranks);
    EXPECT_EQ(back.ipc, b.ipc);
    EXPECT_EQ(back.cores, b.cores);
    EXPECT_EQ(back.numPolicies, b.numPolicies);
    EXPECT_EQ(back.firstOrdinal, b.firstOrdinal);
}

TEST_F(FidelityPersist, BatchFingerprintMismatchRejected)
{
    fidelity::writeFidelityBatch(dir_, sampleBatch());
    EXPECT_THROW(
        fidelity::readFidelityBatch(dir_, 0xdeadbeefULL, 0),
        persist::CacheInvalid);
}

TEST_F(FidelityPersist, BatchRenamedToWrongIndexRejected)
{
    // A batch file renamed to another index (e.g. by a hostile or
    // confused sync tool) must not be accepted as that index.
    const fidelity::FidelityBatch b = sampleBatch();
    fidelity::writeFidelityBatch(dir_, b);
    fs::copy_file(fidelity::fidelityBatchPath(dir_, 0),
                  fidelity::fidelityBatchPath(dir_, 1));
    EXPECT_THROW(fidelity::readFidelityBatch(
                     dir_, b.detailedFingerprint, 1),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, BatchEveryTruncationRejected)
{
    const std::string full = batchBytes();
    const std::string path = fidelity::fidelityBatchPath(dir_, 0);
    const std::uint64_t fp = sampleBatch().detailedFingerprint;
    for (std::size_t len = 0; len < full.size(); ++len) {
        writeBytes(path, full.substr(0, len));
        EXPECT_THROW(fidelity::readFidelityBatch(dir_, fp, 0),
                     persist::CacheInvalid)
            << "accepted a batch truncated to " << len << " of "
            << full.size() << " bytes";
    }
}

TEST_F(FidelityPersist, BatchEverySingleBitFlipRejected)
{
    const std::string full = batchBytes();
    const std::string path = fidelity::fidelityBatchPath(dir_, 0);
    const std::uint64_t fp = sampleBatch().detailedFingerprint;
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string damaged = full;
            damaged[byte] =
                static_cast<char>(damaged[byte] ^ (1 << bit));
            writeBytes(path, damaged);
            EXPECT_THROW(
                fidelity::readFidelityBatch(dir_, fp, 0),
                persist::CacheInvalid)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// Crafted batches.  Fixed prefix layout: magic[8], version u32
// @8, index u32 @12, fingerprint u64 @16, cores u32 @24,
// numPolicies u32 @28, firstOrdinal u64 @32, row count u32 @40.

TEST_F(FidelityPersist, BatchDegenerateShapeRejected)
{
    const std::string path = fidelity::fidelityBatchPath(dir_, 0);
    const std::uint64_t fp = sampleBatch().detailedFingerprint;
    writeBytes(path, patchU32(batchBytes(), 24, 0)); // cores = 0
    EXPECT_THROW(fidelity::readFidelityBatch(dir_, fp, 0),
                 persist::CacheInvalid);
    writeBytes(path, patchU32(batchBytes(), 28, 0)); // policies
    EXPECT_THROW(fidelity::readFidelityBatch(dir_, fp, 0),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, BatchRowCountLieRejected)
{
    const std::string path = fidelity::fidelityBatchPath(dir_, 0);
    const std::uint64_t fp = sampleBatch().detailedFingerprint;
    writeBytes(path, patchU32(batchBytes(), 40, 4)); // 3 -> 4
    EXPECT_THROW(fidelity::readFidelityBatch(dir_, fp, 0),
                 persist::CacheInvalid);
    writeBytes(path,
               patchU32(batchBytes(), 40, (1u << 20) + 1));
    EXPECT_THROW(fidelity::readFidelityBatch(dir_, fp, 0),
                 persist::CacheInvalid);
}

// ---------------------------------------------------------------
// hybrid.bin (the confidence report / commit point)
// ---------------------------------------------------------------

TEST_F(FidelityPersist, ReportRoundTrips)
{
    const fidelity::HybridReportRecord rep = sampleReport();
    fidelity::writeHybridReport(dir_, rep);
    ASSERT_TRUE(fidelity::hasHybridReport(dir_));
    const fidelity::HybridReportRecord back =
        fidelity::readHybridReport(dir_);
    EXPECT_EQ(back.badcoFingerprint, rep.badcoFingerprint);
    EXPECT_EQ(back.metric, rep.metric);
    EXPECT_EQ(back.workloads, rep.workloads);
    EXPECT_EQ(back.escalated, rep.escalated);
    EXPECT_DOUBLE_EQ(back.meanD, rep.meanD);
    EXPECT_DOUBLE_EQ(back.comboLo, rep.comboLo);
    EXPECT_DOUBLE_EQ(back.comboHi, rep.comboHi);
    EXPECT_EQ(back.yWins, rep.yWins);
}

TEST_F(FidelityPersist, ReportEveryTruncationRejected)
{
    const std::string full = reportBytes();
    const std::string path = fidelity::hybridReportPath(dir_);
    for (std::size_t len = 0; len < full.size(); ++len) {
        writeBytes(path, full.substr(0, len));
        EXPECT_THROW(fidelity::readHybridReport(dir_),
                     persist::CacheInvalid)
            << "accepted a report truncated to " << len << " of "
            << full.size() << " bytes";
    }
}

TEST_F(FidelityPersist, ReportEverySingleBitFlipRejected)
{
    const std::string full = reportBytes();
    const std::string path = fidelity::hybridReportPath(dir_);
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string damaged = full;
            damaged[byte] =
                static_cast<char>(damaged[byte] ^ (1 << bit));
            writeBytes(path, damaged);
            EXPECT_THROW(fidelity::readHybridReport(dir_),
                         persist::CacheInvalid)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// Crafted reports: the body ends with the yWins byte, preceded by
// ten f64s (comboHi at -9 ... escalationFraction at -81), then
// escalated u64 at -89 and workloads u64 at -97.

TEST_F(FidelityPersist, ReportEscalatedOverWorkloadsRejected)
{
    const std::string path = fidelity::hybridReportPath(dir_);
    writeBytes(path, patchTailU64(reportBytes(), 89, 12));
    EXPECT_THROW(fidelity::readHybridReport(dir_),
                 persist::CacheInvalid);
}

TEST_F(FidelityPersist, ReportNonBooleanVerdictRejected)
{
    std::string bytes = reportBytes();
    const std::size_t verdict_at = bytes.size() - 8 - 1;
    const std::string path = fidelity::hybridReportPath(dir_);
    writeBytes(path, patchU8(std::move(bytes), verdict_at, 2));
    EXPECT_THROW(fidelity::readHybridReport(dir_),
                 persist::CacheInvalid);
}

} // namespace

} // namespace wsel
