/**
 * @file
 * Fault-tolerance tests for campaign persistence: checkpoint/resume
 * via the journal under injected kill-points, integrity validation
 * (truncation, bit flips, version skew, fingerprint drift) with
 * quarantine-and-regenerate semantics, atomic file replacement, and
 * advisory locking across processes.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define WSEL_TEST_HAVE_FORK 1
#endif

#include <gtest/gtest.h>

#include "fault_injection.hh"
#include "sim/campaign.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kUops = 4000;

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    return s;
}

const std::vector<PolicyKind> kPolicies = {PolicyKind::LRU,
                                           PolicyKind::DIP};

/**
 * Run the 2-policy x 3-workload x 2-core BADCO campaign used
 * throughout these tests, journaling to @p journal when non-empty.
 * @p model_dir (when non-empty) persists BADCO models so repeated
 * runs in one test skip rebuilding them.
 */
Campaign
runTiny(const std::string &journal = "",
        const std::string &model_dir = "")
{
    const auto suite = testSuite();
    const WorkloadPopulation pop(2, 2); // 3 workloads
    BadcoModelStore store(CoreConfig{}, kUops, 5, model_dir);
    CampaignOptions opts;
    opts.journalPath = journal;
    return runBadcoCampaign(pop.enumerateAll(), kPolicies, 2, kUops,
                            store, suite, opts);
}

void
expectSameResults(const Campaign &a, const Campaign &b)
{
    ASSERT_EQ(a.policies.size(), b.policies.size());
    ASSERT_EQ(a.workloads.size(), b.workloads.size());
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    for (std::size_t p = 0; p < a.policies.size(); ++p) {
        for (std::size_t w = 0; w < a.workloads.size(); ++w) {
            ASSERT_EQ(a.ipc[p][w].size(), b.ipc[p][w].size());
            for (std::size_t k = 0; k < a.ipc[p][w].size(); ++k) {
                // Bitwise equality: a resumed campaign must be
                // indistinguishable from an uninterrupted one.
                EXPECT_EQ(a.ipc[p][w][k], b.ipc[p][w][k])
                    << "cell (" << p << "," << w << "," << k << ")";
            }
        }
    }
}

/** Per-test scratch directory, also exported as WSEL_CACHE_DIR. */
class Resilience : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_resilience_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        setenv("WSEL_CACHE_DIR", dir_.c_str(), 1);
    }

    void
    TearDown() override
    {
        unsetenv("WSEL_CACHE_DIR");
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /** Files in the scratch dir whose name contains @p needle. */
    std::size_t
    countContaining(const std::string &needle) const
    {
        std::size_t n = 0;
        for (const auto &e : fs::directory_iterator(dir_))
            if (e.path().filename().string().find(needle) !=
                std::string::npos)
                ++n;
        return n;
    }

    std::string dir_;
};

// ---------------------------------------------------------------
// Format v2: round trip, integrity, strict-load error reporting.
// ---------------------------------------------------------------

TEST_F(Resilience, SaveLoadRoundTripV2)
{
    const Campaign c = runTiny();
    EXPECT_NE(c.fingerprint, 0u);
    const std::string file = path("roundtrip.csv");
    c.save(file);

    const std::string text = test::readFile(file);
    EXPECT_EQ(text.rfind("wsel-campaign,v2\n", 0), 0u);
    EXPECT_NE(text.find("\nfingerprint,"), std::string::npos);
    EXPECT_NE(text.find("\nfooter,"), std::string::npos);

    const Campaign r = Campaign::load(file);
    EXPECT_EQ(r.formatVersion, 2);
    EXPECT_EQ(r.simulator, c.simulator);
    EXPECT_EQ(r.cores, c.cores);
    EXPECT_EQ(r.targetUops, c.targetUops);
    EXPECT_EQ(r.policies, c.policies);
    EXPECT_EQ(r.benchmarks, c.benchmarks);
    expectSameResults(r, c);
}

TEST_F(Resilience, LegacyV1StillLoadsStrict)
{
    const Campaign c = runTiny();
    const std::string file = path("legacy.csv");
    c.save(file);
    // Down-convert the saved v2 file to v1: drop the fingerprint
    // line and the footer, and rewrite the version tag.
    std::string text = test::readFile(file);
    const auto fp_at = text.find("fingerprint,");
    const auto fp_end = text.find('\n', fp_at);
    text.erase(fp_at, fp_end - fp_at + 1);
    const auto foot_at = text.rfind("footer,");
    text.erase(foot_at);
    text.replace(text.find("v2"), 2, "v1");
    const std::string v1 = path("legacy_v1.csv");
    {
        std::ofstream os(v1, std::ios::binary);
        os << text;
    }
    const Campaign r = Campaign::load(v1);
    EXPECT_EQ(r.formatVersion, 1);
    EXPECT_EQ(r.fingerprint, 0u);
    ASSERT_EQ(r.workloads.size(), c.workloads.size());
    for (std::size_t p = 0; p < c.policies.size(); ++p)
        for (std::size_t w = 0; w < c.workloads.size(); ++w)
            EXPECT_EQ(r.ipc[p][w], c.ipc[p][w]);
}

TEST_F(Resilience, MalformedNumericFieldsAreFatalNotStdExceptions)
{
    // v1 has no checksum, so malformed fields reach the numeric
    // parsers directly; each must surface as FatalError (with file
    // and line context), never as a raw std::invalid_argument or
    // std::out_of_range escaping std::stoull/std::stod.
    const std::string base = "wsel-campaign,v1\n"
                             "simulator,badco\n"
                             "cores,2\n"
                             "target,4000\n"
                             "simseconds,0.5\n"
                             "instructions,48000\n"
                             "policies,LRU;DIP\n"
                             "benchmarks,a;b\n"
                             "refipc,1.0;2.0\n"
                             "nworkloads,1\n"
                             "w,0;1\n"
                             "i,0,0,1.0;1.0\n"
                             "i,1,0,1.0;1.0\n";
    const struct
    {
        std::string from, to;
    } cases[] = {
        {"cores,2", "cores,two"},
        {"cores,2", "cores,-2"},
        {"target,4000", "target,40x0"},
        {"target,4000", "target,99999999999999999999999"},
        {"simseconds,0.5", "simseconds,fast"},
        {"instructions,48000", "instructions,"},
        {"refipc,1.0;2.0", "refipc,1.0;two"},
        {"nworkloads,1", "nworkloads,one"},
        {"w,0;1", "w,0;x"},
        {"i,0,0,1.0;1.0", "i,zero,0,1.0;1.0"},
        {"i,0,0,1.0;1.0", "i,0,0,1.0;oops"},
        {"policies,LRU;DIP", "policies,LRU;BOGUS"},
    };
    int idx = 0;
    for (const auto &tc : cases) {
        std::string text = base;
        const auto at = text.find(tc.from);
        ASSERT_NE(at, std::string::npos) << tc.from;
        text.replace(at, tc.from.size(), tc.to);
        const std::string file =
            path("malformed_" + std::to_string(idx++) + ".csv");
        {
            std::ofstream os(file, std::ios::binary);
            os << text;
        }
        try {
            Campaign::load(file);
            FAIL() << "loaded malformed file: " << tc.to;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(file),
                      std::string::npos)
                << "error lacks file context: " << e.what();
        }
    }
}

TEST_F(Resilience, TruncationAtEveryByteIsDetected)
{
    const Campaign c = runTiny();
    const std::string file = path("full.csv");
    c.save(file);
    const std::string text = test::readFile(file);
    const std::string cut_file = path("cut.csv");
    for (std::size_t cut = 0; cut < text.size(); ++cut) {
        {
            std::ofstream os(cut_file, std::ios::binary);
            os.write(text.data(),
                     static_cast<std::streamsize>(cut));
        }
        EXPECT_THROW(Campaign::load(cut_file), FatalError)
            << "truncation at byte " << cut << " went undetected";
    }
    // Sanity: the untruncated file still loads.
    {
        std::ofstream os(cut_file, std::ios::binary);
        os << text;
    }
    EXPECT_NO_THROW(Campaign::load(cut_file));
}

TEST_F(Resilience, BitFlipFailsChecksum)
{
    const Campaign c = runTiny();
    const std::string file = path("flip.csv");
    c.save(file);
    // Flip a low bit of a digit inside an IPC row: the value stays
    // parseable, so only the checksum can catch it.
    const std::string text = test::readFile(file);
    const auto row = text.find("\ni,0,0,");
    ASSERT_NE(row, std::string::npos);
    test::flipBit(file, row + 8, 0); // a digit of the first value
    EXPECT_THROW(Campaign::load(file), FatalError);
}

// ---------------------------------------------------------------
// cachedCampaign: quarantine-and-regenerate, never abort.
// ---------------------------------------------------------------

TEST_F(Resilience, CorruptCacheIsQuarantinedAndRegenerated)
{
    int produced = 0;
    auto produce = [&]() {
        ++produced;
        return runTiny();
    };
    const Campaign a = cachedCampaign("resil", 0, produce);
    EXPECT_EQ(produced, 1);
    const std::string file = path("campaign_v2_resil.csv");
    ASSERT_TRUE(fs::exists(file));

    const auto row = test::readFile(file).find("\ni,0,0,");
    ASSERT_NE(row, std::string::npos);
    test::flipBit(file, row + 8, 0);

    const Campaign b = cachedCampaign("resil", 0, produce);
    EXPECT_EQ(produced, 2);
    EXPECT_EQ(countContaining(".corrupt"), 1u);
    expectSameResults(a, b);
    // The regenerated file is valid again.
    EXPECT_NO_THROW(Campaign::load(file));
}

TEST_F(Resilience, TruncatedCacheIsQuarantinedAndRegenerated)
{
    int produced = 0;
    auto produce = [&]() {
        ++produced;
        return runTiny();
    };
    cachedCampaign("trunc", 0, produce);
    const std::string file = path("campaign_v2_trunc.csv");
    test::truncateFile(file, test::fileSize(file) / 2);
    cachedCampaign("trunc", 0, produce);
    EXPECT_EQ(produced, 2);
    EXPECT_EQ(countContaining(".corrupt"), 1u);
}

TEST_F(Resilience, FingerprintMismatchIsQuarantinedAndRegenerated)
{
    int produced = 0;
    auto produce = [&]() {
        ++produced;
        return runTiny();
    };
    const Campaign a = cachedCampaign("fpr", 0, produce);
    EXPECT_EQ(produced, 1);
    // Same key, different expected fingerprint: the config changed
    // in a way the filename key missed -> re-simulate.
    const Campaign b =
        cachedCampaign("fpr", a.fingerprint + 1, produce);
    EXPECT_EQ(produced, 2);
    EXPECT_EQ(countContaining(".corrupt"), 1u);
    // Matching fingerprint is served from cache.
    const Campaign d =
        cachedCampaign("fpr", a.fingerprint, produce);
    EXPECT_EQ(produced, 2);
    expectSameResults(b, d);
}

TEST_F(Resilience, VersionSkewedCacheIsQuarantinedAndRegenerated)
{
    int produced = 0;
    auto produce = [&]() {
        ++produced;
        return runTiny();
    };
    const Campaign a = cachedCampaign("skew", 0, produce);
    const std::string file = path("campaign_v2_skew.csv");
    // Replace the cache with a valid *v1* file (old format).
    std::string text = test::readFile(file);
    const auto fp_at = text.find("fingerprint,");
    text.erase(fp_at, text.find('\n', fp_at) - fp_at + 1);
    text.erase(text.rfind("footer,"));
    text.replace(text.find("v2"), 2, "v1");
    {
        std::ofstream os(file, std::ios::binary);
        os << text;
    }
    const Campaign b = cachedCampaign("skew", 0, produce);
    EXPECT_EQ(produced, 2);
    EXPECT_EQ(countContaining(".corrupt"), 1u);
    expectSameResults(a, b);
}

// ---------------------------------------------------------------
// Checkpoint/resume: kill-point injection at every cell.
// ---------------------------------------------------------------

TEST_F(Resilience, ResumeAfterKillAtEveryPointMatchesUninterrupted)
{
    const std::string models = path("models");
    const Campaign base = runTiny("", models);
    const std::size_t total =
        base.policies.size() * base.workloads.size();
    ASSERT_EQ(total, 6u);

    for (const char *point :
         {"journal.append", "journal.before-append"}) {
        for (std::size_t n = 1; n <= total; ++n) {
            const std::string journal =
                path(std::string("j_") + (point[8] == 'a' ? "a" : "b") +
                     std::to_string(n) + ".partial");
            {
                test::FaultInjector kill(point, n);
                EXPECT_THROW(runTiny(journal, models),
                             test::InjectedFault)
                    << point << " #" << n;
            }
            ASSERT_TRUE(fs::exists(journal));
            // The resumed run must reproduce the uninterrupted
            // campaign bit for bit, and must only simulate the
            // cells the killed run had not completed.
            test::FaultInjector counting;
            const Campaign resumed = runTiny(journal, models);
            expectSameResults(base, resumed);
            const std::size_t completed_before_kill =
                std::string(point) == "journal.append"
                    ? n          // killed after the nth record
                    : n - 1;     // killed before writing the nth
            EXPECT_EQ(counting.hits("journal.append"),
                      total - completed_before_kill)
                << point << " #" << n;
        }
    }
}

TEST_F(Resilience, DetailedCampaignResumesToo)
{
    const auto suite = testSuite();
    const WorkloadPopulation pop(2, 2);
    CampaignOptions opts;
    const Campaign base =
        runDetailedCampaign(pop.enumerateAll(), {PolicyKind::LRU},
                            2, kUops, CoreConfig{}, suite, opts);
    const std::string journal = path("det.partial");
    opts.journalPath = journal;
    {
        test::FaultInjector kill("journal.append", 1);
        EXPECT_THROW(runDetailedCampaign(pop.enumerateAll(),
                                         {PolicyKind::LRU}, 2,
                                         kUops, CoreConfig{}, suite,
                                         opts),
                     test::InjectedFault);
    }
    const Campaign resumed = runDetailedCampaign(
        pop.enumerateAll(), {PolicyKind::LRU}, 2, kUops,
        CoreConfig{}, suite, opts);
    expectSameResults(base, resumed);
}

TEST_F(Resilience, MismatchedJournalIsQuarantinedAndIgnored)
{
    const std::string models = path("models");
    const Campaign base = runTiny("", models);
    const std::string journal = path("stale.partial");
    {
        std::ofstream os(journal, std::ios::binary);
        os << "wsel-journal,v2,00000000deadbeef,9,9\n"
           << "r,0,0,1.0;1.0,0.1,1000,0123456789abcdef\n";
    }
    const Campaign c = runTiny(journal, models);
    expectSameResults(base, c);
    EXPECT_EQ(countContaining("stale.partial.corrupt"), 1u);
}

TEST_F(Resilience, DamagedJournalTailIsDroppedOnResume)
{
    const std::string models = path("models");
    const Campaign base = runTiny("", models);
    const std::string journal = path("tail.partial");
    {
        test::FaultInjector kill("journal.append", 3);
        EXPECT_THROW(runTiny(journal, models), test::InjectedFault);
    }
    // Simulate a record half-written at the kill: valid prefix,
    // garbage tail (no trailing checksum, no newline).
    {
        std::ofstream os(journal,
                         std::ios::binary | std::ios::app);
        os << "r,1,2,0.73";
    }
    const Campaign resumed = runTiny(journal, models);
    expectSameResults(base, resumed);
}

TEST_F(Resilience, CachedCampaignResumesAcrossCalls)
{
    const std::string models = path("models");
    const Campaign base = runTiny("", models);
    int produced = 0;
    auto produce = [&](const std::string &journal) {
        ++produced;
        return runTiny(journal, models);
    };
    {
        test::FaultInjector kill("journal.append", 2);
        EXPECT_THROW(cachedCampaign("resume", 0, produce),
                     test::InjectedFault);
    }
    EXPECT_TRUE(
        fs::exists(path("campaign_v2_resume.csv.partial")));
    test::FaultInjector counting;
    const Campaign c = cachedCampaign("resume", 0, produce);
    EXPECT_EQ(produced, 2);
    expectSameResults(base, c);
    EXPECT_EQ(counting.hits("journal.append"), 4u); // 6 cells - 2
    // Final artifact present, journal cleaned up.
    EXPECT_TRUE(fs::exists(path("campaign_v2_resume.csv")));
    EXPECT_FALSE(
        fs::exists(path("campaign_v2_resume.csv.partial")));
    // A third call serves the cache without any simulation.
    const Campaign d = cachedCampaign("resume", 0, produce);
    EXPECT_EQ(produced, 2);
    expectSameResults(c, d);
}

// ---------------------------------------------------------------
// Atomic replacement, quarantine, locking, cache dir creation.
// ---------------------------------------------------------------

TEST_F(Resilience, AtomicWriteKilledBeforeRenameKeepsOldContents)
{
    const std::string file = path("atomic.txt");
    persist::atomicWriteFile(file, "generation-1");
    {
        test::FaultInjector kill("atomic.before-rename", 1);
        EXPECT_THROW(persist::atomicWriteFile(file, "generation-2"),
                     test::InjectedFault);
    }
    EXPECT_EQ(test::readFile(file), "generation-1");
    persist::atomicWriteFile(file, "generation-2");
    EXPECT_EQ(test::readFile(file), "generation-2");
}

TEST_F(Resilience, QuarantineRenamesWithoutDeleting)
{
    const std::string file = path("artifact.bin");
    persist::atomicWriteFile(file, "payload");
    const std::string moved = persist::quarantineFile(file);
    EXPECT_EQ(moved, file + ".corrupt");
    EXPECT_FALSE(fs::exists(file));
    EXPECT_EQ(test::readFile(moved), "payload");
    // A second corrupt generation gets a numbered suffix.
    persist::atomicWriteFile(file, "payload2");
    const std::string moved2 = persist::quarantineFile(file);
    EXPECT_EQ(moved2, file + ".corrupt.1");
}

TEST_F(Resilience, FileLockExcludesSecondHolder)
{
    const std::string lockfile = path("x.lock");
    persist::FileLock held(lockfile);
    ASSERT_TRUE(held.held());
    // A second open file description cannot take the lock...
    persist::FileLock second =
        persist::FileLock::tryAcquire(lockfile);
    EXPECT_FALSE(second.held());
    // ...until the first holder releases it.
    held.release();
    persist::FileLock third =
        persist::FileLock::tryAcquire(lockfile);
    EXPECT_TRUE(third.held());
}

#ifdef WSEL_TEST_HAVE_FORK
TEST_F(Resilience, FileLockExcludesAcrossProcesses)
{
    const std::string lockfile = path("proc.lock");
    persist::FileLock held(lockfile);
    ASSERT_TRUE(held.held());
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: the parent's lock must exclude us.
        persist::FileLock mine =
            persist::FileLock::tryAcquire(lockfile);
        ::_exit(mine.held() ? 1 : 0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child acquired a lock the parent held";

    held.release();
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        persist::FileLock mine =
            persist::FileLock::tryAcquire(lockfile);
        ::_exit(mine.held() ? 0 : 1);
    }
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child failed to acquire a released lock";
}
#endif

TEST_F(Resilience, DefaultCacheDirCreatesDirectory)
{
    const std::string nested = path("nested/a/b");
    setenv("WSEL_CACHE_DIR", nested.c_str(), 1);
    EXPECT_EQ(defaultCacheDir(), nested);
    EXPECT_TRUE(fs::is_directory(nested));
    setenv("WSEL_CACHE_DIR", "", 1);
    EXPECT_EQ(defaultCacheDir(), "");
}

TEST_F(Resilience, CorruptModelCacheIsQuarantinedAndRebuilt)
{
    const auto profile = test::lightProfile(7);
    {
        BadcoModelStore store(CoreConfig{}, kUops, 5, dir_);
        store.get(profile);
        EXPECT_EQ(store.modelsBuilt(), 1u);
    }
    // Find and damage the persisted model.
    std::string model_file;
    for (const auto &e : fs::directory_iterator(dir_)) {
        const std::string name = e.path().filename().string();
        if (name.rfind("badco_", 0) == 0 &&
            name.find(".bin") != std::string::npos)
            model_file = e.path().string();
    }
    ASSERT_FALSE(model_file.empty());
    test::truncateFile(model_file, 16);
    // A fresh store must rebuild instead of aborting.
    BadcoModelStore store2(CoreConfig{}, kUops, 5, dir_);
    const BadcoModel &m = store2.get(profile);
    EXPECT_EQ(store2.modelsBuilt(), 1u);
    EXPECT_EQ(m.traceUops, kUops);
    EXPECT_EQ(countContaining(".corrupt"), 1u);
    // And the rewritten cache is valid for the next store.
    BadcoModelStore store3(CoreConfig{}, kUops, 5, dir_);
    store3.get(profile);
    EXPECT_EQ(store3.modelsBuilt(), 0u);
}

} // namespace
} // namespace wsel
