/**
 * @file
 * Tests for the replacement-policy framework: per-policy behaviour
 * plus parameterized invariants across all policies.
 */

#include <set>

#include <gtest/gtest.h>

#include "cache/replacement.hh"
#include "stats/logging.hh"

namespace wsel
{

TEST(PolicyNames, RoundTrip)
{
    for (PolicyKind k :
         {PolicyKind::LRU, PolicyKind::Random, PolicyKind::FIFO,
          PolicyKind::DIP, PolicyKind::DRRIP, PolicyKind::SRRIP,
          PolicyKind::BRRIP, PolicyKind::BIP, PolicyKind::NRU,
          PolicyKind::PLRU}) {
        EXPECT_EQ(parsePolicyKind(toString(k)), k);
    }
    EXPECT_EQ(parsePolicyKind("RANDOM"), PolicyKind::Random);
    EXPECT_THROW(parsePolicyKind("MRU"), FatalError);
}

TEST(PolicyNames, PaperPoliciesInPaperOrder)
{
    const auto &p = paperPolicies();
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p[0], PolicyKind::LRU);
    EXPECT_EQ(p[1], PolicyKind::Random);
    EXPECT_EQ(p[2], PolicyKind::FIFO);
    EXPECT_EQ(p[3], PolicyKind::DIP);
    EXPECT_EQ(p[4], PolicyKind::DRRIP);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    auto p = makePolicy(PolicyKind::LRU, 1, 4, 1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    // Access ways 1..3; way 0 becomes LRU.
    p->onHit(0, 1);
    p->onHit(0, 2);
    p->onHit(0, 3);
    EXPECT_EQ(p->selectVictim(0), 0u);
    // Touch way 0; way 1 is now LRU.
    p->onHit(0, 0);
    EXPECT_EQ(p->selectVictim(0), 1u);
}

TEST(Fifo, IgnoresHits)
{
    auto p = makePolicy(PolicyKind::FIFO, 1, 4, 1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    // Hitting way 0 must not save it: it was filled first.
    p->onHit(0, 0);
    p->onHit(0, 0);
    EXPECT_EQ(p->selectVictim(0), 0u);
}

TEST(Random, DeterministicPerSeedAndCoversWays)
{
    auto a = makePolicy(PolicyKind::Random, 1, 8, 99);
    auto b = makePolicy(PolicyKind::Random, 1, 8, 99);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t va = a->selectVictim(0);
        EXPECT_EQ(va, b->selectVictim(0));
        EXPECT_LT(va, 8u);
        seen.insert(va);
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Nru, PrefersUnreferenced)
{
    auto p = makePolicy(PolicyKind::NRU, 1, 4, 1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w); // all referenced
    // All referenced: clears and evicts way 0.
    EXPECT_EQ(p->selectVictim(0), 0u);
    // Now all bits are cleared; touch way 2: victims avoid it.
    p->onHit(0, 2);
    const std::uint32_t v = p->selectVictim(0);
    EXPECT_NE(v, 2u);
}

TEST(Plru, VictimIsNeverTheJustTouchedWay)
{
    auto p = makePolicy(PolicyKind::PLRU, 1, 8, 1);
    for (std::uint32_t w = 0; w < 8; ++w)
        p->onFill(0, w);
    for (std::uint32_t w = 0; w < 8; ++w) {
        p->onHit(0, w);
        EXPECT_NE(p->selectVictim(0), w);
    }
}

TEST(Plru, RequiresPowerOfTwoWays)
{
    EXPECT_THROW(makePolicy(PolicyKind::PLRU, 1, 6, 1), FatalError);
}

TEST(Dip, LeaderSetsSteerPsel)
{
    // Spacing 32: set 0 is the LRU leader, set 16 the BIP leader.
    DuelingConfig cfg;
    auto p = makeDip(64, 4, 1, cfg);
    // Misses in the LRU leader push PSEL up (LRU losing).
    for (int i = 0; i < 100; ++i)
        p->onMiss(0);
    // With PSEL above the midpoint, followers insert BIP-style:
    // most fills land at LRU and are immediately evictable.
    int evict_just_filled = 0;
    for (int i = 0; i < 200; ++i) {
        for (std::uint32_t w = 0; w < 4; ++w)
            p->onFill(3, w);
        // Fill once more into the victim and see if it stays LRU.
        const std::uint32_t v = p->selectVictim(3);
        p->onFill(3, v);
        if (p->selectVictim(3) == v)
            ++evict_just_filled;
    }
    // BIP inserts at LRU except 1-in-32 fills.
    EXPECT_GT(evict_just_filled, 150);
}

TEST(Bip, MostInsertionsAreAtLruPosition)
{
    auto p = makePolicy(PolicyKind::BIP, 1, 4, 7);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    int stayed_lru = 0;
    const int n = 640;
    for (int i = 0; i < n; ++i) {
        const std::uint32_t v = p->selectVictim(0);
        p->onFill(0, v);
        if (p->selectVictim(0) == v)
            ++stayed_lru;
    }
    // Expect roughly 1 - 1/32 of fills to stay at LRU.
    EXPECT_GT(stayed_lru, n * 0.9);
    EXPECT_LT(stayed_lru, n);
}

TEST(Lip, AllInsertionsAreAtLruPosition)
{
    auto p = makePolicy(PolicyKind::LIP, 1, 4, 7);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t v = p->selectVictim(0);
        p->onFill(0, v);
        // LIP never inserts at MRU: the fill stays the victim.
        ASSERT_EQ(p->selectVictim(0), v);
    }
}

TEST(Lip, HitsStillPromote)
{
    auto p = makePolicy(PolicyKind::LIP, 1, 4, 7);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    const std::uint32_t v = p->selectVictim(0);
    p->onHit(0, v); // promoted to MRU
    EXPECT_NE(p->selectVictim(0), v);
}

TEST(Srrip, HitPromotionProtectsLine)
{
    auto p = makePolicy(PolicyKind::SRRIP, 1, 4, 1);
    for (std::uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    p->onHit(0, 2); // rrpv -> 0
    // Victim search must pick a non-promoted way.
    EXPECT_NE(p->selectVictim(0), 2u);
}

TEST(Drrip, PselMovesWithLeaderMisses)
{
    DuelingConfig cfg;
    auto p = makeDrrip(64, 4, 1, cfg);
    // Misses in the SRRIP leader (set 0) and BRRIP leader (set 16)
    // must not crash and should steer follower behaviour; we check
    // follower insertions become BRRIP-distant after SRRIP "loses".
    for (int i = 0; i < 600; ++i)
        p->onMiss(0);
    int distant = 0;
    for (int i = 0; i < 320; ++i) {
        const std::uint32_t v = p->selectVictim(5);
        p->onFill(5, v);
        // A distant-inserted line is immediately the victim again.
        if (p->selectVictim(5) == v)
            ++distant;
    }
    EXPECT_GT(distant, 280);
}

/**
 * Parameterized invariants every policy must satisfy.
 */
class PolicyInvariantTest
    : public ::testing::TestWithParam<PolicyKind>
{};

TEST_P(PolicyInvariantTest, VictimAlwaysInRange)
{
    auto p = makePolicy(GetParam(), 8, 8, 3);
    Rng rng(5);
    for (std::uint32_t s = 0; s < 8; ++s)
        for (std::uint32_t w = 0; w < 8; ++w)
            p->onFill(s, w);
    for (int i = 0; i < 5000; ++i) {
        const std::uint32_t set =
            static_cast<std::uint32_t>(rng.nextInt(8));
        switch (rng.nextInt(3)) {
          case 0:
            p->onHit(set, static_cast<std::uint32_t>(rng.nextInt(8)));
            break;
          case 1:
            p->onMiss(set);
            p->onFill(set,
                      static_cast<std::uint32_t>(rng.nextInt(8)));
            break;
          default: {
            const std::uint32_t v = p->selectVictim(set);
            ASSERT_LT(v, 8u);
            p->onFill(set, v);
            break;
          }
        }
    }
}

TEST_P(PolicyInvariantTest, KindReportsConstructedPolicy)
{
    auto p = makePolicy(GetParam(), 4, 4, 1);
    EXPECT_EQ(p->kind(), GetParam());
}

TEST_P(PolicyInvariantTest, FactoryRejectsDegenerateGeometry)
{
    EXPECT_THROW(makePolicy(GetParam(), 0, 4, 1), FatalError);
    EXPECT_THROW(makePolicy(GetParam(), 4, 0, 1), FatalError);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariantTest,
    ::testing::Values(PolicyKind::LRU, PolicyKind::Random,
                      PolicyKind::FIFO, PolicyKind::DIP,
                      PolicyKind::DRRIP, PolicyKind::SRRIP,
                      PolicyKind::BRRIP, PolicyKind::BIP,
                      PolicyKind::LIP, PolicyKind::NRU,
                      PolicyKind::PLRU),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return toString(info.param);
    });

} // namespace wsel
