/**
 * @file
 * Tests for campaign running, persistence and throughput extraction.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/campaign.hh"
#include "stats/logging.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    return s;
}

Campaign
tinyCampaign()
{
    const auto suite = testSuite();
    const WorkloadPopulation pop(2, 2); // 3 workloads
    BadcoModelStore store(CoreConfig{}, 6000, 5);
    return runBadcoCampaign(pop.enumerateAll(),
                            {PolicyKind::LRU, PolicyKind::DIP}, 2,
                            6000, store, suite);
}

} // namespace

TEST(Campaign, ShapeAndContents)
{
    const Campaign c = tinyCampaign();
    EXPECT_EQ(c.simulator, "badco");
    EXPECT_EQ(c.cores, 2u);
    EXPECT_EQ(c.targetUops, 6000u);
    ASSERT_EQ(c.policies.size(), 2u);
    ASSERT_EQ(c.workloads.size(), 3u);
    ASSERT_EQ(c.refIpc.size(), 2u);
    ASSERT_EQ(c.ipc.size(), 2u);
    for (const auto &per_policy : c.ipc) {
        ASSERT_EQ(per_policy.size(), 3u);
        for (const auto &per_workload : per_policy) {
            ASSERT_EQ(per_workload.size(), 2u);
            for (double ipc : per_workload)
                EXPECT_GT(ipc, 0.0);
        }
    }
    EXPECT_GT(c.simSeconds, 0.0);
    EXPECT_EQ(c.instructions, 2u * 3u * 2u * 6000u);
    EXPECT_GT(c.mips(), 0.0);
}

TEST(Campaign, PolicyIndexLookup)
{
    const Campaign c = tinyCampaign();
    EXPECT_EQ(c.policyIndex(PolicyKind::LRU), 0u);
    EXPECT_EQ(c.policyIndex(PolicyKind::DIP), 1u);
    EXPECT_THROW(c.policyIndex(PolicyKind::FIFO), FatalError);
}

TEST(Campaign, PerWorkloadThroughputsMatchManualFormula)
{
    const Campaign c = tinyCampaign();
    const auto t =
        c.perWorkloadThroughputs(0, ThroughputMetric::WSU);
    ASSERT_EQ(t.size(), c.workloads.size());
    for (std::size_t w = 0; w < t.size(); ++w) {
        double sum = 0.0;
        for (std::size_t k = 0; k < c.cores; ++k)
            sum += c.ipc[0][w][k] / c.refIpc[c.workloads[w][k]];
        EXPECT_NEAR(t[w], sum / c.cores, 1e-12);
    }
}

TEST(Campaign, SaveLoadRoundTrip)
{
    const Campaign c = tinyCampaign();
    const auto path = std::filesystem::temp_directory_path() /
                      "wsel_test_campaign.csv";
    c.save(path.string());
    const Campaign r = Campaign::load(path.string());
    EXPECT_EQ(r.simulator, c.simulator);
    EXPECT_EQ(r.cores, c.cores);
    EXPECT_EQ(r.targetUops, c.targetUops);
    EXPECT_EQ(r.policies, c.policies);
    EXPECT_EQ(r.benchmarks, c.benchmarks);
    ASSERT_EQ(r.workloads.size(), c.workloads.size());
    for (std::size_t w = 0; w < c.workloads.size(); ++w)
        EXPECT_EQ(r.workloads[w], c.workloads[w]);
    for (std::size_t i = 0; i < c.refIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r.refIpc[i], c.refIpc[i]);
    for (std::size_t p = 0; p < c.policies.size(); ++p)
        for (std::size_t w = 0; w < c.workloads.size(); ++w)
            for (std::size_t k = 0; k < c.cores; ++k)
                EXPECT_DOUBLE_EQ(r.ipc[p][w][k], c.ipc[p][w][k]);
    std::filesystem::remove(path);
}

TEST(Campaign, LoadRejectsGarbage)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "wsel_test_garbage.csv";
    {
        std::ofstream os(path);
        os << "hello,world\n";
    }
    EXPECT_THROW(Campaign::load(path.string()), FatalError);
    std::filesystem::remove(path);
}

TEST(Campaign, CachedCampaignProducesOnceThenLoads)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "wsel_test_campaign_cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    setenv("WSEL_CACHE_DIR", dir.c_str(), 1);
    int produced = 0;
    auto produce = [&]() {
        ++produced;
        return tinyCampaign();
    };
    const Campaign a = cachedCampaign("unit_test_key", 0, produce);
    const Campaign b = cachedCampaign("unit_test_key", 0, produce);
    EXPECT_EQ(produced, 1);
    EXPECT_EQ(a.workloads.size(), b.workloads.size());
    unsetenv("WSEL_CACHE_DIR");
    std::filesystem::remove_all(dir);
}

TEST(Campaign, DetailedCampaignRuns)
{
    const auto suite = testSuite();
    const WorkloadPopulation pop(2, 2);
    const Campaign c = runDetailedCampaign(
        pop.enumerateAll(), {PolicyKind::LRU}, 2, 4000,
        CoreConfig{}, suite);
    EXPECT_EQ(c.simulator, "detailed");
    EXPECT_EQ(c.workloads.size(), 3u);
    for (double ipc : c.ipc[0][0])
        EXPECT_GT(ipc, 0.0);
}

TEST(Campaign, EmptyInputsFatal)
{
    const auto suite = testSuite();
    BadcoModelStore store(CoreConfig{}, 1000, 5);
    EXPECT_THROW(runBadcoCampaign({}, {PolicyKind::LRU}, 2, 1000,
                                  store, suite),
                 FatalError);
}

} // namespace wsel
