/**
 * @file
 * Tests for the Section III confidence model, including a
 * CLT-agreement property test against synthetic populations.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/confidence/confidence.hh"
#include "stats/logging.hh"
#include "stats/rng.hh"

namespace wsel
{

TEST(ConfidenceCurve, KnownPoints)
{
    // Figure 1's curve: 0.5 at x=0, saturating near |x|=2.
    EXPECT_DOUBLE_EQ(confidenceFromX(0.0), 0.5);
    EXPECT_NEAR(confidenceFromX(2.0), 0.9977, 5e-4);
    EXPECT_NEAR(confidenceFromX(-2.0), 1.0 - confidenceFromX(2.0),
                1e-12);
    EXPECT_GT(confidenceFromX(1.0), 0.9);
}

TEST(ConfidenceCurve, MonotonicInX)
{
    double prev = 0.0;
    for (double x = -3.0; x <= 3.0; x += 0.1) {
        const double c = confidenceFromX(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(ModelConfidence, GrowsWithSampleSize)
{
    const double cv = 2.0; // Y better on average
    double prev = 0.0;
    for (std::size_t w : {1u, 4u, 16u, 64u, 256u}) {
        const double c = modelConfidence(cv, w);
        EXPECT_GT(c, prev);
        prev = c;
    }
    EXPECT_GT(prev, 0.99);
}

TEST(ModelConfidence, NegativeCvMirrors)
{
    EXPECT_NEAR(modelConfidence(-1.5, 30),
                1.0 - modelConfidence(1.5, 30), 1e-12);
}

TEST(ModelConfidence, DegenerateCvValues)
{
    EXPECT_DOUBLE_EQ(
        modelConfidence(std::numeric_limits<double>::quiet_NaN(),
                        10),
        0.5);
    EXPECT_DOUBLE_EQ(
        modelConfidence(std::numeric_limits<double>::infinity(), 10),
        0.5);
    EXPECT_DOUBLE_EQ(modelConfidence(0.0, 10), 1.0);
    EXPECT_THROW(modelConfidence(1.0, 0), FatalError);
}

TEST(RequiredSampleSize, EquationEight)
{
    // W = 8 cv^2 (paper eq. 8).
    EXPECT_EQ(requiredSampleSize(1.0), 8u);
    EXPECT_EQ(requiredSampleSize(-1.0), 8u);
    EXPECT_EQ(requiredSampleSize(2.5), 50u);
    EXPECT_EQ(requiredSampleSize(10.0), 800u);
    EXPECT_EQ(requiredSampleSize(0.1), 1u); // floor at one workload
}

TEST(RequiredSampleSize, ConfidenceAtRequiredSizeIsHigh)
{
    for (double cv : {0.5, 1.0, 2.0, 5.0, 10.0}) {
        const std::size_t w = requiredSampleSize(cv);
        EXPECT_GE(modelConfidence(cv, w), 0.997);
    }
}

TEST(ClassifyCv, PaperGuidelineRegimes)
{
    // §VII: |cv| < 2 random sampling; 2..10 stratification; > 10
    // equivalent machines.
    EXPECT_EQ(classifyCv(0.5), CvRegime::RandomSampling);
    EXPECT_EQ(classifyCv(-1.9), CvRegime::RandomSampling);
    EXPECT_EQ(classifyCv(2.0), CvRegime::Stratification);
    EXPECT_EQ(classifyCv(-7.5), CvRegime::Stratification);
    EXPECT_EQ(classifyCv(10.0), CvRegime::Stratification);
    EXPECT_EQ(classifyCv(11.0), CvRegime::Equivalent);
    EXPECT_EQ(
        classifyCv(std::numeric_limits<double>::quiet_NaN()),
        CvRegime::Equivalent);
}

TEST(DifferenceStats, MatchesManualComputation)
{
    const std::vector<double> tx = {1.0, 1.0, 1.0, 1.0};
    const std::vector<double> ty = {1.1, 0.9, 1.2, 1.0};
    const auto ds =
        differenceStats(ThroughputMetric::IPCT, tx, ty);
    EXPECT_NEAR(ds.mu, 0.05, 1e-12);
    EXPECT_EQ(ds.n, 4u);
    // sigma of {0.1, -0.1, 0.2, 0.0}: mean 0.05, var 0.0125.
    EXPECT_NEAR(ds.sigma, std::sqrt(0.0125), 1e-12);
    EXPECT_NEAR(ds.cv, std::sqrt(0.0125) / 0.05, 1e-9);
    EXPECT_NEAR(ds.inverseCv(), 0.05 / std::sqrt(0.0125), 1e-9);
}

TEST(DifferenceStats, HsuUsesReciprocalDifferences)
{
    const std::vector<double> tx = {2.0};
    const std::vector<double> ty = {4.0};
    const auto ds = differenceStats(ThroughputMetric::HSU, tx, ty);
    EXPECT_DOUBLE_EQ(ds.mu, 0.25);
}

TEST(DifferenceStats, MismatchedSizesFatal)
{
    const std::vector<double> tx = {1.0, 2.0};
    const std::vector<double> ty = {1.0};
    EXPECT_THROW(differenceStats(ThroughputMetric::IPCT, tx, ty),
                 FatalError);
}

/**
 * CLT validation property (the paper's §V-A experiment in
 * miniature): for a synthetic d(w) population, the empirical
 * probability that a W-sample's mean is positive must match eq. (5).
 */
class CltAgreementTest
    : public ::testing::TestWithParam<std::pair<double, int>>
{};

TEST_P(CltAgreementTest, EmpiricalMatchesModel)
{
    const auto [cv, w] = GetParam();
    const double mu = 0.3;
    const double sigma = cv * mu;
    Rng rng(2024);
    std::vector<double> d(20000);
    for (double &x : d)
        x = mu + sigma * rng.nextGaussian();
    // Re-measure the realized cv (finite-sample effects).
    const DifferenceStats ds = differenceStats(d);

    int wins = 0;
    const int draws = 4000;
    for (int t = 0; t < draws; ++t) {
        double sum = 0.0;
        for (int i = 0; i < w; ++i)
            sum += d[rng.nextInt(d.size())];
        wins += sum > 0.0;
    }
    const double empirical = wins / static_cast<double>(draws);
    const double model =
        modelConfidence(ds.cv, static_cast<std::size_t>(w));
    EXPECT_NEAR(empirical, model, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    CvAndW, CltAgreementTest,
    ::testing::Values(std::pair{1.0, 4}, std::pair{2.0, 10},
                      std::pair{2.0, 40}, std::pair{5.0, 30},
                      std::pair{5.0, 200}, std::pair{0.5, 2}),
    [](const auto &info) {
        return "cv" +
               std::to_string(
                   static_cast<int>(info.param.first * 10)) +
               "_W" + std::to_string(info.param.second);
    });

} // namespace wsel
