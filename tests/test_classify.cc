/**
 * @file
 * Tests for automatic classification (core/classify) and benchmark
 * characterization (sim/characterize).
 */

#include <set>

#include <gtest/gtest.h>

#include "core/classify/classify.hh"
#include "sim/characterize.hh"
#include "stats/logging.hh"
#include "stats/summary.hh"
#include "test_util.hh"

namespace wsel
{

TEST(NormalizeFeatures, ZeroMeanUnitVariance)
{
    const std::vector<std::vector<double>> f = {
        {1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}, {4.0, 400.0}};
    const auto n = normalizeFeatures(f);
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0, var = 0.0;
        for (const auto &row : n)
            mean += row[c];
        mean /= static_cast<double>(n.size());
        for (const auto &row : n)
            var += (row[c] - mean) * (row[c] - mean);
        var /= static_cast<double>(n.size());
        EXPECT_NEAR(mean, 0.0, 1e-12);
        EXPECT_NEAR(var, 1.0, 1e-12);
    }
}

TEST(NormalizeFeatures, ConstantColumnBecomesZero)
{
    const std::vector<std::vector<double>> f = {{5.0, 1.0},
                                                {5.0, 2.0}};
    const auto n = normalizeFeatures(f);
    EXPECT_DOUBLE_EQ(n[0][0], 0.0);
    EXPECT_DOUBLE_EQ(n[1][0], 0.0);
}

TEST(NormalizeFeatures, RaggedInputFatal)
{
    const std::vector<std::vector<double>> f = {{1.0}, {1.0, 2.0}};
    EXPECT_THROW(normalizeFeatures(f), FatalError);
}

TEST(ClassifyByFeatures, OrdersClassesByKeyColumn)
{
    // Three obvious groups on column 1; labels must come out
    // ordered by that column's group means.
    // Both columns carry the group signal (z-normalization gives
    // every column unit variance, so a pure-noise column would
    // carry as much weight as a signal column).
    std::vector<std::vector<double>> f;
    Rng noise(3);
    for (int i = 0; i < 8; ++i)
        f.push_back({1.0 + 0.1 * noise.nextDouble(),
                     0.5 + 0.1 * i});
    for (int i = 0; i < 8; ++i)
        f.push_back({5.0 + 0.1 * noise.nextDouble(),
                     50.0 + 0.1 * i});
    for (int i = 0; i < 8; ++i)
        f.push_back({9.0 + 0.1 * noise.nextDouble(),
                     100.0 + 0.1 * i});
    Rng rng(7);
    const auto cls = classifyByFeatures(f, 3, 1, rng);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(cls[i], 0u);
        EXPECT_EQ(cls[8 + i], 1u);
        EXPECT_EQ(cls[16 + i], 2u);
    }
}

TEST(ClassifyByFeatures, BadOrderColumnFatal)
{
    const std::vector<std::vector<double>> f = {{1.0}, {2.0}};
    Rng rng(1);
    EXPECT_THROW(classifyByFeatures(f, 2, 3, rng), FatalError);
}

TEST(ClassCountFeatures, SignatureCounts)
{
    const std::vector<Workload> ws = {Workload({0, 1, 3, 3}),
                                      Workload({2, 2, 2, 2})};
    const std::vector<std::uint32_t> cls = {0, 0, 1, 2};
    const auto f = classCountFeatures(ws, cls, 3);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], (std::vector<double>{2.0, 0.0, 2.0}));
    EXPECT_EQ(f[1], (std::vector<double>{0.0, 4.0, 0.0}));
}

TEST(WorkloadClusterSampler, StrataPartitionThePopulation)
{
    // Features with clear cluster structure.
    std::vector<std::vector<double>> f;
    Rng noise(5);
    for (int i = 0; i < 60; ++i) {
        const double base = (i % 3) * 50.0;
        f.push_back({base + noise.nextDouble(),
                     base * 2 + noise.nextDouble()});
    }
    Rng rng(9);
    auto s = makeWorkloadClusterSampler(f, 3, rng);
    EXPECT_EQ(s->name(), "workload-cluster");
    Rng draw_rng(11);
    const Sample sample = s->draw(60, draw_rng); // everything
    std::set<std::size_t> seen;
    double weight_total = 0.0;
    for (const auto &st : sample.strata) {
        weight_total += st.weight;
        for (std::size_t idx : st.indices)
            EXPECT_TRUE(seen.insert(idx).second)
                << "duplicate index";
    }
    EXPECT_EQ(seen.size(), 60u);
    EXPECT_DOUBLE_EQ(weight_total, 60.0);
}

TEST(WorkloadClusterSampler, ActsAsVarianceReducer)
{
    // When the clustering lines up with the structure of t(w), the
    // cluster-stratified estimate of the mean is at least as tight
    // as random sampling's.
    const std::size_t n = 300;
    std::vector<std::vector<double>> f;
    std::vector<double> t;
    Rng gen(13);
    for (std::size_t i = 0; i < n; ++i) {
        const int group = static_cast<int>(i % 3);
        f.push_back({static_cast<double>(group)});
        t.push_back(group * 2.0 + 0.05 * gen.nextGaussian() + 1.0);
    }
    double truth = 0.0;
    for (double v : t)
        truth += v;
    truth /= static_cast<double>(n);

    Rng rng(15);
    auto clustered = makeWorkloadClusterSampler(f, 3, rng);
    auto random = makeRandomSampler(n);
    RunningStats err_c, err_r;
    Rng draw(17);
    for (int trial = 0; trial < 400; ++trial) {
        const Sample sc = clustered->draw(9, draw);
        const Sample sr = random->draw(9, draw);
        err_c.add(std::abs(sampleThroughput(
                      sc, ThroughputMetric::IPCT, t) -
                  truth));
        err_r.add(std::abs(sampleThroughput(
                      sr, ThroughputMetric::IPCT, t) -
                  truth));
    }
    EXPECT_LT(err_c.mean(), err_r.mean());
}

TEST(Characterize, FeaturesAreMeasuredAndSane)
{
    const BenchmarkProfile light = test::lightProfile();
    const BenchmarkProfile heavy = test::heavyProfile();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    const auto fl = characterizeBenchmark(light, CoreConfig{}, ucfg,
                                          20000);
    const auto fh = characterizeBenchmark(heavy, CoreConfig{}, ucfg,
                                          20000);
    EXPECT_EQ(fl.name, "test-light");
    EXPECT_NEAR(fl.loadFrac, light.loadFrac, 0.06);
    EXPECT_GT(fl.ipc, fh.ipc);
    EXPECT_LT(fl.llcMpki, fh.llcMpki);
    EXPECT_GT(fh.dl1Mpki, 0.0);
    EXPECT_GE(fl.branchMispredictRate, 0.0);
    EXPECT_LE(fl.branchMispredictRate, 0.5);
    const auto v = fl.toVector();
    EXPECT_EQ(v.size(), 8u);
    EXPECT_DOUBLE_EQ(v[BenchmarkFeatures::kLlcMpkiColumn],
                     fl.llcMpki);
}

TEST(Characterize, SuiteAndMatrixShapes)
{
    std::vector<BenchmarkProfile> suite = {test::lightProfile(),
                                           test::heavyProfile()};
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    const auto feats =
        characterizeSuite(suite, CoreConfig{}, ucfg, 8000);
    ASSERT_EQ(feats.size(), 2u);
    const auto m = featureMatrix(feats);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m[0].size(), m[1].size());
}

} // namespace wsel
