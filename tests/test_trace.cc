/**
 * @file
 * Tests for the synthetic benchmark suite and trace generator.
 */

#include <map>

#include <gtest/gtest.h>

#include "stats/logging.hh"
#include "test_util.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace wsel
{

TEST(BenchmarkSuite, HasThePapersTwentyTwoBenchmarks)
{
    const auto &suite = spec2006Suite();
    EXPECT_EQ(suite.size(), 22u);
    // Spot-check Table IV membership.
    EXPECT_EQ(findProfile("povray").paperClass, MpkiClass::Low);
    EXPECT_EQ(findProfile("milc").paperClass, MpkiClass::Low);
    EXPECT_EQ(findProfile("bzip2").paperClass, MpkiClass::Medium);
    EXPECT_EQ(findProfile("cactusADM").paperClass,
              MpkiClass::Medium);
    EXPECT_EQ(findProfile("mcf").paperClass, MpkiClass::High);
    EXPECT_EQ(findProfile("libquantum").paperClass, MpkiClass::High);
}

TEST(BenchmarkSuite, ClassCountsMatchTableIV)
{
    std::map<MpkiClass, int> counts;
    for (const auto &p : spec2006Suite())
        ++counts[p.paperClass];
    EXPECT_EQ(counts[MpkiClass::Low], 11);
    EXPECT_EQ(counts[MpkiClass::Medium], 5);
    EXPECT_EQ(counts[MpkiClass::High], 6);
}

TEST(BenchmarkSuite, AllProfilesValidate)
{
    for (const auto &p : spec2006Suite())
        EXPECT_NO_THROW(p.validate());
}

TEST(BenchmarkSuite, UniqueNamesAndSeeds)
{
    std::map<std::string, int> names;
    std::map<std::uint64_t, int> seeds;
    for (const auto &p : spec2006Suite()) {
        ++names[p.name];
        ++seeds[p.seed];
    }
    for (const auto &[n, c] : names)
        EXPECT_EQ(c, 1) << n;
    for (const auto &[s, c] : seeds)
        EXPECT_EQ(c, 1) << s;
}

TEST(BenchmarkSuite, UnknownNameFatal)
{
    EXPECT_THROW(findProfile("quake3"), FatalError);
}

TEST(BenchmarkProfile, ValidationCatchesBadMixture)
{
    BenchmarkProfile p = test::lightProfile();
    p.hotFrac += 0.5; // mixture no longer sums to 1
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(BenchmarkProfile, ParameterHashChangesWithParams)
{
    BenchmarkProfile a = test::lightProfile();
    BenchmarkProfile b = a;
    EXPECT_EQ(a.parameterHash(), b.parameterHash());
    b.hotBytes += 64;
    EXPECT_NE(a.parameterHash(), b.parameterHash());
    b = a;
    b.branchBias += 1e-9;
    EXPECT_NE(a.parameterHash(), b.parameterHash());
}

TEST(MpkiClass, PaperThresholdsScaled)
{
    EXPECT_EQ(classifyMpki(0.5, 1.0), MpkiClass::Low);
    EXPECT_EQ(classifyMpki(1.0, 1.0), MpkiClass::Medium);
    EXPECT_EQ(classifyMpki(4.99, 1.0), MpkiClass::Medium);
    EXPECT_EQ(classifyMpki(5.0, 1.0), MpkiClass::High);
    // Default scale multiplies the boundaries.
    EXPECT_EQ(classifyMpki(3.9), MpkiClass::Low);
    EXPECT_EQ(classifyMpki(4.1), MpkiClass::Medium);
    EXPECT_EQ(classifyMpki(19.9), MpkiClass::Medium);
    EXPECT_EQ(classifyMpki(20.1), MpkiClass::High);
    EXPECT_THROW(classifyMpki(1.0, 0.0), FatalError);
}

TEST(TraceGenerator, DeterministicStream)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator a(p), b(p);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp &ua = a.next();
        const MicroOp &ub = b.next();
        ASSERT_EQ(ua.kind, ub.kind);
        ASSERT_EQ(ua.addr, ub.addr);
        ASSERT_EQ(ua.pc, ub.pc);
        ASSERT_EQ(ua.dep1, ub.dep1);
        ASSERT_EQ(ua.taken, ub.taken);
    }
}

TEST(TraceGenerator, ResetReplaysIdentically)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator g(p);
    std::vector<MicroOp> first;
    for (int i = 0; i < 5000; ++i)
        first.push_back(g.next());
    g.reset();
    EXPECT_EQ(g.generated(), 0u);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp &u = g.next();
        ASSERT_EQ(u.kind, first[i].kind);
        ASSERT_EQ(u.addr, first[i].addr);
        ASSERT_EQ(u.pc, first[i].pc);
        ASSERT_EQ(u.taken, first[i].taken);
    }
}

TEST(TraceGenerator, InstructionMixTracksProfile)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator g(p);
    const int n = 200000;
    int loads = 0, stores = 0, branches = 0;
    for (int i = 0; i < n; ++i) {
        const MicroOp &u = g.next();
        loads += u.kind == OpKind::Load;
        stores += u.kind == OpKind::Store;
        branches += u.kind == OpKind::Branch;
    }
    EXPECT_NEAR(loads / static_cast<double>(n), p.loadFrac, 0.05);
    EXPECT_NEAR(stores / static_cast<double>(n), p.storeFrac, 0.04);
    EXPECT_NEAR(branches / static_cast<double>(n), p.branchFrac,
                0.05);
}

TEST(TraceGenerator, RegionMixTracksProfile)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator g(p);
    const int n = 200000;
    std::uint64_t mem = 0, stream = 0, random = 0, chase = 0;
    for (int i = 0; i < n; ++i) {
        const MicroOp &u = g.next();
        if (!u.isMemory())
            continue;
        ++mem;
        if (u.addr >= TraceGenerator::randomBase)
            ++random;
        else if (u.addr >= TraceGenerator::streamBase)
            ++stream;
        else if (u.addr >= TraceGenerator::chaseBase)
            ++chase;
    }
    ASSERT_GT(mem, 0u);
    const double m = static_cast<double>(mem);
    // Loop blocks re-execute, so realized rates wander around the
    // static binding fractions by the loop-dwell weighting.
    EXPECT_NEAR(stream / m, p.streamFrac, 0.05);
    EXPECT_NEAR(random / m, p.randomFrac, 0.05);
    EXPECT_NEAR(chase / m, p.chaseFrac, 0.05);
}

TEST(TraceGenerator, AddressesStayInsideRegions)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator g(p);
    for (int i = 0; i < 100000; ++i) {
        const MicroOp &u = g.next();
        if (!u.isMemory())
            continue;
        if (u.addr >= TraceGenerator::randomBase) {
            EXPECT_LT(u.addr, TraceGenerator::randomBase +
                                  p.footprintBytes);
        } else if (u.addr >= TraceGenerator::streamBase) {
            EXPECT_LT(u.addr, TraceGenerator::streamBase +
                                  p.footprintBytes);
        } else if (u.addr >= TraceGenerator::chaseBase) {
            EXPECT_LT(u.addr,
                      TraceGenerator::chaseBase + p.chaseBytes);
        } else if (u.addr >= TraceGenerator::hotBase) {
            EXPECT_LT(u.addr, TraceGenerator::hotBase + p.hotBytes);
        } else {
            EXPECT_GE(u.addr, TraceGenerator::l1Base);
            EXPECT_LT(u.addr, TraceGenerator::l1Base + p.l1Bytes);
        }
    }
}

TEST(TraceGenerator, ChaseLoadsAreSerialized)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator g(p);
    std::int64_t last_chase = -1;
    int checked = 0;
    for (int i = 0; i < 100000; ++i) {
        const MicroOp &u = g.next();
        const bool is_chase =
            u.kind == OpKind::Load &&
            u.addr >= TraceGenerator::chaseBase &&
            u.addr < TraceGenerator::streamBase;
        if (is_chase) {
            if (last_chase >= 0 && i - last_chase <= 64) {
                // dep1 must point exactly at the previous chase load.
                EXPECT_EQ(u.dep1, i - last_chase);
                ++checked;
            }
            last_chase = i;
        }
    }
    EXPECT_GT(checked, 100);
}

TEST(TraceGenerator, DependencesPointBackwards)
{
    const BenchmarkProfile p = test::heavyProfile();
    TraceGenerator g(p);
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const MicroOp &u = g.next();
        EXPECT_LE(u.dep1, 64);
        EXPECT_LE(u.dep2, 64);
    }
}

TEST(TraceGenerator, BranchOutcomeRateNearBias)
{
    BenchmarkProfile p = test::lightProfile();
    p.branchBias = 0.9;
    p.branchNoise = 0.0;
    TraceGenerator g(p);
    std::uint64_t branches = 0, taken = 0;
    for (int i = 0; i < 200000; ++i) {
        const MicroOp &u = g.next();
        if (u.kind == OpKind::Branch) {
            ++branches;
            taken += u.taken;
        }
    }
    ASSERT_GT(branches, 1000u);
    // Loop sites floor their bias at 0.85; biased sites are near
    // 0.985/0.015 with direction drawn from the bias, so the overall
    // taken rate must be high but below 1.
    const double rate = static_cast<double>(taken) /
                        static_cast<double>(branches);
    EXPECT_GT(rate, 0.75);
    EXPECT_LT(rate, 0.99);
}

} // namespace wsel
