/**
 * @file
 * Tests for the batched BADCO cell engine (sim/batch.hh) and its
 * bitwise-identity contract: a batched population shard must equal
 * the serial engine's bytes at every (batch, wave, jobs)
 * combination, through mid-batch (and mid-wave) kills and resumes
 * — including resume at a different wave size — and under
 * trace-store budget pressure that forces chunk eviction and
 * re-pinning. Also covers the gathered tag-scan sweeps
 * (cache/tagscan.hh findMany*) against the scalar reference on
 * every dispatch tier, the WSEL_WAVE_MEM resident-uncore clamp,
 * and the BatchPin budget semantics: pinned chunks are ineligible
 * eviction victims, and the budget converges as soon as a batch
 * releases its pins.
 */

#include <cstdlib>
#include <filesystem>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/tagscan.hh"
#include "fault_injection.hh"
#include "mem/uncore_config.hh"
#include "sim/batch.hh"
#include "sim/campaign.hh"
#include "sim/population.hh"
#include "stats/persist_v3.hh"
#include "test_util.hh"
#include "trace/trace_store.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kUops = 3000;

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    s.push_back(test::lightProfile(13));
    return s;
}

const std::vector<PolicyKind> kPolicies = {PolicyKind::LRU,
                                           PolicyKind::DIP};

/** Restores the batch-engine knobs to "unset" on scope exit. */
struct BatchEnvGuard
{
    ~BatchEnvGuard()
    {
        unsetenv("WSEL_BATCH_CELLS");
        unsetenv("WSEL_BATCH_WAVE");
        unsetenv("WSEL_WAVE_MEM");
    }
};

// -------------------------------------------------------------------
// resolveBatchCells
// -------------------------------------------------------------------

TEST(ResolveBatchCells, ExplicitRequestWinsAndClamps)
{
    BatchEnvGuard env;
    setenv("WSEL_BATCH_CELLS", "5", 1);
    // A nonzero request ignores the environment entirely.
    EXPECT_EQ(resolveBatchCells(7), 7u);
    EXPECT_EQ(resolveBatchCells(1), 1u);
    EXPECT_EQ(resolveBatchCells(kMaxBatchCells + 1000),
              kMaxBatchCells);
}

TEST(ResolveBatchCells, EnvResolvesWhenUnspecified)
{
    BatchEnvGuard env;
    unsetenv("WSEL_BATCH_CELLS");
    EXPECT_EQ(resolveBatchCells(0), kDefaultBatchCells);
    setenv("WSEL_BATCH_CELLS", "5", 1);
    EXPECT_EQ(resolveBatchCells(0), 5u);
    setenv("WSEL_BATCH_CELLS", "999999", 1);
    EXPECT_EQ(resolveBatchCells(0), kMaxBatchCells);
    // Invalid values fall back to the default (with a warning).
    setenv("WSEL_BATCH_CELLS", "abc", 1);
    EXPECT_EQ(resolveBatchCells(0), kDefaultBatchCells);
    setenv("WSEL_BATCH_CELLS", "0", 1);
    EXPECT_EQ(resolveBatchCells(0), kDefaultBatchCells);
}

// -------------------------------------------------------------------
// resolveBatchWave
// -------------------------------------------------------------------

TEST(ResolveBatchWave, ExplicitRequestWinsAndClamps)
{
    BatchEnvGuard env;
    setenv("WSEL_BATCH_WAVE", "5", 1);
    // A nonzero request ignores the environment entirely.
    EXPECT_EQ(resolveBatchWave(7), 7u);
    EXPECT_EQ(resolveBatchWave(1), 1u);
    EXPECT_EQ(resolveBatchWave(kMaxBatchCells + 1000),
              kMaxBatchCells);
}

TEST(ResolveBatchWave, EnvResolvesWhenUnspecified)
{
    BatchEnvGuard env;
    unsetenv("WSEL_BATCH_WAVE");
    EXPECT_EQ(resolveBatchWave(0), kDefaultBatchWave);
    setenv("WSEL_BATCH_WAVE", "5", 1);
    EXPECT_EQ(resolveBatchWave(0), 5u);
    setenv("WSEL_BATCH_WAVE", "999999", 1);
    EXPECT_EQ(resolveBatchWave(0), kMaxBatchCells);
    // Invalid values fall back to the default (with a warning).
    setenv("WSEL_BATCH_WAVE", "abc", 1);
    EXPECT_EQ(resolveBatchWave(0), kDefaultBatchWave);
    setenv("WSEL_BATCH_WAVE", "0", 1);
    EXPECT_EQ(resolveBatchWave(0), kDefaultBatchWave);
}

// -------------------------------------------------------------------
// Gathered tag scans (tagscan::findMany*) vs the scalar reference
// -------------------------------------------------------------------

/** Random packed-tag arrays plus probes with ~50% hit rate. */
struct GatherFixture
{
    std::vector<std::uint32_t> tags;
    std::vector<tagscan::Probe> probes;

    explicit GatherFixture(std::size_t count, std::uint32_t ways,
                           std::uint64_t seed)
    {
        std::mt19937_64 rng(seed);
        tags.resize(count * ways);
        for (auto &t : tags) {
            // Mix of valid tags (low bit set), invalid slots and
            // duplicates, drawn from a small alphabet so probes
            // collide often.
            const std::uint32_t v =
                static_cast<std::uint32_t>(rng() % 24);
            t = (rng() % 4 == 0) ? 0u : ((v << 1) | 1u);
        }
        probes.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint32_t v =
                static_cast<std::uint32_t>(rng() % 24);
            probes.push_back({tags.data() + i * ways, ways,
                              (v << 1) | 1u});
        }
    }
};

/** Scalar per-probe reference for any gathered kernel. */
std::vector<std::uint32_t>
scalarReference(const std::vector<tagscan::Probe> &probes)
{
    std::vector<std::uint32_t> want(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i)
        want[i] = tagscan::findScalar(probes[i].tags, probes[i].n,
                                      probes[i].want);
    return want;
}

TEST(GatheredTagScan, AllKernelsMatchScalarReference)
{
    // Sweep counts across the AVX2 pair/tail boundaries (0, 1, odd,
    // even) and both 16-way (SIMD fast path) and oddball ways
    // (per-probe fallback inside the gathered kernels).
    for (std::uint32_t ways : {4u, 8u, 16u}) {
        for (std::size_t count :
             {std::size_t{0}, std::size_t{1}, std::size_t{2},
              std::size_t{5}, std::size_t{16}, std::size_t{33}}) {
            const GatherFixture fx(count, ways,
                                   0x9e3779b9u + ways * 131 + count);
            const auto want = scalarReference(fx.probes);

            std::vector<std::uint32_t> got(count + 1, 0xdeadbeefu);
            tagscan::findManyScalar(fx.probes.data(), count,
                                    got.data());
            for (std::size_t i = 0; i < count; ++i)
                EXPECT_EQ(got[i], want[i])
                    << "scalar ways " << ways << " probe " << i;

            std::fill(got.begin(), got.end(), 0xdeadbeefu);
            tagscan::findManySwar(fx.probes.data(), count,
                                  got.data());
            for (std::size_t i = 0; i < count; ++i)
                EXPECT_EQ(got[i], want[i])
                    << "swar ways " << ways << " probe " << i;

#if defined(__x86_64__) || defined(_M_X64)
            std::fill(got.begin(), got.end(), 0xdeadbeefu);
            tagscan::findManySse2(fx.probes.data(), count,
                                  got.data());
            for (std::size_t i = 0; i < count; ++i)
                EXPECT_EQ(got[i], want[i])
                    << "sse2 ways " << ways << " probe " << i;

            if (__builtin_cpu_supports("avx2")) {
                std::fill(got.begin(), got.end(), 0xdeadbeefu);
                tagscan::findManyAvx2(fx.probes.data(), count,
                                      got.data());
                for (std::size_t i = 0; i < count; ++i)
                    EXPECT_EQ(got[i], want[i])
                        << "avx2 ways " << ways << " probe " << i;
            }
#endif

            std::fill(got.begin(), got.end(), 0xdeadbeefu);
            tagscan::findMany(fx.probes.data(), count, got.data());
            for (std::size_t i = 0; i < count; ++i)
                EXPECT_EQ(got[i], want[i])
                    << "dispatch ways " << ways << " probe " << i;
        }
    }
}

// -------------------------------------------------------------------
// BadcoBatchRunner: direct engine identity
// -------------------------------------------------------------------

/** Shard geometry over the full WorkloadPopulation(3, 4). */
persist::V3Manifest
engineManifest()
{
    persist::V3Manifest m;
    m.fingerprint = 0xbadc0;
    m.simulator = "badco";
    m.cores = 4;
    m.targetUops = kUops;
    m.instructions = 0;
    m.policies = {"LRU", "DIP"};
    m.benchmarks = {"test-light", "test-heavy", "test-light2"};
    m.refIpc = {1.0, 1.0, 1.0};
    m.popBenchmarks = 3;
    m.popCores = 4;
    m.firstRank = 0;
    m.lastRank = 15;
    m.shardRows = 4; // shards of 4, 4, 4, 3 rows
    return m;
}

TEST(BatchEngine, AutoFlushMatchesSerialRunner)
{
    const auto suite = testSuite();
    BadcoModelStore store(CoreConfig{}, kUops, 5);
    const auto models = store.getSuite(suite);
    std::vector<UncoreConfig> ucfgs;
    for (PolicyKind p : kPolicies)
        ucfgs.push_back(UncoreConfig::forCores(4, p));

    const WorkloadPopulation pop(3, 4);
    constexpr std::size_t kCells = 6;
    std::vector<double> serial(kCells * 4), batched(kCells * 4);

    // Capacity 1: every add() runs one cell (the serial shape).
    BadcoBatchRunner one({ucfgs.data(), ucfgs.size()}, 4, kUops,
                         models, 1);
    // Capacity 2: add() must auto-flush on the third cell.
    BadcoBatchRunner two({ucfgs.data(), ucfgs.size()}, 4, kUops,
                         models, 2);
    EXPECT_EQ(two.capacity(), 2u);

    for (std::size_t i = 0; i < kCells; ++i) {
        const Workload w = pop.unrank(2 * i);
        const std::uint64_t seed = 1000 + 17 * i;
        const auto p = static_cast<std::uint32_t>(i % 2);
        one.add(seed, p, {w.benchmarks().data(), 4},
                serial.data() + i * 4);
        two.add(seed, p, {w.benchmarks().data(), 4},
                batched.data() + i * 4);
        EXPECT_LE(two.pending(), 2u);
    }
    EXPECT_TRUE(two.full());
    one.run();
    two.run();
    EXPECT_EQ(one.pending(), 0u);
    EXPECT_EQ(two.pending(), 0u);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_GT(batched[i], 0.0);
        EXPECT_EQ(serial[i], batched[i]) << "lane " << i;
    }
}

TEST(BatchEngine, BatchedShardMatchesSerialBitwise)
{
    const auto suite = testSuite();
    const persist::V3Manifest m = engineManifest();
    const WorkloadPopulation pop(3, 4);
    BadcoModelStore store(CoreConfig{}, kUops, 5);
    const auto models = store.getSuite(suite);
    std::vector<UncoreConfig> ucfgs;
    for (PolicyKind p : kPolicies)
        ucfgs.push_back(UncoreConfig::forCores(4, p));

    for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
        std::vector<double> serial;
        simulatePopulationShard(m, pop, ucfgs, models, 1, s,
                                serial);
        ASSERT_FALSE(serial.empty());
        for (std::uint32_t batch : {1u, 3u, 7u, 32u}) {
            // Wave 1 is cell-major; larger waves interleave lanes
            // across resident uncores. All must be bit-identical.
            for (std::uint32_t wave : {1u, 2u, 3u, 32u}) {
                std::vector<double> batched;
                simulatePopulationShardBatched(m, pop, ucfgs,
                                               models, 1, s, batch,
                                               wave, batched);
                ASSERT_EQ(batched.size(), serial.size());
                for (std::size_t i = 0; i < serial.size(); ++i)
                    EXPECT_EQ(serial[i], batched[i])
                        << "shard " << s << " batch " << batch
                        << " wave " << wave << " lane " << i;
            }
        }
    }
}

TEST(BatchEngine, WaveClampsToBatchAndMemoryBudget)
{
    BatchEnvGuard env;
    const auto suite = testSuite();
    BadcoModelStore store(CoreConfig{}, kUops, 5);
    const auto models = store.getSuite(suite);
    std::vector<UncoreConfig> ucfgs;
    for (PolicyKind p : kPolicies)
        ucfgs.push_back(UncoreConfig::forCores(4, p));
    const std::span<const UncoreConfig> cfgs{ucfgs.data(),
                                             ucfgs.size()};

    // A wave wider than the batch is useless: clamp to the batch.
    BadcoBatchRunner narrow(cfgs, 4, kUops, models, 4, 32);
    EXPECT_EQ(narrow.wave(), 4u);

    // One resident uncore costs well over a (conservative) page,
    // so a tiny WSEL_WAVE_MEM budget forces the wave down...
    const std::size_t per = estimateUncoreFootprint(ucfgs[0], 4);
    EXPECT_GT(per, std::size_t{64} * 1024);
    setenv("WSEL_WAVE_MEM", "1", 1); // 1 MiB
    BadcoBatchRunner tight(cfgs, 4, kUops, models, 64, 64);
    EXPECT_LE(tight.wave() * per,
              std::size_t{1} * 1024 * 1024 + per); // >= 1 kept
    EXPECT_GE(tight.wave(), 1u);
    EXPECT_LT(tight.wave(), 64u);

    // ...and a roomy budget leaves the request alone.
    setenv("WSEL_WAVE_MEM", "65536", 1); // 64 GiB
    BadcoBatchRunner roomy(cfgs, 4, kUops, models, 64, 64);
    EXPECT_EQ(roomy.wave(), 64u);

    // Clamped runners still produce serial-identical lanes.
    const WorkloadPopulation pop(3, 4);
    std::vector<double> serial(4), waved(4);
    BadcoBatchRunner one(cfgs, 4, kUops, models, 1, 1);
    const Workload w = pop.unrank(3);
    one.add(77, 1, {w.benchmarks().data(), 4}, serial.data());
    tight.add(77, 1, {w.benchmarks().data(), 4}, waved.data());
    one.run();
    tight.run();
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(serial[i], waved[i]) << "lane " << i;
}

// -------------------------------------------------------------------
// Batched population campaigns on disk
// -------------------------------------------------------------------

/** Per-test scratch directory (the PopulationCampaign idiom). */
class BatchCampaign : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_batch_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        unsetenv("WSEL_JOBS");
        unsetenv("WSEL_BATCH_CELLS");
        unsetenv("WSEL_BATCH_WAVE");
        unsetenv("WSEL_WAVE_MEM");
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /**
     * 2 policies x the full 4-core population over 3 benchmarks
     * (15 workloads), 8 cells per shard -> 4 shards, run with
     * explicit batch and wave sizes (wave 1 = cell-major).
     */
    PopulationResult
    run(const std::string &out, std::size_t jobs,
        std::uint32_t batch, std::uint32_t wave = 1)
    {
        const auto suite = testSuite();
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), 4);
        BadcoModelStore store(CoreConfig{}, kUops, 5);
        PopulationOptions opts;
        opts.jobs = jobs;
        opts.shardCells = 8;
        opts.batchCells = batch;
        opts.batchWave = wave;
        return runBadcoPopulationCampaign(pop, kPolicies, kUops,
                                          store, suite, {}, out,
                                          opts);
    }

    std::vector<std::string>
    shardBytes(const std::string &out, std::uint64_t shards)
    {
        std::vector<std::string> bytes;
        for (std::uint64_t s = 0; s < shards; ++s)
            bytes.push_back(
                test::readFile(persist::v3ShardPath(out, s)));
        return bytes;
    }

    std::string dir_;
};

TEST_F(BatchCampaign, ShardsBitwiseIdenticalAcrossBatchAndJobs)
{
    const std::string ref = path("ref");
    const PopulationResult rr = run(ref, 1, 1);
    const auto want = shardBytes(ref, rr.manifest.shardCount());
    for (const std::string &b : want)
        ASSERT_FALSE(b.empty());

    for (std::uint32_t batch : {7u, 32u}) {
        for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
            const std::string out =
                path("b" + std::to_string(batch) + "j" +
                     std::to_string(jobs));
            const PopulationResult r = run(out, jobs, batch);
            ASSERT_EQ(r.manifest.shardCount(),
                      rr.manifest.shardCount());
            const auto got =
                shardBytes(out, r.manifest.shardCount());
            for (std::size_t s = 0; s < want.size(); ++s)
                EXPECT_EQ(want[s], got[s])
                    << "shard " << s << " batch " << batch
                    << " jobs " << jobs;
        }
    }
}

TEST_F(BatchCampaign, ShardsBitwiseIdenticalAcrossWaveBatchJobs)
{
    const std::string ref = path("ref");
    const PopulationResult rr = run(ref, 1, 1, 1);
    const auto want = shardBytes(ref, rr.manifest.shardCount());
    for (const std::string &b : want)
        ASSERT_FALSE(b.empty());

    for (std::uint32_t wave : {2u, 8u}) {
        for (std::uint32_t batch : {7u, 32u}) {
            for (std::size_t jobs :
                 {std::size_t{1}, std::size_t{8}}) {
                const std::string out =
                    path("w" + std::to_string(wave) + "b" +
                         std::to_string(batch) + "j" +
                         std::to_string(jobs));
                const PopulationResult r =
                    run(out, jobs, batch, wave);
                ASSERT_EQ(r.manifest.shardCount(),
                          rr.manifest.shardCount());
                const auto got =
                    shardBytes(out, r.manifest.shardCount());
                for (std::size_t s = 0; s < want.size(); ++s)
                    EXPECT_EQ(want[s], got[s])
                        << "shard " << s << " wave " << wave
                        << " batch " << batch << " jobs " << jobs;
            }
        }
    }
}

TEST_F(BatchCampaign, KillMidWaveResumesAtDifferentWaveSize)
{
    // Reference: serial cell-major at batch 1.
    const std::string ref = path("ref");
    const PopulationResult rr = run(ref, 1, 1, 1);
    const auto want = shardBytes(ref, rr.manifest.shardCount());

    // Kill at the 13th appended cell of a wave-4 batch-32 run: the
    // whole shard is one pending batch whose lanes advance in
    // waves of four resident uncores, so the kill lands with a
    // partially-assembled batch that is abandoned unwritten.
    const std::string out = path("v3");
    {
        test::FaultInjector fi("population.cell", 13);
        EXPECT_THROW(run(out, 1, 32, 4), test::InjectedFault);
    }
    EXPECT_FALSE(persist::isV3CampaignDir(out));

    // Resume at a *different* wave (and batch) size: resume
    // semantics are shard-granular and the payload is invariant to
    // both knobs, so the artifact must be byte-identical.
    const PopulationResult r2 = run(out, 1, 1, 1);
    EXPECT_GE(r2.shardsResumed, 1u);
    EXPECT_EQ(r2.cellsSimulated + r2.cellsResumed,
              15u * kPolicies.size());
    const auto got = shardBytes(out, r2.manifest.shardCount());
    for (std::size_t s = 0; s < want.size(); ++s)
        EXPECT_EQ(want[s], got[s]) << "shard " << s;
    EXPECT_TRUE(persist::isV3CampaignDir(out));

    // And the mirror image: kill a cell-major run, resume waved.
    const std::string out2 = path("v3b");
    {
        test::FaultInjector fi("population.cell", 13);
        EXPECT_THROW(run(out2, 1, 32, 1), test::InjectedFault);
    }
    const PopulationResult r3 = run(out2, 1, 32, 8);
    EXPECT_GE(r3.shardsResumed, 1u);
    const auto got2 = shardBytes(out2, r3.manifest.shardCount());
    for (std::size_t s = 0; s < want.size(); ++s)
        EXPECT_EQ(want[s], got2[s]) << "shard " << s;
}

TEST_F(BatchCampaign, KillMidBatchResumesToIdenticalArtifact)
{
    const std::string ref = path("ref");
    const PopulationResult rr = run(ref, 1, 32);
    const auto want = shardBytes(ref, rr.manifest.shardCount());

    // With batch 32 > the 8 cells of a shard, the whole shard is
    // one pending batch; killing at the 13th cell overall lands on
    // shard 1's fifth cell — mid-batch, with four cells appended
    // and unflushed. The shard is abandoned unwritten, exactly as
    // a serial mid-shard kill.
    const std::string out = path("v3");
    {
        test::FaultInjector fi("population.cell", 13);
        EXPECT_THROW(run(out, 1, 32), test::InjectedFault);
    }
    EXPECT_FALSE(persist::isV3CampaignDir(out));

    // Resume with a *different* batch size: resume semantics are
    // shard-granular and the payload is batch-invariant.
    const PopulationResult r2 = run(out, 1, 1);
    EXPECT_GE(r2.shardsResumed, 1u);
    EXPECT_LT(r2.cellsSimulated, 15u * kPolicies.size());
    EXPECT_EQ(r2.cellsSimulated + r2.cellsResumed,
              15u * kPolicies.size());
    const auto got = shardBytes(out, r2.manifest.shardCount());
    for (std::size_t s = 0; s < want.size(); ++s)
        EXPECT_EQ(want[s], got[s]) << "shard " << s;
    EXPECT_TRUE(persist::isV3CampaignDir(out));
}

// -------------------------------------------------------------------
// BatchPin vs the trace-store budget
// -------------------------------------------------------------------

TEST(BatchPinBudget, PinnedChunksSurviveTrimUntilRelease)
{
    // 8 chunks of 256 µops each far exceed a 16 KiB budget.
    TraceStore store(16 * 1024, 256);
    const BenchmarkProfile prof = test::lightProfile(7);

    BatchPin pin;
    pin.pin(store, prof, 8 * 256);
    EXPECT_EQ(pin.held(), 8u);
    const std::size_t resident = store.residentBytes();
    EXPECT_GT(resident, store.budgetBytes());

    // Every resident chunk is pinned: eviction must leave the
    // overshoot in place rather than un-charge memory a reader
    // still holds.
    store.trimToBudget();
    EXPECT_EQ(store.residentBytes(), resident);

    // Releasing the pins re-runs eviction; the budget converges
    // immediately.
    pin.release();
    EXPECT_EQ(pin.held(), 0u);
    EXPECT_LE(store.residentBytes(), store.budgetBytes());
    EXPECT_GT(store.evictions(), 0u);
}

TEST(BatchPinBudget, RepeatPinsCoalesce)
{
    TraceStore store(TraceStore::kDefaultBudgetBytes, 256);
    const BenchmarkProfile prof = test::lightProfile(7);

    BatchPin pin;
    pin.pin(store, prof, 4 * 256);
    EXPECT_EQ(pin.held(), 4u);
    EXPECT_EQ(pin.saved(), 0u);

    // A second lane of the batch referencing the same benchmark
    // resolves against the held chunks instead of re-pinning.
    pin.pin(store, prof, 4 * 256);
    EXPECT_EQ(pin.held(), 4u);
    EXPECT_EQ(pin.saved(), 4u);
}

TEST(BatchPinBudget, RepinAfterEvictionRegeneratesIdenticalChunks)
{
    // Budget fits about two 256-µop chunks, so walking the stream
    // evicts chunk 0; re-pinning it must rebuild identical bytes.
    TraceStore store(16 * 1024, 256);
    const BenchmarkProfile prof = test::lightProfile(7);
    const auto stream = store.stream(prof);

    TraceChunk first;
    {
        const auto c0 = stream->chunk(0);
        first = *c0;
    }
    const std::uint64_t builds0 = stream->builds();

    for (std::uint64_t i = 1; i < 8; ++i)
        (void)stream->chunk(i);
    EXPECT_GT(store.evictions(), 0u);

    const auto again = stream->chunk(0);
    EXPECT_GT(stream->builds(), builds0);
    EXPECT_EQ(again->firstUop, first.firstUop);
    EXPECT_EQ(again->count, first.count);
    EXPECT_EQ(again->kind, first.kind);
    EXPECT_EQ(again->addr, first.addr);
    EXPECT_EQ(again->pc, first.pc);
    EXPECT_EQ(again->dep1, first.dep1);
    EXPECT_EQ(again->dep2, first.dep2);
    EXPECT_EQ(again->latency, first.latency);
    EXPECT_EQ(again->taken, first.taken);
}

TEST(BatchPinBudget, TinyBudgetKeepsDetailedShardIdentical)
{
    // The detailed shard pins each row's chunks (BatchPin), so a
    // budget too small for even one benchmark's stream must force
    // evict-and-repin between rows without changing a single bit
    // of the payload.
    persist::V3Manifest m;
    m.fingerprint = 0xde7a11;
    m.simulator = "detailed";
    m.cores = 2;
    m.targetUops = 2000;
    m.instructions = 0;
    m.policies = {"LRU", "DIP"};
    m.benchmarks = {"test-light", "test-heavy"};
    m.refIpc = {1.0, 1.0};
    m.popBenchmarks = 2;
    m.popCores = 2;
    m.firstRank = 0;
    m.lastRank = 3;
    m.shardRows = 3;

    std::vector<BenchmarkProfile> suite;
    suite.push_back(test::lightProfile(7));
    suite.push_back(test::heavyProfile(11));
    const WorkloadPopulation pop(2, 2);
    std::vector<UncoreConfig> ucfgs;
    for (PolicyKind p : kPolicies)
        ucfgs.push_back(UncoreConfig::forCores(2, p));

    // The global store is process state: restore shape and budget
    // whatever happens.
    TraceStore &g = TraceStore::global();
    struct Restore
    {
        TraceStore &g;
        std::size_t budget;
        ~Restore()
        {
            g.clear();
            g.setChunkUops(TraceStore::kDefaultChunkUops);
            g.setBudgetBytes(budget);
        }
    } restore{g, g.budgetBytes()};

    g.clear();
    std::vector<double> plenty;
    simulateDetailedPopulationShard(m, pop, CoreConfig{}, ucfgs,
                                    suite, 1, 0, plenty);
    ASSERT_EQ(plenty.size(), 3u * 2u * 2u);

    g.clear();
    g.setChunkUops(512);
    g.setBudgetBytes(24 * 1024);
    const std::uint64_t ev0 = g.evictions();
    std::vector<double> tight;
    simulateDetailedPopulationShard(m, pop, CoreConfig{}, ucfgs,
                                    suite, 1, 0, tight);
    EXPECT_GT(g.evictions(), ev0);

    ASSERT_EQ(tight.size(), plenty.size());
    for (std::size_t i = 0; i < plenty.size(); ++i)
        EXPECT_EQ(plenty[i], tight[i]) << "lane " << i;
}

} // namespace

} // namespace wsel
