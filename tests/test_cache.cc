/**
 * @file
 * Tests for the set-associative cache structure.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "stats/logging.hh"
#include "stats/rng.hh"

namespace wsel
{

namespace
{

CacheGeometry
tinyGeom()
{
    return CacheGeometry{1024, 4, 64}; // 4 sets x 4 ways
}

} // namespace

TEST(CacheGeometry, SetsComputation)
{
    EXPECT_EQ(tinyGeom().sets(), 4u);
    CacheGeometry big{128 * 1024, 16, 64};
    EXPECT_EQ(big.sets(), 128u);
}

TEST(CacheGeometry, ValidationCatchesBadShapes)
{
    CacheGeometry g{1000, 4, 64}; // not divisible
    EXPECT_THROW(g.validate(), FatalError);
    CacheGeometry g2{1024, 4, 48}; // line not power of two
    EXPECT_THROW(g2.validate(), FatalError);
    CacheGeometry g3{1024 * 3, 4, 64}; // sets not power of two
    EXPECT_THROW(g3.validate(), FatalError);
    CacheGeometry g4{1024, 0, 64};
    EXPECT_THROW(g4.validate(), FatalError);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit); // same line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.stats().demandAccesses, 4u);
    EXPECT_EQ(c.stats().demandHits, 2u);
    EXPECT_EQ(c.stats().demandMisses, 2u);
}

TEST(Cache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    // 16 lines = exactly the capacity.
    for (std::uint64_t i = 0; i < 16; ++i)
        c.access(i * 64, false);
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t i = 0; i < 16; ++i)
            EXPECT_TRUE(c.access(i * 64, false).hit);
    }
}

TEST(Cache, LruThrashOnOversizedCyclicSet)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    // 20 lines cycled > 16-line capacity: LRU misses every access.
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t i = 0; i < 20; ++i) {
            const bool hit = c.access(i * 64, false).hit;
            if (round > 0) {
                EXPECT_FALSE(hit);
            }
        }
    }
}

TEST(Cache, EvictionReportsDirtyLine)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    // Fill one set (stride = sets*line = 256 bytes keeps one set).
    for (std::uint64_t w = 0; w < 4; ++w)
        c.access(w * 256, true); // dirty
    const auto r = c.access(4 * 256, false);
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.evicted.valid);
    EXPECT_TRUE(r.evicted.dirty);
    EXPECT_EQ(r.evicted.lineAddr, 0u); // LRU victim was line 0
    EXPECT_EQ(c.stats().writebacksOut, 1u);
}

TEST(Cache, CleanEvictionIsNotWriteback)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    for (std::uint64_t w = 0; w < 5; ++w)
        c.access(w * 256, false); // clean lines, one eviction
    EXPECT_EQ(c.stats().writebacksOut, 0u);
}

TEST(Cache, ProbeDoesNotChangeState)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    c.access(0x0, false);
    c.access(0x100, false);
    const auto before = c.stats();
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.stats().demandAccesses, before.demandAccesses);
    // LRU order unchanged: line 0 is still older than line 0x100.
    for (std::uint64_t w = 2; w < 4; ++w)
        c.access(w * 256, false);
    const auto r = c.access(4 * 256, false);
    EXPECT_EQ(r.evicted.lineAddr, 0u);
}

TEST(Cache, WritebackAllocatesOrMarksDirty)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    // Writeback to an absent line allocates it dirty.
    c.writeback(0x2000);
    EXPECT_TRUE(c.probe(0x2000));
    // Evicting it must report dirty.
    for (std::uint64_t w = 1; w < 5; ++w)
        c.access(0x2000 + w * 256, false);
    EXPECT_EQ(c.stats().writebacksOut, 1u);
}

TEST(Cache, PrefetchAccountedSeparately)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    c.access(0x0, false, true);
    c.access(0x0, false, true);
    EXPECT_EQ(c.stats().prefetchAccesses, 2u);
    EXPECT_EQ(c.stats().prefetchMisses, 1u);
    EXPECT_EQ(c.stats().prefetchHits, 1u);
    EXPECT_EQ(c.stats().demandAccesses, 0u);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c(tinyGeom(), PolicyKind::LRU, 1);
    c.access(0x0, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_EQ(c.stats().demandAccesses, 0u);
}

TEST(Cache, StatsAreConsistentUnderRandomTraffic)
{
    Cache c(CacheGeometry{8192, 8, 64}, PolicyKind::LRU, 1);
    Rng rng(17);
    for (int i = 0; i < 20000; ++i)
        c.access(rng.nextInt(64 * 1024), rng.nextBool(0.3));
    const CacheStats &s = c.stats();
    EXPECT_EQ(s.demandHits + s.demandMisses, s.demandAccesses);
    EXPECT_EQ(s.demandAccesses, 20000u);
}

/** The same traffic must hit differently under different policies. */
class CachePolicyTest : public ::testing::TestWithParam<PolicyKind>
{};

TEST_P(CachePolicyTest, HandlesMixedTrafficWithoutInvariantBreaks)
{
    Cache c(CacheGeometry{4096, 4, 64}, GetParam(), 7);
    Rng rng(23);
    std::uint64_t hits = 0;
    for (int i = 0; i < 30000; ++i) {
        // Zipf-ish mixture: small hot set + occasional scans.
        std::uint64_t addr;
        if (rng.nextBool(0.7))
            addr = 64 * rng.nextInt(32); // 32-line hot set
        else
            addr = 64 * rng.nextInt(4096); // wide
        hits += c.access(addr, rng.nextBool(0.2)).hit;
    }
    const CacheStats &s = c.stats();
    EXPECT_EQ(s.demandHits, hits);
    EXPECT_EQ(s.demandHits + s.demandMisses, 30000u);
    // Any sane policy keeps a 32-line hot set mostly resident in a
    // 64-line cache: expect a substantial hit rate.
    EXPECT_GT(s.demandMissRate(), 0.0);
    EXPECT_LT(s.demandMissRate(), 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CachePolicyTest,
    ::testing::Values(PolicyKind::LRU, PolicyKind::Random,
                      PolicyKind::FIFO, PolicyKind::DIP,
                      PolicyKind::DRRIP, PolicyKind::SRRIP,
                      PolicyKind::NRU, PolicyKind::PLRU),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return toString(info.param);
    });

TEST(CacheScanResistance, DipBeatsLruUnderThrash)
{
    // Cyclic set slightly larger than the cache: LRU gets ~0 hits,
    // DIP retains a fraction (the Qureshi et al. motivation).
    const CacheGeometry g{4096, 4, 64}; // 64 lines
    Cache lru(g, PolicyKind::LRU, 1);
    Cache dip(g, PolicyKind::DIP, 1);
    for (int round = 0; round < 50; ++round) {
        for (std::uint64_t i = 0; i < 80; ++i) {
            lru.access(i * 64, false);
            dip.access(i * 64, false);
        }
    }
    EXPECT_LT(lru.stats().demandHits, 10u);
    EXPECT_GT(dip.stats().demandHits,
              lru.stats().demandHits + 500u);
}

} // namespace wsel
