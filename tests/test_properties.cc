/**
 * @file
 * Cross-cutting determinism and conservation properties: the
 * reproducibility guarantees the experiment methodology rests on.
 */

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "badco/badco_machine.hh"
#include "badco/badco_model.hh"
#include "mem/uncore.hh"
#include "sim/campaign.hh"
#include "sim/model_store.hh"
#include "stats/logging.hh"
#include "test_util.hh"

namespace wsel
{

TEST(Properties, FsbBusyEqualsTransfersTimesOccupancy)
{
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::LRU);
    cfg.streamPrefetch = false;
    cfg.ipStridePrefetch = false;
    Uncore u(cfg, 1, 1);
    // Clean, distinct-line misses: one transfer each, no
    // writebacks.
    const int n = 40;
    std::uint64_t t = 0;
    for (int i = 0; i < n; ++i) {
        u.access(t, 0, 0x100000 + 4096 * i, false, 0);
        t += 5000; // spaced out: no MSHR or bus queueing
    }
    EXPECT_EQ(u.fsbBusyCycles(),
              static_cast<std::uint64_t>(n) *
                  cfg.fsbCyclesPerTransfer);
}

TEST(Properties, UncoreCompletionNeverBeforeRequest)
{
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::DRRIP);
    Uncore u(cfg, 2, 7);
    Rng rng(9);
    std::uint64_t t = 0;
    for (int i = 0; i < 2000; ++i) {
        t += rng.nextInt(20);
        const std::uint32_t core =
            static_cast<std::uint32_t>(rng.nextInt(2));
        const std::uint64_t comp = u.access(
            t, core, 64 * rng.nextInt(1 << 14), rng.nextBool(0.3),
            0x400000 + 4 * rng.nextInt(64));
        ASSERT_GE(comp, t + cfg.llcHitLatency);
    }
}

TEST(Properties, BadcoModelBuildIsBitDeterministic)
{
    const BenchmarkProfile p = test::heavyProfile();
    const BadcoModel a = buildBadcoModel(p, CoreConfig{}, 15000, 6);
    const BadcoModel b = buildBadcoModel(p, CoreConfig{}, 15000, 6);
    std::stringstream sa, sb;
    a.save(sa);
    b.save(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(Properties, TraceSeedsProduceDistinctStreams)
{
    BenchmarkProfile p1 = test::lightProfile(1);
    BenchmarkProfile p2 = test::lightProfile(2);
    TraceGenerator g1(p1), g2(p2);
    int same = 0;
    for (int i = 0; i < 2000; ++i) {
        const MicroOp &a = g1.next();
        const MicroOp &b = g2.next();
        same += (a.kind == b.kind && a.addr == b.addr &&
                 a.dep1 == b.dep1);
    }
    EXPECT_LT(same, 1800); // streams must not be near-identical
}

TEST(Properties, CampaignIsDeterministicEndToEnd)
{
    std::vector<BenchmarkProfile> suite = {test::lightProfile(7),
                                           test::heavyProfile(11)};
    const WorkloadPopulation pop(2, 2);
    auto run = [&]() {
        BadcoModelStore store(CoreConfig{}, 5000, 5);
        return runBadcoCampaign(pop.enumerateAll(),
                                {PolicyKind::LRU, PolicyKind::DRRIP},
                                2, 5000, store, suite);
    };
    const Campaign a = run();
    const Campaign b = run();
    for (std::size_t p = 0; p < a.policies.size(); ++p)
        for (std::size_t w = 0; w < a.workloads.size(); ++w)
            EXPECT_EQ(a.ipc[p][w], b.ipc[p][w]);
    EXPECT_EQ(a.refIpc, b.refIpc);
}

TEST(Properties, PolicyOnlyChangesUncoreNotTheTrace)
{
    // The per-thread DL1-filtered request stream is
    // uncore-independent: the same workload under two LLC policies
    // must replay the same number of BADCO requests.
    std::vector<BenchmarkProfile> suite = {test::heavyProfile(11)};
    BadcoModelStore store(CoreConfig{}, 8000, 5);
    const auto models = store.getSuite(suite);
    for (PolicyKind pol : {PolicyKind::LRU, PolicyKind::Random}) {
        UncoreConfig cfg = UncoreConfig::forCores(2, pol);
        Uncore uncore(cfg, 1, 1);
        BadcoMachine m(*models[0], uncore, 0, 8000);
        while (!m.reachedTarget())
            m.run(m.localClock() + 1000);
        // One full slice: requests == model nodes (each node
        // carries exactly one request).
        EXPECT_GE(m.stats().requests, models[0]->nodes.size());
    }
}

TEST(Properties, ModelStoreCacheRoundTripIsExact)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "wsel_prop_store";
    std::filesystem::remove_all(dir);
    const BenchmarkProfile p = test::heavyProfile(13);
    BadcoModel direct = buildBadcoModel(p, CoreConfig{}, 6000, 5);
    {
        BadcoModelStore store(CoreConfig{}, 6000, 5, dir.string());
        store.get(p);
    }
    BadcoModelStore store2(CoreConfig{}, 6000, 5, dir.string());
    const BadcoModel &loaded = store2.get(p);
    std::stringstream sa, sb;
    direct.save(sa);
    loaded.save(sb);
    EXPECT_EQ(sa.str(), sb.str());
    std::filesystem::remove_all(dir);
}

} // namespace wsel
