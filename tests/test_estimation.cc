/**
 * @file
 * Tests for throughput estimation with confidence intervals and
 * Neyman allocation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/confidence/confidence.hh"
#include "core/sampling/sampling.hh"
#include "stats/logging.hh"
#include "stats/summary.hh"

namespace wsel
{

namespace
{

/** A synthetic population with two very different regions. */
struct Pop
{
    std::vector<double> t;

    explicit Pop(std::size_t n = 400)
    {
        Rng rng(3);
        t.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            // First half tight around 1.0; second half dispersed
            // around 3.0.
            if (i < n / 2)
                t[i] = 1.0 + 0.01 * rng.nextGaussian();
            else
                t[i] = 3.0 + 0.8 * rng.nextGaussian();
            t[i] = std::max(t[i], 0.05);
        }
    }

    double
    mean() const
    {
        double s = 0.0;
        for (double v : t)
            s += v;
        return s / static_cast<double>(t.size());
    }
};

Sample
wholePopulationSample(std::size_t n)
{
    Sample s;
    s.strata.resize(1);
    s.strata[0].weight = 1.0;
    for (std::size_t i = 0; i < n; ++i)
        s.strata[0].indices.push_back(i);
    return s;
}

} // namespace

TEST(EstimateThroughput, PointEstimateMatchesSampleThroughput)
{
    Pop pop;
    auto sampler = makeRandomSampler(pop.t.size());
    Rng rng(5);
    const Sample s = sampler->draw(40, rng);
    for (ThroughputMetric m :
         {ThroughputMetric::IPCT, ThroughputMetric::HSU,
          ThroughputMetric::GSU}) {
        const auto est = estimateThroughput(s, m, pop.t);
        EXPECT_NEAR(est.value, sampleThroughput(s, m, pop.t), 1e-9)
            << toString(m);
        EXPECT_LE(est.lo, est.value + 1e-12);
        EXPECT_GE(est.hi, est.value - 1e-12);
    }
}

TEST(EstimateThroughput, FullPopulationHasZeroishWidthPerStratum)
{
    // Sampling the whole population in one stratum leaves only the
    // finite-sample CLT width, which shrinks with n.
    Pop small(100);
    const auto est = estimateThroughput(
        wholePopulationSample(100), ThroughputMetric::IPCT,
        small.t);
    EXPECT_NEAR(est.value, small.mean(), 1e-12);
    EXPECT_LT(est.hi - est.lo, 1.0);
}

TEST(EstimateThroughput, CoverageNearNominal)
{
    // ~95% of random-sample intervals must contain the population
    // mean.
    Pop pop;
    const double truth = pop.mean();
    auto sampler = makeRandomSampler(pop.t.size());
    Rng rng(7);
    int covered = 0;
    const int trials = 600;
    for (int i = 0; i < trials; ++i) {
        const Sample s = sampler->draw(50, rng);
        const auto est =
            estimateThroughput(s, ThroughputMetric::IPCT, pop.t);
        covered += (truth >= est.lo && truth <= est.hi);
    }
    const double coverage = covered / static_cast<double>(trials);
    EXPECT_GT(coverage, 0.90);
    EXPECT_LE(coverage, 1.0);
}

TEST(EstimateThroughput, StratificationShrinksTheInterval)
{
    // Strata aligned with the population's two regions must give a
    // tighter interval than one random stratum of the same size.
    Pop pop;
    std::vector<double> d(pop.t.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = pop.t[i]; // stratify directly on the value
    WorkloadStrataConfig cfg{0.05, 20};
    auto strat = makeWorkloadStratifiedSampler(d, cfg);
    auto rnd = makeRandomSampler(pop.t.size());
    Rng r1(9), r2(9);
    RunningStats width_s, width_r;
    for (int i = 0; i < 200; ++i) {
        const auto es = estimateThroughput(
            strat->draw(40, r1), ThroughputMetric::IPCT, pop.t);
        const auto er = estimateThroughput(
            rnd->draw(40, r2), ThroughputMetric::IPCT, pop.t);
        width_s.add(es.hi - es.lo);
        width_r.add(er.hi - er.lo);
    }
    EXPECT_LT(width_s.mean(), width_r.mean());
}

TEST(EstimateThroughput, HsuIntervalIsOrdered)
{
    Pop pop;
    auto sampler = makeRandomSampler(pop.t.size());
    Rng rng(11);
    const Sample s = sampler->draw(30, rng);
    const auto est =
        estimateThroughput(s, ThroughputMetric::HSU, pop.t);
    EXPECT_LT(est.lo, est.hi);
    EXPECT_GT(est.lo, 0.0);
}

TEST(NeymanAllocation, FavorsHeterogeneousStrata)
{
    // Population: a homogeneous block and a heterogeneous block.
    Pop pop;
    std::vector<double> d = pop.t;
    WorkloadStrataConfig prop{0.05, 50};
    WorkloadStrataConfig ney{0.05, 50};
    ney.allocation = Allocation::Neyman;
    auto sp = makeWorkloadStratifiedSampler(d, prop);
    auto sn = makeWorkloadStratifiedSampler(d, ney);
    Rng r1(13), r2(13);
    const Sample a = sp->draw(60, r1);
    const Sample b = sn->draw(60, r2);
    EXPECT_EQ(a.totalSize(), 60u);
    EXPECT_EQ(b.totalSize(), 60u);

    // Identify each sample's draw count in its most dispersed
    // stratum: Neyman must allocate at least as many there.
    auto dispersed_alloc = [&](const Sample &s) {
        std::size_t best = 0;
        double best_sd = -1.0;
        for (const auto &st : s.strata) {
            RunningStats stats;
            for (std::size_t idx : st.indices)
                stats.add(d[idx]);
            // Dispersion of the underlying values in this stratum's
            // d-range is what Neyman keys on; approximate with the
            // drawn values' spread.
            if (stats.count() >= 1 &&
                stats.stddevPopulation() > best_sd) {
                best_sd = stats.stddevPopulation();
                best = st.indices.size();
            }
        }
        return best;
    };
    EXPECT_GE(dispersed_alloc(b) + 1, dispersed_alloc(a));
}

TEST(NeymanAllocation, ReducesEstimatorVariance)
{
    Pop pop;
    std::vector<double> d = pop.t;
    const double truth = pop.mean();
    WorkloadStrataConfig prop{0.05, 40};
    WorkloadStrataConfig ney = prop;
    ney.allocation = Allocation::Neyman;
    auto sp = makeWorkloadStratifiedSampler(d, prop);
    auto sn = makeWorkloadStratifiedSampler(d, ney);
    Rng r1(17), r2(17);
    RunningStats err_p, err_n;
    for (int i = 0; i < 400; ++i) {
        err_p.add(std::abs(sampleThroughput(sp->draw(24, r1),
                                            ThroughputMetric::IPCT,
                                            pop.t) -
                           truth));
        err_n.add(std::abs(sampleThroughput(sn->draw(24, r2),
                                            ThroughputMetric::IPCT,
                                            pop.t) -
                           truth));
    }
    // Neyman is optimal in expectation; allow a small tolerance for
    // the finite-trial estimate.
    EXPECT_LT(err_n.mean(), err_p.mean() * 1.05);
}

} // namespace wsel
