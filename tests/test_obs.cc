/**
 * @file
 * Tests for the observability subsystem (src/obs/): sharded
 * counters, gauges, log-2 latency histograms, the snapshot
 * renderers, the ring-buffer tracer with its Chrome-JSON round
 * trip, and the lock-free warn() dedup table.
 *
 * Every suite name starts with "Obs" so the tsan preset's test
 * filter (CMakePresets.json) picks the whole file up.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/scheduler.hh"
#include "obs/obs.hh"
#include "stats/logging.hh"

namespace wsel
{

namespace
{

/** Restore both obs gates on scope exit so no test leaks state. */
struct ObsGuard
{
    ~ObsGuard()
    {
        obs::enableMetrics(false);
        obs::disableTracing();
    }
};

} // namespace

// -------------------------------------------------------------------
// Counters
// -------------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::Counter &c = obs::counter("test.counter_concurrent");
    const std::uint64_t before = c.value();
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPer = 100000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPer; ++i)
                c.inc();
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value() - before, kThreads * kPer);
}

TEST(ObsCounter, DisabledIncrementIsDropped)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::Counter &c = obs::counter("test.counter_disabled");
    const std::uint64_t before = c.value();
    obs::enableMetrics(false);
    c.inc();
    c.inc(100);
    EXPECT_EQ(c.value(), before);
    obs::enableMetrics();
    c.inc(3);
    EXPECT_EQ(c.value() - before, 3u);
}

TEST(ObsCounter, IncAlwaysIgnoresGate)
{
    ObsGuard guard;
    obs::Counter &c = obs::counter("test.counter_always");
    const std::uint64_t before = c.value();
    obs::enableMetrics(false);
    c.incAlways(7);
    EXPECT_EQ(c.value() - before, 7u);
}

// -------------------------------------------------------------------
// Gauges
// -------------------------------------------------------------------

TEST(ObsGauge, SetAndAdd)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::Gauge &g = obs::gauge("test.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    obs::enableMetrics(false);
    g.set(99.0);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.setAlways(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

// -------------------------------------------------------------------
// Histograms
// -------------------------------------------------------------------

TEST(ObsHistogram, CountSumMinMax)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::LatencyHistogram &h = obs::histogram("test.hist_basic");
    h.recordNs(10);
    h.recordNs(1000);
    h.recordNs(100000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sumNs(), 101010u);
    EXPECT_EQ(h.minNs(), 10u);
    EXPECT_EQ(h.maxNs(), 100000u);
}

TEST(ObsHistogram, QuantilesAreBucketUpperBounds)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::LatencyHistogram &h = obs::histogram("test.hist_quant");
    // 90 fast points (~1 µs) and 10 slow ones (~1 ms).
    for (int i = 0; i < 90; ++i)
        h.recordNs(1000);
    for (int i = 0; i < 10; ++i)
        h.recordNs(1000000);
    // 1000 ns lands in bucket 10 (upper bound 1024 ns); 1e6 ns in
    // bucket 20 (upper bound 1048576 ns).
    EXPECT_EQ(h.quantileNs(0.50), 1024u);
    EXPECT_EQ(h.quantileNs(0.90), 1024u);
    EXPECT_EQ(h.quantileNs(0.99), 1048576u);
    EXPECT_GE(h.quantileNs(1.0), h.quantileNs(0.5));
}

TEST(ObsHistogram, TimerRecordsOnlyWhenEnabled)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::LatencyHistogram &h = obs::histogram("test.hist_timer");
    const std::uint64_t before = h.count();
    {
        obs::LatencyHistogram::Timer t(h);
    }
    EXPECT_EQ(h.count() - before, 1u);
    obs::enableMetrics(false);
    {
        obs::LatencyHistogram::Timer t(h);
    }
    EXPECT_EQ(h.count() - before, 1u);
}

// -------------------------------------------------------------------
// Registry and snapshots
// -------------------------------------------------------------------

TEST(ObsRegistry, SameNameReturnsSameInstrument)
{
    obs::Counter &a = obs::counter("test.registry_same");
    obs::Counter &b = obs::counter("test.registry_same");
    EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, KindMismatchIsFatal)
{
    obs::counter("test.registry_kind");
    EXPECT_THROW(obs::gauge("test.registry_kind"), FatalError);
    EXPECT_THROW(obs::histogram("test.registry_kind"), FatalError);
}

TEST(ObsSnapshot, CatalogPreRegisteredOnEnable)
{
    ObsGuard guard;
    obs::enableMetrics();
    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    auto has = [&](const std::string &name) {
        for (const obs::MetricsEntry &e : snap.entries) {
            if (e.name == name)
                return true;
        }
        return false;
    };
    // The acceptance contract: a snapshot always lists the
    // scheduler, campaign, and persist-cache instruments, even when
    // their code paths never ran.
    EXPECT_TRUE(has("scheduler.tasks_run"));
    EXPECT_TRUE(has("scheduler.queue_ns"));
    EXPECT_TRUE(has("campaign.cells"));
    EXPECT_TRUE(has("campaign.journal_flush_ns"));
    EXPECT_TRUE(has("persist.cache_hit"));
    EXPECT_TRUE(has("persist.cache_miss"));
    EXPECT_TRUE(has("persist.cache_quarantine"));
    EXPECT_TRUE(has("trace.dropped"));
}

TEST(ObsSnapshot, JsonAndTableRenderInstrument)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::counter("test.snapshot_render").inc(42);
    obs::histogram("test.snapshot_hist").recordNs(5000);
    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"test.snapshot_render\""),
              std::string::npos);
    EXPECT_NE(json.find("\"value\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"test.snapshot_hist\""),
              std::string::npos);
    const std::string table = snap.toTable();
    EXPECT_NE(table.find("test.snapshot_render"), std::string::npos);
    // Prefix filtering keeps only the requested section.
    const std::string sched = snap.toTable("scheduler.");
    EXPECT_NE(sched.find("scheduler.tasks_run"), std::string::npos);
    EXPECT_EQ(sched.find("test.snapshot_render"), std::string::npos);
}

TEST(ObsSnapshot, EntriesAreNameSorted)
{
    ObsGuard guard;
    obs::enableMetrics();
    const obs::MetricsSnapshot snap = obs::metricsSnapshot();
    for (std::size_t i = 1; i < snap.entries.size(); ++i)
        EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
}

// -------------------------------------------------------------------
// Tracer
// -------------------------------------------------------------------

TEST(ObsTrace, RingOverflowDropsOldestAndCounts)
{
    ObsGuard guard;
    obs::Counter &dropCounter = obs::counter("trace.dropped");
    const std::uint64_t dropsBefore = dropCounter.value();
    obs::enableTracing(64);
    for (int i = 0; i < 100; ++i)
        obs::instant("e" + std::to_string(i));
    const obs::TraceSnapshot snap = obs::traceSnapshot();
    EXPECT_EQ(snap.events.size(), 64u);
    EXPECT_EQ(snap.dropped, 36u);
    // Drop-oldest: the first retained event is #36, the last #99.
    EXPECT_EQ(snap.events.front().name, "e36");
    EXPECT_EQ(snap.events.back().name, "e99");
    // The drop count is also a metric (recorded past the gate).
    EXPECT_EQ(dropCounter.value() - dropsBefore, 36u);
}

TEST(ObsTrace, DisabledModeEmitsZeroEvents)
{
    ObsGuard guard;
    obs::enableTracing(16); // resets the ring
    obs::disableTracing();
    obs::instant("nope");
    {
        obs::Span span("nope.span");
    }
    EXPECT_EQ(obs::spanDepth(), 0u);
    EXPECT_TRUE(obs::traceSnapshot().events.empty());
    EXPECT_EQ(obs::traceSnapshot().dropped, 0u);
}

TEST(ObsTrace, SpanDepthTracksNesting)
{
    ObsGuard guard;
    obs::enableTracing(256);
    EXPECT_EQ(obs::spanDepth(), 0u);
    {
        obs::Span outer("outer");
        EXPECT_EQ(obs::spanDepth(), 1u);
        {
            obs::Span inner("inner");
            EXPECT_EQ(obs::spanDepth(), 2u);
        }
        EXPECT_EQ(obs::spanDepth(), 1u);
    }
    EXPECT_EQ(obs::spanDepth(), 0u);
}

TEST(ObsTrace, ChromeJsonRoundTrips)
{
    ObsGuard guard;
    obs::enableTracing(1024);
    {
        obs::Span outer("outer", "k=v");
        obs::Span inner("inner");
        obs::instant("marker", "n=1");
    }
    obs::disableTracing();
    const std::string json =
        obs::renderChromeTrace(obs::traceSnapshot());
    const auto events = obs::parseChromeTrace(json);
    ASSERT_EQ(events.size(), 5u);
    int begins = 0, ends = 0, instants = 0;
    for (const obs::ParsedTraceEvent &e : events) {
        EXPECT_EQ(e.pid, 1u);
        EXPECT_GT(e.tid, 0u);
        if (e.ph == 'B')
            ++begins;
        else if (e.ph == 'E')
            ++ends;
        else if (e.ph == 'i')
            ++instants;
    }
    EXPECT_EQ(begins, 2);
    EXPECT_EQ(ends, 2);
    EXPECT_EQ(instants, 1);
    // Events come out time-sorted; B precedes the matching E.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tsUs, events[i].tsUs);
    EXPECT_EQ(events.front().name, "outer");
    EXPECT_EQ(events.back().name, "outer");
}

TEST(ObsTrace, WriteChromeTraceRoundTripsThroughDisk)
{
    ObsGuard guard;
    obs::enableTracing(128);
    {
        obs::Span span("disk.span");
    }
    const std::string path =
        testing::TempDir() + "wsel_obs_trace_test.json";
    obs::writeChromeTrace(path);
    obs::disableTracing();
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto events = obs::parseChromeTrace(buf.str());
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "disk.span");
    EXPECT_EQ(events[0].ph, 'B');
    EXPECT_EQ(events[1].ph, 'E');
    std::remove(path.c_str());
}

TEST(ObsTrace, ParserRejectsMalformedJson)
{
    EXPECT_THROW(obs::parseChromeTrace("not json"), FatalError);
    EXPECT_THROW(obs::parseChromeTrace("{\"traceEvents\": [{}]}"),
                 FatalError);
}

TEST(ObsTrace, ConcurrentEmittersKeepCapacityInvariant)
{
    ObsGuard guard;
    obs::enableTracing(256);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 500; ++i)
                obs::Span span("concurrent.span");
        });
    }
    for (std::thread &t : threads)
        t.join();
    const obs::TraceSnapshot snap = obs::traceSnapshot();
    EXPECT_EQ(snap.events.size(), 256u);
    EXPECT_EQ(snap.dropped, 8u * 500u * 2u - 256u);
}

// -------------------------------------------------------------------
// Scheduler integration
// -------------------------------------------------------------------

TEST(ObsScheduler, PoolStatsReachRegistry)
{
    ObsGuard guard;
    obs::enableMetrics();
    obs::Counter &run = obs::counter("scheduler.tasks_run");
    const std::uint64_t before = run.value();
    constexpr std::size_t kTasks = 64;
    std::atomic<std::size_t> executed{0};
    {
        exec::ThreadPool pool(4);
        exec::TaskGroup group(pool);
        for (std::size_t i = 0; i < kTasks; ++i)
            group.run([&executed] { ++executed; });
        group.wait();
    }
    EXPECT_EQ(executed.load(), kTasks);
    EXPECT_EQ(run.value() - before, kTasks);
}

// -------------------------------------------------------------------
// warn() dedup table
// -------------------------------------------------------------------

TEST(ObsDedup, CountsSequentialRepeats)
{
    EXPECT_EQ(obs::noteRepeat("test.dedup.seq"), 1u);
    EXPECT_EQ(obs::noteRepeat("test.dedup.seq"), 2u);
    EXPECT_EQ(obs::noteRepeat("test.dedup.seq"), 3u);
    EXPECT_EQ(obs::noteRepeat("test.dedup.other"), 1u);
}

TEST(ObsDedup, ConcurrentCountsAreExact)
{
    constexpr int kThreads = 8;
    constexpr int kPer = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kPer; ++i)
                obs::noteRepeat("test.dedup.concurrent");
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(obs::noteRepeat("test.dedup.concurrent"),
              static_cast<std::uint64_t>(kThreads * kPer + 1));
}

} // namespace wsel
