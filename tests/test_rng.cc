/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stats/logging.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace wsel
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, NextIntRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(r.nextInt(bound), bound);
    }
}

TEST(Rng, NextIntCoversAllResidues)
{
    Rng r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.nextInt(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntIsRoughlyUniform)
{
    Rng r(11);
    const int buckets = 10, n = 100000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < n; ++i)
        ++counts[r.nextInt(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, n / buckets * 0.9);
        EXPECT_LT(c, n / buckets * 1.1);
    }
}

TEST(Rng, NextIntRangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = r.nextIntRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(9);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) {
        const double x = r.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variancePopulation(), 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(r.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.variancePopulation(), 1.0, 0.03);
}

TEST(Rng, GeometricMean)
{
    Rng r(17);
    const double p = 0.25;
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(r.nextGeometric(p)));
    // Mean number of failures before success: (1-p)/p = 3.
    EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(23);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    auto sorted = v;
    r.shuffle(v);
    EXPECT_NE(v, sorted); // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng r(29);
    for (std::size_t n : {10u, 100u, 1000u}) {
        for (std::size_t k : {1u, 5u, 10u}) {
            auto s = r.sampleWithoutReplacement(n, k);
            EXPECT_EQ(s.size(), k);
            std::set<std::size_t> uniq(s.begin(), s.end());
            EXPECT_EQ(uniq.size(), k);
            for (std::size_t x : s)
                EXPECT_LT(x, n);
        }
    }
}

TEST(Rng, SampleWithoutReplacementFullSet)
{
    Rng r(31);
    auto s = r.sampleWithoutReplacement(8, 8);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rng, SampleWithoutReplacementIsUniform)
{
    // Each element of [0,10) should appear in a 3-sample with
    // probability 3/10.
    Rng r(37);
    std::vector<int> counts(10, 0);
    const int trials = 30000;
    for (int t = 0; t < trials; ++t) {
        for (std::size_t x : r.sampleWithoutReplacement(10, 3))
            ++counts[x];
    }
    for (int c : counts)
        EXPECT_NEAR(c / static_cast<double>(trials), 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample)
{
    Rng r(41);
    EXPECT_THROW(r.sampleWithoutReplacement(3, 4), FatalError);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(43);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 5);
}

} // namespace wsel
