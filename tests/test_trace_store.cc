/**
 * @file
 * Tests for the shared memoized trace store (src/trace/trace_store):
 * a TraceCursor must replay the exact µop stream a fresh
 * TraceGenerator produces (including the thread-restart reset and
 * across chunk boundaries), eviction under a tiny budget must only
 * cost time — never change a stream or a campaign artifact — and a
 * concurrent cold start must build every chunk exactly once.
 *
 * The fixture names carry the "TraceStore" prefix on purpose: the
 * tsan CMake preset's test filter selects them for race checking.
 */

#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.hh"
#include "trace/trace_generator.hh"
#include "trace/trace_store.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

constexpr std::uint32_t kSmallChunk = 512;

void
expectSameUop(const MicroOp &want, const MicroOp &got,
              std::uint64_t at)
{
    ASSERT_EQ(static_cast<int>(want.kind),
              static_cast<int>(got.kind))
        << "µop " << at;
    ASSERT_EQ(want.addr, got.addr) << "µop " << at;
    ASSERT_EQ(want.pc, got.pc) << "µop " << at;
    ASSERT_EQ(want.dep1, got.dep1) << "µop " << at;
    ASSERT_EQ(want.dep2, got.dep2) << "µop " << at;
    ASSERT_EQ(want.latency, got.latency) << "µop " << at;
    ASSERT_EQ(want.taken, got.taken) << "µop " << at;
}

/** Walk @p n µops of @p cur against a fresh generator of @p p. */
void
expectCursorMatchesGenerator(TraceCursor cur,
                             const BenchmarkProfile &p,
                             std::uint64_t n)
{
    TraceGenerator gen(p);
    for (std::uint64_t i = 0; i < n; ++i) {
        const MicroOp want = gen.next();
        const MicroOp got = cur.next();
        expectSameUop(want, got, i);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(TraceStoreTest, CursorMatchesGeneratorAcrossChunks)
{
    const BenchmarkProfile light = test::lightProfile(7);
    const BenchmarkProfile heavy = test::heavyProfile(11);
    TraceStore store(TraceStore::kDefaultBudgetBytes, kSmallChunk);
    // ~10 chunk boundaries, ending mid-chunk.
    expectCursorMatchesGenerator(store.cursor(light), light,
                                 10 * kSmallChunk + 129);
    expectCursorMatchesGenerator(store.cursor(heavy), heavy,
                                 4 * kSmallChunk + 1);
}

TEST(TraceStoreTest, ResetReplaysTheStreamFromUopZero)
{
    const BenchmarkProfile p = test::lightProfile(7);
    TraceStore store(TraceStore::kDefaultBudgetBytes, kSmallChunk);
    TraceCursor cur = store.cursor(p);
    for (std::uint64_t i = 0; i < 3 * kSmallChunk + 17; ++i)
        cur.next();
    EXPECT_EQ(cur.generated(), 3 * kSmallChunk + 17);
    cur.reset();
    EXPECT_EQ(cur.generated(), 0u);
    expectCursorMatchesGenerator(std::move(cur), p,
                                 2 * kSmallChunk + 5);
}

TEST(TraceStoreTest, StreamsAreMemoizedPerProfile)
{
    const BenchmarkProfile p = test::lightProfile(7);
    TraceStore store;
    const auto a = store.stream(p);
    const auto b = store.stream(p);
    EXPECT_EQ(a.get(), b.get());
    // A different seed is a different stream.
    EXPECT_NE(a.get(), store.stream(test::lightProfile(8)).get());
}

TEST(TraceStoreTest, ChunksAreSharedAcrossTargetLengths)
{
    const BenchmarkProfile p = test::lightProfile(7);
    TraceStore store(TraceStore::kDefaultBudgetBytes, kSmallChunk);
    store.ensureBuilt(p, 4 * kSmallChunk);
    const auto s = store.stream(p);
    EXPECT_EQ(s->builds(), 4u);
    // A shorter and a longer target reuse the position-aligned
    // chunks: only the two new chunks are built.
    store.ensureBuilt(p, 2 * kSmallChunk);
    store.ensureBuilt(p, 6 * kSmallChunk);
    EXPECT_EQ(s->builds(), 6u);
}

TEST(TraceStoreTest, EvictionRegeneratesTheIdenticalStream)
{
    const BenchmarkProfile p = test::heavyProfile(11);
    // Budget of one chunk: every chunk transition evicts the
    // previous chunk, and a second pass regenerates every chunk.
    TraceChunk probe;
    probe.count = kSmallChunk;
    TraceStore store(probe.bytes(), kSmallChunk);
    const std::uint64_t n = 6 * kSmallChunk + 77;
    expectCursorMatchesGenerator(store.cursor(p), p, n);
    EXPECT_GT(store.evictions(), 0u);
    const std::uint64_t evicted_after_first = store.evictions();
    // Regenerated chunks are bit-identical to the originals.
    expectCursorMatchesGenerator(store.cursor(p), p, n);
    EXPECT_GT(store.evictions(), evicted_after_first);
    EXPECT_GT(store.stream(p)->builds(), 7u); // rebuilt, not cached
}

TEST(TraceStoreTest, ResidentBytesStayWithinBudget)
{
    const BenchmarkProfile p = test::lightProfile(7);
    TraceChunk probe;
    probe.count = kSmallChunk;
    const std::size_t budget = 3 * probe.bytes();
    TraceStore store(budget, kSmallChunk);
    store.ensureBuilt(p, 16 * kSmallChunk);
    EXPECT_LE(store.residentBytes(), budget);
    EXPECT_GE(store.evictions(), 13u);
    // Shrinking the budget evicts immediately.
    store.setBudgetBytes(probe.bytes());
    EXPECT_LE(store.residentBytes(), probe.bytes());
}

TEST(TraceStoreTest, ConcurrentColdStartBuildsEachChunkOnce)
{
    const BenchmarkProfile p = test::heavyProfile(11);
    constexpr std::uint32_t kChunk = 1024;
    constexpr std::uint64_t kPerThread = 8 * kChunk;
    TraceStore store(TraceStore::kDefaultBudgetBytes, kChunk);
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&store, &p] {
            TraceCursor cur = store.cursor(p);
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                sum += cur.next().pc;
            EXPECT_NE(sum, 0u);
        });
    }
    for (std::thread &t : threads)
        t.join();
    // 8 threads raced over the same 8 cold chunks; the per-stream
    // build lock must have built each exactly once.
    EXPECT_EQ(store.stream(p)->builds(), kPerThread / kChunk);
    EXPECT_EQ(store.evictions(), 0u);
}

/**
 * Reconfigures the process-global store (tiny chunks + tiny budget
 * to force eviction in the middle of real simulations) and restores
 * the defaults even when an assertion fails.
 */
class TraceStoreCampaignTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("WSEL_JOBS");
    }

    void
    TearDown() override
    {
        TraceStore &ts = TraceStore::global();
        ts.setChunkUops(TraceStore::kDefaultChunkUops);
        ts.setBudgetBytes(TraceStore::kDefaultBudgetBytes);
        ts.clear();
    }
};

TEST_F(TraceStoreCampaignTest, EvictionNeverChangesCampaignResults)
{
    constexpr std::uint64_t kUops = 3000;
    std::vector<BenchmarkProfile> suite;
    suite.push_back(test::lightProfile(7));
    suite.push_back(test::heavyProfile(11));
    const WorkloadPopulation pop(2, 2); // 3 workloads
    CampaignOptions opts;
    opts.jobs = 1;

    const auto run = [&] {
        return runDetailedCampaign(pop.enumerateAll(),
                                   {PolicyKind::LRU, PolicyKind::DIP},
                                   2, kUops, CoreConfig{}, suite,
                                   opts);
    };

    const Campaign base = run();

    // Rebuild the streams as 256-µop chunks under a one-chunk
    // budget: every core's cursor now evicts and regenerates chunks
    // while cells are simulating, serially and in parallel.
    TraceStore &ts = TraceStore::global();
    TraceChunk probe;
    probe.count = 256;
    ts.clear();
    ts.setChunkUops(256);
    ts.setBudgetBytes(probe.bytes());
    const std::uint64_t evictions_before = ts.evictions();

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        opts.jobs = jobs;
        const Campaign c = run();
        ASSERT_EQ(base.refIpc.size(), c.refIpc.size());
        for (std::size_t i = 0; i < base.refIpc.size(); ++i)
            EXPECT_EQ(base.refIpc[i], c.refIpc[i])
                << "refIpc " << i << " jobs " << jobs;
        ASSERT_EQ(base.ipc.size(), c.ipc.size());
        for (std::size_t p = 0; p < base.ipc.size(); ++p) {
            for (std::size_t w = 0; w < base.ipc[p].size(); ++w) {
                ASSERT_EQ(base.ipc[p][w].size(), c.ipc[p][w].size());
                for (std::size_t k = 0; k < base.ipc[p][w].size();
                     ++k)
                    EXPECT_EQ(base.ipc[p][w][k], c.ipc[p][w][k])
                        << "cell (" << p << "," << w << "," << k
                        << ") jobs " << jobs;
            }
        }
    }
    EXPECT_GT(TraceStore::global().evictions(), evictions_before)
        << "tiny budget did not force eviction; the test is vacuous";
}

} // namespace
} // namespace wsel
