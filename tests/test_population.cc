/**
 * @file
 * Tests for the population-scale campaign engine: the streamed
 * enumeration primitives (WorkloadCursor, WorkloadSet), the
 * contiguous IpcMatrix, the campaign_v3 shard format, the
 * streaming statistics (Welford cv, mergeable QuantileSketch,
 * Histogram::merge, StreamedWorkloadStrata), and the population
 * runner's resilience contract: serial vs parallel bitwise shard
 * identity, kill-point resume at shard granularity, and
 * truncated-shard quarantine-and-regenerate.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampling/sampling.hh"
#include "fault_injection.hh"
#include "sim/campaign.hh"
#include "sim/population.hh"
#include "stats/persist_v3.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kUops = 3000;

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    s.push_back(test::lightProfile(13));
    return s;
}

const std::vector<PolicyKind> kPolicies = {PolicyKind::LRU,
                                           PolicyKind::DIP};

std::vector<PopulationPairSpec>
testPairs()
{
    PopulationPairSpec ipct;
    ipct.y = 0;
    ipct.x = 1;
    ipct.metric = ThroughputMetric::IPCT;
    ipct.label = "LRU>DIP";
    PopulationPairSpec wsu = ipct;
    wsu.metric = ThroughputMetric::WSU;
    wsu.label = "LRU>DIP/WSU";
    return {ipct, wsu};
}

// -------------------------------------------------------------------
// Streamed enumeration
// -------------------------------------------------------------------

TEST(WorkloadCursor, MatchesEnumerateAll)
{
    const WorkloadPopulation pop(5, 3);
    const std::vector<Workload> all = pop.enumerateAll();
    WorkloadCursor cur(pop, 0);
    for (std::size_t i = 0; i < all.size(); ++i, cur.next()) {
        ASSERT_FALSE(cur.atEnd());
        EXPECT_EQ(cur.rank(), i);
        const auto span = cur.benchmarks();
        ASSERT_EQ(span.size(), all[i].size());
        for (std::size_t k = 0; k < span.size(); ++k)
            EXPECT_EQ(span[k], all[i][k]) << "rank " << i;
    }
    EXPECT_TRUE(cur.atEnd());
}

TEST(WorkloadCursor, SeeksToArbitraryRank)
{
    const WorkloadPopulation pop(6, 4);
    for (std::uint64_t start : {std::uint64_t{0}, std::uint64_t{17},
                                pop.size() - 1}) {
        WorkloadCursor cur(pop, start);
        EXPECT_EQ(cur.rank(), start);
        const Workload expect = pop.unrank(start);
        const auto got = cur.benchmarks();
        for (std::size_t k = 0; k < expect.size(); ++k)
            EXPECT_EQ(got[k], expect[k]);
    }
}

TEST(WorkloadSet, ModesAgreeElementwise)
{
    const WorkloadPopulation pop(4, 3);
    const WorkloadSet explicit_set(pop.enumerateAll());
    const WorkloadSet range = WorkloadSet::fullPopulation(pop);
    std::vector<std::uint64_t> ranks(pop.size());
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = i;
    const WorkloadSet from_ranks =
        WorkloadSet::fromRanks(pop, ranks);

    EXPECT_EQ(explicit_set.size(), range.size());
    EXPECT_TRUE(explicit_set == range);
    EXPECT_TRUE(range == from_ranks);
    EXPECT_FALSE(range.empty());
    EXPECT_TRUE(range.rankBased());
    EXPECT_TRUE(range.isPopulationRange());
    EXPECT_FALSE(explicit_set.rankBased());

    for (std::size_t i = 0; i < range.size(); ++i) {
        EXPECT_EQ(range[i], explicit_set[i]);
        std::string a, b;
        range.keyInto(i, a);
        b = explicit_set[i].key();
        EXPECT_EQ(a, b);
    }

    // Sub-range: element i maps to rank first + i.
    const WorkloadSet sub = WorkloadSet::populationRange(pop, 3, 9);
    ASSERT_EQ(sub.size(), 6u);
    for (std::size_t i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(sub.rankAt(i), 3 + i);
        EXPECT_EQ(sub[i], pop.unrank(3 + i));
    }
    EXPECT_FALSE(sub == range);
}

TEST(WorkloadSet, ForEachStreamsInOrder)
{
    const WorkloadPopulation pop(4, 2);
    const WorkloadSet range =
        WorkloadSet::populationRange(pop, 2, 8);
    std::size_t seen = 0;
    range.forEach([&](std::size_t i,
                      std::span<const std::uint32_t> benches) {
        EXPECT_EQ(i, seen);
        const Workload expect = pop.unrank(2 + i);
        ASSERT_EQ(benches.size(), expect.size());
        for (std::size_t k = 0; k < benches.size(); ++k)
            EXPECT_EQ(benches[k], expect[k]);
        ++seen;
    });
    EXPECT_EQ(seen, 6u);
}

TEST(Workload, KeyIntoMatchesKey)
{
    const Workload w(std::vector<std::uint32_t>{0, 3, 3, 17});
    EXPECT_EQ(w.key(), "b0+b3+b3+b17");
    std::string out = "prefix:";
    w.keyInto(out);
    EXPECT_EQ(out, "prefix:b0+b3+b3+b17");
}

// -------------------------------------------------------------------
// IpcMatrix
// -------------------------------------------------------------------

TEST(IpcMatrix, ViewsOverContiguousStorage)
{
    IpcMatrix m;
    EXPECT_TRUE(m.empty());
    m.reshape(2, 3, 2);
    EXPECT_EQ(m.policies(), 2u);
    EXPECT_EQ(m.workloadCount(), 3u);
    EXPECT_EQ(m.coresPerCell(), 2u);
    EXPECT_EQ(m.size(), 2u);

    const std::vector<double> cell = {1.5, 2.5};
    m.setCell(1, 2, {cell.data(), cell.size()});
    EXPECT_EQ(m[1][2][0], 1.5);
    EXPECT_EQ(m[1][2][1], 2.5);
    EXPECT_EQ(m.cell(1, 2)[1], 2.5);
    EXPECT_EQ(m[0][0][0], 0.0); // reshape zero-fills

    // CellView compares against vectors (the journal idiom).
    EXPECT_TRUE(m[1][2] == cell);

    IpcMatrix n;
    n.reshape(2, 3, 2);
    EXPECT_FALSE(m == n);
    n.setCell(1, 2, {cell.data(), cell.size()});
    EXPECT_TRUE(m == n);

    // Policy-major contiguous layout: cell (p, w) sits at
    // (p * workloads + w) * cores.
    EXPECT_EQ(m.data()[(1 * 3 + 2) * 2 + 1], 2.5);
}

// -------------------------------------------------------------------
// Streaming statistics primitives
// -------------------------------------------------------------------

TEST(QuantileSketch, ExactWhenPopulationFits)
{
    QuantileSketch s(64);
    for (std::uint64_t i = 0; i < 21; ++i)
        s.add(i, static_cast<double>(20 - i));
    EXPECT_EQ(s.sampleSize(), 21u);
    EXPECT_EQ(s.population(), 21u);
    EXPECT_EQ(s.quantile(0.0), 0.0);
    EXPECT_EQ(s.quantile(0.5), 10.0);
    EXPECT_EQ(s.quantile(1.0), 20.0);
    const auto v = s.sortedValues();
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(v[i], static_cast<double>(i));
}

TEST(QuantileSketch, MergeIsOrderIndependent)
{
    // The kept subset is a pure function of the key hashes, so any
    // insertion partition (and any merge order) yields the same
    // sketch.
    QuantileSketch whole(16);
    QuantileSketch left(16), right(16);
    for (std::uint64_t i = 0; i < 200; ++i) {
        const double v = std::sin(static_cast<double>(i));
        whole.add(i, v);
        (i % 2 == 0 ? left : right).add(i, v);
    }
    QuantileSketch lr = left;
    lr.merge(right);
    QuantileSketch rl = right;
    rl.merge(left);
    EXPECT_EQ(lr.sortedValues(), whole.sortedValues());
    EXPECT_EQ(rl.sortedValues(), whole.sortedValues());
    EXPECT_EQ(lr.population(), 200u);
}

TEST(Histogram, MergeMatchesCombinedAdds)
{
    Histogram a(-1.0, 1.0, 8), b(-1.0, 1.0, 8), all(-1.0, 1.0, 8);
    for (int i = 0; i < 50; ++i) {
        const double v = -1.2 + 0.05 * i; // includes clamped values
        (i % 3 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    ASSERT_EQ(a.count(), all.count());
    for (std::size_t i = 0; i < all.bins(); ++i)
        EXPECT_EQ(a.binCount(i), all.binCount(i)) << "bin " << i;

    Histogram other(-1.0, 1.0, 4);
    EXPECT_THROW(a.merge(other), FatalError);
}

TEST(StreamedWorkloadStrata, MatchesExactWhenSketchKeepsAll)
{
    // Tie-free d values; capacity >= N makes the sketch exact, so
    // the streamed boundaries reproduce the exact §VI-B2 strata.
    std::vector<double> d(120);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = std::sin(static_cast<double>(i) * 0.7) +
               1e-6 * static_cast<double>(i);

    WorkloadStrataConfig cfg;
    cfg.wt = 10;
    cfg.tsd = 0.05;

    QuantileSketch sketch(256);
    for (std::size_t i = 0; i < d.size(); ++i)
        sketch.add(i, d[i]);

    StreamedWorkloadStrata strata(sketch, d.size(), cfg);
    for (std::size_t i = 0; i < d.size(); ++i)
        strata.add(i, d[i]);
    EXPECT_EQ(strata.population(), d.size());

    const std::size_t exact = countWorkloadStrata(d, cfg);
    EXPECT_EQ(strata.strataCount(), exact);

    const auto sampler = strata.build();
    EXPECT_EQ(sampler->name(), "workload-strata");
    Rng rng(1);
    const Sample s = sampler->draw(30, rng);
    EXPECT_EQ(s.totalSize(), 30u);
    // Weights must cover the full population exactly once.
    double weight = 0.0;
    for (const auto &st : s.strata)
        weight += st.weight;
    EXPECT_LE(weight, static_cast<double>(d.size()) + 1e-9);
}

TEST(Sampler, DrawIntoMatchesDraw)
{
    std::vector<double> d(80);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = std::cos(static_cast<double>(i) * 1.3);
    WorkloadStrataConfig cfg;
    cfg.wt = 8;
    cfg.tsd = 0.05;
    const auto strat = makeWorkloadStratifiedSampler(d, cfg);
    const auto rnd = makeRandomSampler(d.size());

    for (const Sampler *s : {strat.get(), rnd.get()}) {
        Rng a(42), b(42);
        Sample reused;
        for (int i = 0; i < 5; ++i) {
            const Sample fresh = s->draw(12, a);
            s->drawInto(reused, 12, b);
            ASSERT_EQ(fresh.strata.size(), reused.strata.size());
            for (std::size_t h = 0; h < fresh.strata.size(); ++h) {
                EXPECT_EQ(fresh.strata[h].weight,
                          reused.strata[h].weight);
                EXPECT_EQ(fresh.strata[h].indices,
                          reused.strata[h].indices);
            }
        }
    }
}

TEST(Sample, FlattenIntoReusesBuffer)
{
    Sample s;
    s.strata.resize(2);
    s.strata[0].indices = {4, 1};
    s.strata[1].indices = {9};
    std::vector<std::size_t> out = {99, 99, 99, 99, 99};
    s.flattenInto(out);
    EXPECT_EQ(out, (std::vector<std::size_t>{4, 1, 9}));
    EXPECT_EQ(out, s.flatten());
}

// -------------------------------------------------------------------
// Population campaign runner
// -------------------------------------------------------------------

/** Per-test scratch directory; dir-less model store (no caches). */
class PopulationCampaign : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_population_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        unsetenv("WSEL_JOBS");
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /**
     * The standard run of these tests: 2 policies x the full
     * 4-core population over a 3-benchmark suite (15 workloads),
     * 8 cells per shard (4 rows -> 4 shards).
     */
    PopulationResult
    run(const std::string &out, std::size_t jobs = 1,
        bool resume = true)
    {
        const auto suite = testSuite();
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), 4);
        BadcoModelStore store(CoreConfig{}, kUops, 5);
        PopulationOptions opts;
        opts.jobs = jobs;
        opts.shardCells = 8;
        opts.resume = resume;
        return runBadcoPopulationCampaign(pop, kPolicies, kUops,
                                          store, suite, testPairs(),
                                          out, opts);
    }

    std::vector<std::string>
    shardBytes(const std::string &out, std::uint64_t shards)
    {
        std::vector<std::string> bytes;
        for (std::uint64_t s = 0; s < shards; ++s)
            bytes.push_back(
                test::readFile(persist::v3ShardPath(out, s)));
        return bytes;
    }

    std::string dir_;
};

TEST_F(PopulationCampaign, RoundTripMatchesInMemoryCampaign)
{
    const std::string out = path("v3");
    const PopulationResult r = run(out);
    EXPECT_EQ(r.cellsSimulated, 15u * kPolicies.size());
    EXPECT_EQ(r.cellsResumed, 0u);
    EXPECT_EQ(r.shardsWritten, 4u);
    EXPECT_TRUE(persist::isV3CampaignDir(out));

    // The in-memory campaign over the same population: identical
    // per-cell seeds (absolute ranks), so identical numbers.
    const auto suite = testSuite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 4);
    BadcoModelStore store(CoreConfig{}, kUops, 5);
    const Campaign mem = runBadcoCampaign(
        WorkloadSet::fullPopulation(pop), kPolicies, 4, kUops,
        store, suite, {});

    const Campaign loaded = Campaign::load(out);
    EXPECT_EQ(loaded.fingerprint, mem.fingerprint);
    EXPECT_EQ(loaded.simulator, "badco");
    EXPECT_EQ(loaded.cores, 4u);
    EXPECT_EQ(loaded.policies, mem.policies);
    EXPECT_EQ(loaded.benchmarks, mem.benchmarks);
    EXPECT_EQ(loaded.refIpc, mem.refIpc);
    EXPECT_TRUE(loaded.workloads == mem.workloads);
    EXPECT_TRUE(loaded.ipc == mem.ipc);
}

TEST_F(PopulationCampaign, StreamedCvMatchesTwoPass)
{
    const std::string out = path("v3");
    const PopulationResult r = run(out);
    const Campaign c = Campaign::load(out);

    for (const PopulationPairSummary &p : r.pairs) {
        const auto tx =
            c.perWorkloadThroughputs(p.spec.x, p.spec.metric);
        const auto ty =
            c.perWorkloadThroughputs(p.spec.y, p.spec.metric);
        ASSERT_EQ(tx.size(), 15u);
        std::vector<double> d(tx.size());
        for (std::size_t i = 0; i < tx.size(); ++i)
            d[i] = perWorkloadDifference(p.spec.metric, tx[i],
                                         ty[i]);
        double mean = 0.0;
        for (double v : d)
            mean += v;
        mean /= static_cast<double>(d.size());
        double var = 0.0;
        for (double v : d)
            var += (v - mean) * (v - mean);
        var /= static_cast<double>(d.size());
        const double sigma = std::sqrt(var);

        EXPECT_EQ(p.d.count(), d.size());
        EXPECT_NEAR(p.d.mean(), mean, 1e-12) << p.spec.label;
        EXPECT_NEAR(p.d.stddevPopulation(), sigma, 1e-12)
            << p.spec.label;
        if (mean != 0.0) {
            // cv is signed: sigma / mean (the sign carries the
            // pair orientation, as in DifferenceStats).
            EXPECT_NEAR(p.cv(), sigma / mean,
                        1e-9 * std::abs(p.cv()) + 1e-12)
                << p.spec.label;
        }
        // The sketch kept every d (capacity >> 30 cells).
        EXPECT_EQ(p.sketch.sampleSize(), d.size());
    }
}

TEST_F(PopulationCampaign, SerialAndParallelShardsBitwiseIdentical)
{
    const std::string serial = path("serial");
    const std::string parallel = path("parallel");
    const PopulationResult rs = run(serial, 1);
    const PopulationResult rp = run(parallel, 8);
    ASSERT_EQ(rs.manifest.shardCount(), rp.manifest.shardCount());
    const auto sb = shardBytes(serial, rs.manifest.shardCount());
    const auto pb = shardBytes(parallel, rp.manifest.shardCount());
    for (std::size_t s = 0; s < sb.size(); ++s) {
        EXPECT_FALSE(sb[s].empty());
        EXPECT_EQ(sb[s], pb[s]) << "shard " << s;
    }
    // Streamed statistics merged in shard order: identical too.
    for (std::size_t i = 0; i < rs.pairs.size(); ++i) {
        EXPECT_EQ(rs.pairs[i].d.mean(), rp.pairs[i].d.mean());
        EXPECT_EQ(rs.pairs[i].d.stddevPopulation(),
                  rp.pairs[i].d.stddevPopulation());
    }
}

TEST_F(PopulationCampaign, KillMidRunResumesToIdenticalArtifact)
{
    const std::string ref = path("ref");
    const PopulationResult rr = run(ref);
    const auto want = shardBytes(ref, rr.manifest.shardCount());

    const std::string out = path("v3");
    {
        // Kill the second shard write before its atomic rename:
        // shard 0 is committed, shard 1 is lost mid-write.
        test::FaultInjector fi("atomic.before-rename", 2);
        EXPECT_THROW(run(out), test::InjectedFault);
    }
    EXPECT_FALSE(persist::isV3CampaignDir(out)); // no manifest yet

    const PopulationResult r2 = run(out); // resume
    EXPECT_GE(r2.shardsResumed, 1u);
    EXPECT_LT(r2.cellsSimulated, 15u * kPolicies.size());
    EXPECT_EQ(r2.cellsSimulated + r2.cellsResumed,
              15u * kPolicies.size());
    const auto got = shardBytes(out, r2.manifest.shardCount());
    for (std::size_t s = 0; s < want.size(); ++s)
        EXPECT_EQ(want[s], got[s]) << "shard " << s;
    EXPECT_TRUE(persist::isV3CampaignDir(out));
}

TEST_F(PopulationCampaign, TruncatedShardQuarantinedAndRegenerated)
{
    const std::string out = path("v3");
    const PopulationResult r1 = run(out);
    const auto want = shardBytes(out, r1.manifest.shardCount());

    const std::string victim = persist::v3ShardPath(out, 1);
    test::truncateFile(victim, test::fileSize(victim) / 2);

    const PopulationResult r2 = run(out);
    EXPECT_EQ(r2.shardsResumed, r1.manifest.shardCount() - 1);
    EXPECT_EQ(r2.cellsSimulated,
              r2.manifest.rowsInShard(1) * kPolicies.size());
    EXPECT_TRUE(fs::exists(victim + ".corrupt"));
    const auto got = shardBytes(out, r2.manifest.shardCount());
    for (std::size_t s = 0; s < want.size(); ++s)
        EXPECT_EQ(want[s], got[s]) << "shard " << s;
}

TEST_F(PopulationCampaign, ResumingCompleteRunSimulatesNothing)
{
    const std::string out = path("v3");
    const PopulationResult r1 = run(out);
    const PopulationResult r2 = run(out);
    EXPECT_EQ(r2.cellsSimulated, 0u);
    EXPECT_EQ(r2.cellsResumed, 15u * kPolicies.size());
    EXPECT_EQ(r2.shardsWritten, 0u);
    EXPECT_EQ(r2.shardsResumed, r1.manifest.shardCount());
    // Statistics recomputed from the shards: identical.
    for (std::size_t i = 0; i < r1.pairs.size(); ++i) {
        EXPECT_EQ(r1.pairs[i].d.mean(), r2.pairs[i].d.mean());
        EXPECT_EQ(r1.pairs[i].d.stddevPopulation(),
                  r2.pairs[i].d.stddevPopulation());
    }
}

TEST_F(PopulationCampaign, RankRangeUsesAbsoluteRankSeeds)
{
    // A [5, 13) range campaign must produce the same cells as the
    // corresponding rows of the full-population campaign: per-cell
    // seeds are derived from absolute ranks, not window offsets.
    const std::string full = path("full");
    const PopulationResult rf = run(full);
    const Campaign cf = Campaign::load(full);

    const auto suite = testSuite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 4);
    BadcoModelStore store(CoreConfig{}, kUops, 5);
    PopulationOptions opts;
    opts.shardCells = 8;
    opts.firstRank = 5;
    opts.lastRank = 13;
    const std::string part = path("part");
    const PopulationResult rp = runBadcoPopulationCampaign(
        pop, kPolicies, kUops, store, suite, testPairs(), part,
        opts);
    EXPECT_EQ(rp.cellsSimulated, 8u * kPolicies.size());

    const Campaign cp = Campaign::load(part);
    ASSERT_EQ(cp.workloads.size(), 8u);
    for (std::size_t p = 0; p < kPolicies.size(); ++p) {
        for (std::size_t w = 0; w < 8; ++w) {
            EXPECT_TRUE(cp.ipc[p][w] == cf.ipc[p][5 + w])
                << "cell (" << p << "," << w << ")";
        }
    }
    (void)rf;
}

TEST_F(PopulationCampaign, LoadRejectsDamagedManifest)
{
    const std::string out = path("v3");
    run(out);
    const std::string manifest = persist::v3ManifestPath(out);
    test::flipBit(manifest, test::fileSize(manifest) / 2);
    EXPECT_THROW(Campaign::load(out), FatalError);
}

} // namespace

} // namespace wsel
