/**
 * @file
 * Tests for the markdown report generator.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/report/report.hh"
#include "stats/logging.hh"
#include "stats/rng.hh"

namespace wsel
{

namespace
{

ReportInput
sampleInput()
{
    ReportInput in;
    in.title = "unit test study";
    in.configs = {"LRU", "DIP"};
    Rng rng(5);
    ReportInput::MetricBlock mb;
    mb.metric = ThroughputMetric::IPCT;
    mb.t.resize(2);
    for (int w = 0; w < 300; ++w) {
        const double base = 1.0 + 0.2 * rng.nextGaussian();
        mb.t[0].push_back(std::max(base, 0.1));
        mb.t[1].push_back(std::max(base + 0.05, 0.1));
    }
    in.metrics.push_back(mb);
    return in;
}

} // namespace

TEST(Report, ContainsExpectedSections)
{
    std::ostringstream os;
    writeMarkdownReport(sampleInput(), os);
    const std::string md = os.str();
    EXPECT_NE(md.find("# unit test study"), std::string::npos);
    EXPECT_NE(md.find("## IPCT"), std::string::npos);
    EXPECT_NE(md.find("DIP>LRU"), std::string::npos);
    EXPECT_NE(md.find("95% CI"), std::string::npos);
    EXPECT_NE(md.find("eq.(8)"), std::string::npos);
    EXPECT_NE(md.find("regime"), std::string::npos);
}

TEST(Report, PairDirectionIsSecondOverFirst)
{
    // DIP is constructed strictly better, so DIP>LRU must show a
    // positive mean d(w) in the table row.
    std::ostringstream os;
    writeMarkdownReport(sampleInput(), os);
    const std::string md = os.str();
    const auto pos = md.find("DIP>LRU | ");
    ASSERT_NE(pos, std::string::npos);
    const std::string after =
        md.substr(pos + std::string("DIP>LRU | ").size(), 12);
    EXPECT_EQ(after.find('-'), std::string::npos)
        << "mean d should be positive, got: " << after;
}

TEST(Report, FileWrapperWrites)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "wsel_report_test.md";
    writeMarkdownReport(sampleInput(), path.string());
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_GT(ss.str().size(), 200u);
    std::filesystem::remove(path);
}

TEST(Report, RejectsMalformedInput)
{
    ReportInput empty;
    std::ostringstream os;
    EXPECT_THROW(writeMarkdownReport(empty, os), FatalError);

    ReportInput in = sampleInput();
    in.metrics[0].t[1].pop_back(); // ragged
    EXPECT_THROW(writeMarkdownReport(in, os), FatalError);

    ReportInput in2 = sampleInput();
    in2.metrics[0].t.pop_back(); // config count mismatch
    EXPECT_THROW(writeMarkdownReport(in2, os), FatalError);
}

TEST(Report, MultipleMetricsRenderAllBlocks)
{
    ReportInput in = sampleInput();
    ReportInput::MetricBlock hsu = in.metrics[0];
    hsu.metric = ThroughputMetric::HSU;
    in.metrics.push_back(hsu);
    std::ostringstream os;
    writeMarkdownReport(in, os);
    EXPECT_NE(os.str().find("## HSU"), std::string::npos);
}

} // namespace wsel
