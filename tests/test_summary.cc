/**
 * @file
 * Tests for streaming statistics and mean families.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/logging.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace wsel
{

TEST(RunningStats, MatchesHandComputation)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variancePopulation(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddevPopulation(), 2.0);
    EXPECT_NEAR(s.varianceSample(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.coefficientOfVariation(), 0.4);
}

TEST(RunningStats, EmptyIsNaN)
{
    RunningStats s;
    EXPECT_TRUE(std::isnan(s.mean()));
    EXPECT_TRUE(std::isnan(s.variancePopulation()));
    EXPECT_TRUE(std::isnan(s.coefficientOfVariation()));
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variancePopulation(), 0.0);
    EXPECT_TRUE(std::isnan(s.varianceSample()));
}

TEST(RunningStats, MergeEqualsConcatenation)
{
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(rng.nextGaussian() * 3.0 + 1.0);

    RunningStats whole;
    for (double x : xs)
        whole.add(x);

    for (std::size_t split : {0u, 1u, 500u, 999u, 1000u}) {
        RunningStats a, b;
        for (std::size_t i = 0; i < split; ++i)
            a.add(xs[i]);
        for (std::size_t i = split; i < xs.size(); ++i)
            b.add(xs[i]);
        a.merge(b);
        EXPECT_EQ(a.count(), whole.count());
        EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
        EXPECT_NEAR(a.variancePopulation(), whole.variancePopulation(),
                    1e-8);
        EXPECT_DOUBLE_EQ(a.min(), whole.min());
        EXPECT_DOUBLE_EQ(a.max(), whole.max());
    }
}

TEST(RunningStats, ZeroMeanCv)
{
    RunningStats s;
    s.add(-1.0);
    s.add(1.0);
    EXPECT_TRUE(std::isinf(s.coefficientOfVariation()));
}

TEST(Means, Arithmetic)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(arithmeticMean(xs), 2.5);
}

TEST(Means, Harmonic)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(harmonicMean(xs), 3.0 / (1.0 + 0.5 + 0.25));
}

TEST(Means, Geometric)
{
    const std::vector<double> xs = {1.0, 4.0, 16.0};
    EXPECT_NEAR(geometricMean(xs), 4.0, 1e-12);
}

TEST(Means, MeanInequality)
{
    // H-mean <= G-mean <= A-mean for positive values.
    Rng rng(7);
    for (int t = 0; t < 50; ++t) {
        std::vector<double> xs;
        for (int i = 0; i < 20; ++i)
            xs.push_back(0.1 + rng.nextDouble() * 5.0);
        const double h = harmonicMean(xs);
        const double g = geometricMean(xs);
        const double a = arithmeticMean(xs);
        EXPECT_LE(h, g + 1e-12);
        EXPECT_LE(g, a + 1e-12);
    }
}

TEST(Means, HarmonicRejectsNonPositive)
{
    const std::vector<double> xs = {1.0, 0.0};
    EXPECT_THROW(harmonicMean(xs), FatalError);
}

TEST(Means, WeightedArithmetic)
{
    const std::vector<double> xs = {1.0, 3.0};
    const std::vector<double> ws = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(weightedArithmeticMean(xs, ws), 2.5);
}

TEST(Means, WeightedHarmonic)
{
    const std::vector<double> xs = {2.0, 4.0};
    const std::vector<double> ws = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(weightedHarmonicMean(xs, ws), harmonicMean(xs));
}

TEST(Means, WeightedReducesToUnweighted)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 16; ++i)
        xs.push_back(0.5 + rng.nextDouble());
    const std::vector<double> ws(xs.size(), 2.7);
    EXPECT_NEAR(weightedArithmeticMean(xs, ws), arithmeticMean(xs),
                1e-12);
    EXPECT_NEAR(weightedHarmonicMean(xs, ws), harmonicMean(xs),
                1e-12);
}

TEST(Means, WeightedSizeMismatchFatal)
{
    const std::vector<double> xs = {1.0, 2.0};
    const std::vector<double> ws = {1.0};
    EXPECT_THROW(weightedArithmeticMean(xs, ws), FatalError);
}

TEST(Quantile, KnownValues)
{
    std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, OutOfRangeFatal)
{
    std::vector<double> xs = {1.0};
    EXPECT_THROW(quantile(xs, 1.5), FatalError);
}

} // namespace wsel
