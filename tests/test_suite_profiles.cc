/**
 * @file
 * Parameterized validation of every benchmark in the 22-entry
 * SPEC-like suite: each profile must generate a well-formed,
 * deterministic stream whose realized mixes track its parameters.
 */

#include <gtest/gtest.h>

#include "stats/logging.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace wsel
{

namespace
{

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &p : spec2006Suite())
        names.push_back(p.name);
    return names;
}

} // namespace

class SuiteProfileTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const BenchmarkProfile &
    profile() const
    {
        return findProfile(GetParam());
    }
};

TEST_P(SuiteProfileTest, StreamIsWellFormed)
{
    const BenchmarkProfile &p = profile();
    TraceGenerator g(p);
    const int n = 60000;
    std::uint64_t mem = 0, branches = 0;
    for (int i = 0; i < n; ++i) {
        const MicroOp &u = g.next();
        ASSERT_LE(u.dep1, 64);
        ASSERT_LE(u.dep2, 64);
        ASSERT_GE(u.pc, TraceGenerator::codeBase);
        if (u.isMemory()) {
            ++mem;
            ASSERT_GE(u.addr, TraceGenerator::l1Base);
        }
        branches += u.kind == OpKind::Branch;
    }
    // Realized rates track the profile loosely (loop-dwell
    // weighting allows drift; see DESIGN.md).
    const double mem_frac = static_cast<double>(mem) / n;
    EXPECT_NEAR(mem_frac, p.loadFrac + p.storeFrac, 0.10);
    EXPECT_NEAR(static_cast<double>(branches) / n, p.branchFrac,
                0.08);
}

TEST_P(SuiteProfileTest, ResetReplaysBitIdentically)
{
    const BenchmarkProfile &p = profile();
    TraceGenerator g(p);
    std::vector<std::uint64_t> sig;
    for (int i = 0; i < 4000; ++i) {
        const MicroOp &u = g.next();
        sig.push_back(u.addr ^ (u.pc << 1) ^ u.dep1);
    }
    g.reset();
    for (int i = 0; i < 4000; ++i) {
        const MicroOp &u = g.next();
        ASSERT_EQ(u.addr ^ (u.pc << 1) ^ u.dep1, sig[i])
            << "at µop " << i;
    }
}

TEST_P(SuiteProfileTest, MemoryRegionsRespectProfileSizes)
{
    const BenchmarkProfile &p = profile();
    TraceGenerator g(p);
    for (int i = 0; i < 60000; ++i) {
        const MicroOp &u = g.next();
        if (!u.isMemory())
            continue;
        if (u.addr >= TraceGenerator::randomBase) {
            ASSERT_LT(u.addr - TraceGenerator::randomBase,
                      p.footprintBytes);
        } else if (u.addr >= TraceGenerator::streamBase) {
            ASSERT_LT(u.addr - TraceGenerator::streamBase,
                      p.footprintBytes);
        } else if (u.addr >= TraceGenerator::chaseBase) {
            ASSERT_LT(u.addr - TraceGenerator::chaseBase,
                      p.chaseBytes);
        } else if (u.addr >= TraceGenerator::hotBase) {
            ASSERT_LT(u.addr - TraceGenerator::hotBase, p.hotBytes);
        } else {
            ASSERT_LT(u.addr - TraceGenerator::l1Base, p.l1Bytes);
        }
    }
}

TEST_P(SuiteProfileTest, CodeFootprintMatchesStaticBlocks)
{
    const BenchmarkProfile &p = profile();
    TraceGenerator g(p);
    std::uint64_t max_pc = 0;
    for (int i = 0; i < 60000; ++i) {
        const MicroOp &u = g.next();
        max_pc = std::max(max_pc, u.pc);
    }
    // 4 bytes per µop slot; block length is bounded by
    // 1.5 / branchFrac µops.
    const double mean_len = 1.0 / std::max(p.branchFrac, 0.02);
    const std::uint64_t bound =
        TraceGenerator::codeBase +
        static_cast<std::uint64_t>(4.0 * p.staticBlocks *
                                   (1.5 * mean_len + 2.0));
    EXPECT_LT(max_pc, bound);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteProfileTest,
    ::testing::ValuesIn(suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace wsel
