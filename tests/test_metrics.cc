/**
 * @file
 * Tests for the throughput-metric framework (paper eqs. 1, 2, 9 and
 * the d(w) definitions).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/metrics/throughput.hh"
#include "stats/logging.hh"

namespace wsel
{

TEST(MetricNames, RoundTrip)
{
    for (ThroughputMetric m :
         {ThroughputMetric::IPCT, ThroughputMetric::WSU,
          ThroughputMetric::HSU, ThroughputMetric::GSU}) {
        EXPECT_EQ(parseMetric(toString(m)), m);
    }
    EXPECT_THROW(parseMetric("STP"), FatalError);
    ASSERT_EQ(paperMetrics().size(), 3u);
}

TEST(PerWorkload, IpctIsPlainMeanOfIpcs)
{
    const std::vector<double> ipcs = {1.0, 2.0, 3.0, 2.0};
    const std::vector<double> refs = {9.0, 9.0, 9.0, 9.0};
    // IPCT ignores references (IPCref = 1).
    EXPECT_DOUBLE_EQ(
        perWorkloadThroughput(ThroughputMetric::IPCT, ipcs, refs),
        2.0);
}

TEST(PerWorkload, WsuIsMeanOfSpeedups)
{
    const std::vector<double> ipcs = {1.0, 1.0};
    const std::vector<double> refs = {2.0, 4.0};
    // Speedups 0.5 and 0.25; A-mean = 0.375.
    EXPECT_DOUBLE_EQ(
        perWorkloadThroughput(ThroughputMetric::WSU, ipcs, refs),
        0.375);
}

TEST(PerWorkload, HsuIsHarmonicMeanOfSpeedups)
{
    const std::vector<double> ipcs = {1.0, 1.0};
    const std::vector<double> refs = {2.0, 4.0};
    // Speedups 0.5 and 0.25; H-mean = 2/(2+4) = 1/3.
    EXPECT_NEAR(
        perWorkloadThroughput(ThroughputMetric::HSU, ipcs, refs),
        1.0 / 3.0, 1e-12);
}

TEST(PerWorkload, GsuIsGeometricMeanOfSpeedups)
{
    const std::vector<double> ipcs = {1.0, 1.0};
    const std::vector<double> refs = {2.0, 8.0};
    // Speedups 0.5, 0.125; G-mean = 0.25.
    EXPECT_NEAR(
        perWorkloadThroughput(ThroughputMetric::GSU, ipcs, refs),
        0.25, 1e-12);
}

TEST(PerWorkload, MetricOrderingOnSkewedWorkloads)
{
    // H-mean <= G-mean <= A-mean of the same speedups.
    const std::vector<double> ipcs = {0.4, 1.8, 0.9};
    const std::vector<double> refs = {1.0, 2.0, 1.5};
    const double w =
        perWorkloadThroughput(ThroughputMetric::WSU, ipcs, refs);
    const double g =
        perWorkloadThroughput(ThroughputMetric::GSU, ipcs, refs);
    const double h =
        perWorkloadThroughput(ThroughputMetric::HSU, ipcs, refs);
    EXPECT_LE(h, g + 1e-12);
    EXPECT_LE(g, w + 1e-12);
}

TEST(PerWorkload, RejectsBadInputs)
{
    const std::vector<double> ipcs = {1.0, -1.0};
    const std::vector<double> refs = {1.0, 1.0};
    EXPECT_THROW(
        perWorkloadThroughput(ThroughputMetric::WSU, ipcs, refs),
        FatalError);
    const std::vector<double> short_refs = {1.0};
    const std::vector<double> ok = {1.0, 1.0};
    EXPECT_THROW(perWorkloadThroughput(ThroughputMetric::WSU, ok,
                                       short_refs),
                 FatalError);
    // IPCT does not need references.
    EXPECT_NO_THROW(perWorkloadThroughput(ThroughputMetric::IPCT, ok,
                                          short_refs));
}

TEST(SampleThroughput, XMeanPerMetric)
{
    const std::vector<double> t = {0.5, 1.0, 2.0};
    EXPECT_NEAR(sampleThroughput(ThroughputMetric::IPCT, t),
                3.5 / 3.0, 1e-12);
    EXPECT_NEAR(sampleThroughput(ThroughputMetric::WSU, t),
                3.5 / 3.0, 1e-12);
    EXPECT_NEAR(sampleThroughput(ThroughputMetric::HSU, t),
                3.0 / (2.0 + 1.0 + 0.5), 1e-12);
    EXPECT_NEAR(sampleThroughput(ThroughputMetric::GSU, t), 1.0,
                1e-12);
}

TEST(StratifiedThroughput, WeightedMeansMatchHandCalc)
{
    // Two strata with means 1.0 and 3.0, weights 0.75/0.25 (eq. 9).
    const std::vector<double> means = {1.0, 3.0};
    const std::vector<double> weights = {0.75, 0.25};
    EXPECT_DOUBLE_EQ(stratifiedThroughput(ThroughputMetric::IPCT,
                                          means, weights),
                     1.5);
    EXPECT_DOUBLE_EQ(stratifiedThroughput(ThroughputMetric::HSU,
                                          means, weights),
                     1.0 / (0.75 / 1.0 + 0.25 / 3.0));
}

TEST(StratifiedThroughput, UniformWeightsReduceToPlainMean)
{
    const std::vector<double> means = {0.8, 1.3, 2.1};
    const std::vector<double> weights = {1.0, 1.0, 1.0};
    for (ThroughputMetric m :
         {ThroughputMetric::IPCT, ThroughputMetric::HSU,
          ThroughputMetric::GSU}) {
        EXPECT_NEAR(stratifiedThroughput(m, means, weights),
                    sampleThroughput(m, means), 1e-12);
    }
}

TEST(Difference, PerMetricForms)
{
    // eq. (4): plain difference.
    EXPECT_DOUBLE_EQ(
        perWorkloadDifference(ThroughputMetric::IPCT, 1.0, 1.5),
        0.5);
    EXPECT_DOUBLE_EQ(
        perWorkloadDifference(ThroughputMetric::WSU, 2.0, 1.0),
        -1.0);
    // eq. (7): reciprocal difference.
    EXPECT_DOUBLE_EQ(
        perWorkloadDifference(ThroughputMetric::HSU, 2.0, 4.0),
        0.5 - 0.25);
    // footnote 3: log difference.
    EXPECT_NEAR(
        perWorkloadDifference(ThroughputMetric::GSU, 1.0,
                              std::exp(1.0)),
        1.0, 1e-12);
}

TEST(Difference, SignConventionYBetterIsPositive)
{
    for (ThroughputMetric m :
         {ThroughputMetric::IPCT, ThroughputMetric::WSU,
          ThroughputMetric::HSU, ThroughputMetric::GSU}) {
        EXPECT_GT(perWorkloadDifference(m, 1.0, 1.2), 0.0);
        EXPECT_LT(perWorkloadDifference(m, 1.2, 1.0), 0.0);
        EXPECT_NEAR(perWorkloadDifference(m, 1.1, 1.1), 0.0, 1e-12);
    }
}

} // namespace wsel
