/**
 * @file
 * Tests for the adaptive sampling engine (docs/SAMPLING.md): the
 * sequential stopping controller and its deterministic schedule,
 * ranked-set sampling and repeated subsampling, the adaptive
 * artifact format, the over-sized-draw clamps in the sampling
 * layer, and the sequential campaign runner's determinism
 * contract: serial vs parallel bitwise identity and kill-point
 * resume (mid-batch and at a batch boundary) replaying to the
 * identical artifact and stopping decision.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive/adaptive.hh"
#include "core/adaptive/controller.hh"
#include "core/confidence/confidence.hh"
#include "core/sampling/sampling.hh"
#include "fault_injection.hh"
#include "sim/adaptive.hh"
#include "sim/campaign.hh"
#include "stats/persist_adaptive.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

constexpr std::uint64_t kUops = 3000;

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    s.push_back(test::lightProfile(13));
    return s;
}

RunningStats
noisyBatch(double mean, double spread, std::size_t n,
           std::uint64_t seed)
{
    Rng rng(seed);
    RunningStats s;
    for (std::size_t i = 0; i < n; ++i)
        s.add(mean + spread * (rng.nextDouble() - 0.5));
    return s;
}

/**
 * A batch with no winner: antithetic pairs (v, -v) keep the sample
 * mean at zero, so eq. 5 confidence stays pinned near 0.5 no
 * matter how many workloads accumulate.
 */
RunningStats
symmetricBatch(double spread, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    RunningStats s;
    for (std::size_t i = 0; i < n / 2; ++i) {
        const double v = spread * (rng.nextDouble() + 0.1);
        s.add(v);
        s.add(-v);
    }
    return s;
}

// -------------------------------------------------------------------
// SequentialController
// -------------------------------------------------------------------

TEST(AdaptiveController, StopsAtTargetAfterMinWorkloads)
{
    SequentialConfig cfg;
    cfg.targetConfidence = 0.977;
    cfg.minWorkloads = 8;
    SequentialController ctl(cfg, 1000);

    // A consistent positive d: confidence rises with n and must
    // not stop before minWorkloads even if already confident.
    const auto d1 = ctl.observeBatch(noisyBatch(1.0, 0.1, 4, 1));
    EXPECT_FALSE(d1.stop());
    EXPECT_EQ(d1.workloads, 4u);

    const auto d2 = ctl.observeBatch(noisyBatch(1.0, 0.1, 4, 2));
    EXPECT_TRUE(d2.stop());
    EXPECT_EQ(d2.reason, StopReason::TargetReached);
    EXPECT_TRUE(d2.yWins);
    EXPECT_GE(d2.confidence, 0.977);
    EXPECT_EQ(d2.workloads, 8u);
}

TEST(AdaptiveController, DetectsXLeading)
{
    SequentialConfig cfg;
    cfg.minWorkloads = 4;
    SequentialController ctl(cfg, 1000);
    const auto d = ctl.observeBatch(noisyBatch(-1.0, 0.1, 8, 3));
    EXPECT_TRUE(d.stop());
    EXPECT_FALSE(d.yWins);
    EXPECT_GE(d.confidence, 0.977);
}

TEST(AdaptiveController, BudgetExhaustedOnNoisyData)
{
    SequentialConfig cfg;
    cfg.minWorkloads = 2;
    cfg.maxWorkloads = 12;
    SequentialController ctl(cfg, 1000);
    // Mean ~0: confidence hugs 0.5 and the budget runs out.
    for (int i = 0; i < 2; ++i)
        ctl.observeBatch(symmetricBatch(2.0, 6, 10 + i));
    EXPECT_TRUE(ctl.decision().stop());
    EXPECT_EQ(ctl.decision().reason, StopReason::BudgetExhausted);
    EXPECT_EQ(ctl.decision().workloads, 12u);
    EXPECT_EQ(ctl.budgetWorkloads(), 12u);
}

TEST(AdaptiveController, PopulationBoundsTheBudget)
{
    SequentialConfig cfg;
    cfg.minWorkloads = 2;
    SequentialController ctl(cfg, 10);
    EXPECT_EQ(ctl.budgetWorkloads(), 10u);
    ctl.observeBatch(symmetricBatch(2.0, 10, 42));
    EXPECT_EQ(ctl.decision().reason,
              StopReason::PopulationExhausted);
}

TEST(AdaptiveController, ReplayAfterStopKeepsFirstDecision)
{
    SequentialConfig cfg;
    cfg.minWorkloads = 4;
    SequentialController ctl(cfg, 1000);
    ctl.observeBatch(noisyBatch(1.0, 0.1, 8, 5));
    ASSERT_TRUE(ctl.decision().stop());
    const SequentialDecision before = ctl.decision();
    // Feeding more batches (replay of a longer artifact) must not
    // change a committed decision.
    ctl.observeBatch(noisyBatch(-5.0, 0.1, 8, 6));
    EXPECT_EQ(ctl.decision().reason, before.reason);
    EXPECT_EQ(ctl.decision().workloads, before.workloads);
    EXPECT_EQ(ctl.decision().confidence, before.confidence);
    EXPECT_EQ(ctl.batches(), 2u);
}

TEST(AdaptiveController, WallClockNeverOverridesAStop)
{
    SequentialConfig cfg;
    cfg.minWorkloads = 4;
    SequentialController ctl(cfg, 1000);
    ctl.observeBatch(noisyBatch(1.0, 0.1, 8, 7));
    ASSERT_EQ(ctl.decision().reason, StopReason::TargetReached);
    ctl.observeWallClockExpired();
    EXPECT_EQ(ctl.decision().reason, StopReason::TargetReached);

    SequentialController running(cfg, 1000);
    running.observeBatch(symmetricBatch(2.0, 8, 8));
    ASSERT_FALSE(running.decision().stop());
    running.observeWallClockExpired();
    EXPECT_EQ(running.decision().reason, StopReason::WallClock);
}

TEST(AdaptiveController, RejectsDegenerateConfigs)
{
    EXPECT_THROW(SequentialController({0.4, 32, 0}, 10),
                 FatalError);
    EXPECT_THROW(SequentialController({1.0, 32, 0}, 10),
                 FatalError);
    EXPECT_THROW(SequentialController({0.9, 1, 0}, 10),
                 FatalError);
    EXPECT_THROW(SequentialController({0.9, 32, 0}, 0),
                 FatalError);
}

TEST(AdaptiveController, StopReasonNames)
{
    EXPECT_STREQ(toString(StopReason::None), "none");
    EXPECT_STREQ(toString(StopReason::TargetReached),
                 "target-reached");
    EXPECT_STREQ(toString(StopReason::BudgetExhausted),
                 "budget-exhausted");
    EXPECT_STREQ(toString(StopReason::PopulationExhausted),
                 "population-exhausted");
    EXPECT_STREQ(toString(StopReason::WallClock), "wall-clock");
}

TEST(AdaptiveSchedule, DeterministicUniformInRange)
{
    const std::uint64_t n = 4.3e6;
    RunningStats ranks;
    for (std::uint64_t i = 0; i < 4000; ++i) {
        const std::uint64_t r = adaptiveScheduleRank(0xabcd, 1, i, n);
        ASSERT_LT(r, n);
        EXPECT_EQ(r, adaptiveScheduleRank(0xabcd, 1, i, n));
        ranks.add(static_cast<double>(r));
    }
    // Uniform over [0, n): the mean of 4000 draws lies within a
    // few standard errors of n/2.
    const double se = static_cast<double>(n) /
                      std::sqrt(12.0 * 4000.0);
    EXPECT_NEAR(ranks.mean(), n / 2.0, 6.0 * se);
    // Different seed or fingerprint: a different schedule.
    EXPECT_NE(adaptiveScheduleRank(0xabcd, 1, 0, n),
              adaptiveScheduleRank(0xabcd, 2, 0, n));
    EXPECT_NE(adaptiveScheduleRank(0xabcd, 1, 0, n),
              adaptiveScheduleRank(0xabce, 1, 0, n));
}

TEST(AdaptiveSchedule, CandidateSlotsAreDistinctStreams)
{
    const std::uint64_t n = 1000;
    // Slot k of the candidate stream must differ from the plain
    // schedule and from other slots (they are independent hashes).
    int collisions = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t plain =
            adaptiveScheduleRank(7, 1, i, n);
        const std::uint64_t c0 =
            adaptiveCandidateRank(7, 1, i, 0, n);
        const std::uint64_t c1 =
            adaptiveCandidateRank(7, 1, i, 1, n);
        if (plain == c0 || c0 == c1)
            ++collisions;
    }
    EXPECT_LT(collisions, 5);
}

// -------------------------------------------------------------------
// Ranked-set sampling + repeated subsampling
// -------------------------------------------------------------------

TEST(AdaptiveRankedSet, DrawsAreDeterministicAndInRange)
{
    std::vector<double> d(100);
    Rng init(3);
    for (double &v : d)
        v = init.nextDouble();
    const auto sampler = makeRankedSetSampler(d, {4});
    EXPECT_EQ(sampler->name(), "ranked-set");

    Rng r1(9), r2(9);
    const Sample a = sampler->draw(20, r1);
    const Sample b = sampler->draw(20, r2);
    ASSERT_EQ(a.strata.size(), 1u);
    EXPECT_EQ(a.strata[0].indices, b.strata[0].indices);
    EXPECT_EQ(a.strata[0].indices.size(), 20u);
    for (std::size_t i : a.strata[0].indices)
        EXPECT_LT(i, d.size());
}

TEST(AdaptiveRankedSet, MeanStaysUnbiasedWithLowerVariance)
{
    // Population with a strong trend: ranked sets should estimate
    // the same mean as random sampling with a smaller spread of
    // sample means.
    std::vector<double> d(400);
    for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<double>(i);
    const double pop_mean = (d.size() - 1) / 2.0;

    const auto rss = makeRankedSetSampler(d, {5});
    const auto rnd = makeRandomSampler(d.size());
    RunningStats rss_means, rnd_means;
    Rng rng(17);
    Sample s;
    for (int rep = 0; rep < 300; ++rep) {
        rss->drawInto(s, 10, rng);
        double sum = 0;
        for (std::size_t i : s.strata[0].indices)
            sum += d[i];
        rss_means.add(sum / 10.0);
        rnd->drawInto(s, 10, rng);
        sum = 0;
        for (std::size_t i : s.strata[0].indices)
            sum += d[i];
        rnd_means.add(sum / 10.0);
    }
    EXPECT_NEAR(rss_means.mean(), pop_mean, 8.0);
    EXPECT_NEAR(rnd_means.mean(), pop_mean, 8.0);
    EXPECT_LT(rss_means.variancePopulation(),
              rnd_means.variancePopulation());
}

TEST(AdaptiveRankedSet, ApproxRankerComposesPerBenchmarkIpcs)
{
    // 3 benchmarks; Y uniformly faster: every score positive and
    // O(K) composition matches a hand-computed IPCT difference.
    ApproxRanker ranker(ThroughputMetric::IPCT, {1.0, 2.0, 3.0},
                        {1.5, 2.5, 3.5}, {1.0, 1.0, 1.0});
    const std::vector<std::uint32_t> w = {0, 2};
    // IPCT: sum of IPCs. X: 1+3=4, Y: 1.5+3.5=5, d = (5-4)/ref...
    const double got = ranker.score(w);
    EXPECT_GT(got, 0.0);
    const std::vector<std::uint32_t> all = {0, 1, 2};
    EXPECT_GT(ranker.score(all), 0.0);
    EXPECT_EQ(ranker.numBenchmarks(), 3u);
}

TEST(AdaptiveRankedSet, RepeatedSubsampleMeasuresDispersion)
{
    std::vector<double> d(64);
    Rng init(5);
    for (double &v : d)
        v = 1.0 + 0.2 * (init.nextDouble() - 0.5);
    Rng r1(11), r2(11);
    const SubsampleEstimate a = repeatedSubsample(d, 16, 200, r1);
    const SubsampleEstimate b = repeatedSubsample(d, 16, 200, r2);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.meanD, b.meanD);
    EXPECT_EQ(a.subsampleSize, 16u);
    EXPECT_EQ(a.redraws, 200u);
    // All-positive d: every subsample mean is positive.
    EXPECT_EQ(a.confidence, 1.0);
    EXPECT_NEAR(a.meanD, 1.0, 0.1);
    EXPECT_GE(a.stddevOfMeans, 0.0);
}

TEST(AdaptiveRankedSet, SubsampleLargerThanPopulationClamps)
{
    const std::vector<double> d = {1.0, 2.0, 3.0};
    Rng rng(1);
    const SubsampleEstimate e = repeatedSubsample(d, 100, 50, rng);
    EXPECT_EQ(e.subsampleSize, 3u);
    EXPECT_EQ(e.confidence, 1.0);
    EXPECT_NEAR(e.meanD, 2.0, 1e-12);
    EXPECT_NEAR(e.stddevOfMeans, 0.0, 1e-12);
}

// -------------------------------------------------------------------
// Over-sized draw clamps (sampling layer)
// -------------------------------------------------------------------

TEST(AdaptiveClamp, EmpiricalConfidenceClampsOversizedSamples)
{
    // 6-workload population, sample size 50: without the clamp
    // this would be a fatal (stratified) or degenerate draw.
    const std::vector<double> tx = {1.0, 1.1, 0.9, 1.0, 1.05, 0.95};
    const std::vector<double> ty = {1.2, 1.3, 1.1, 1.2, 1.25, 1.15};
    Rng rng(21);
    const auto sampler = makeRandomSampler(tx.size());
    const double c = empiricalConfidence(
        *sampler, 50, 64, ThroughputMetric::IPCT, tx, ty, rng);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    // Y dominates on every workload: the clamped full-population
    // draw must always see Y ahead.
    EXPECT_EQ(c, 1.0);
}

TEST(AdaptiveClamp, StratifiedDrawClampsToPopulation)
{
    // Two clearly separated d clusters of 3 workloads each; ask
    // for 60 of 6.  Without the clamp the proportional allocation
    // would try to draw 30 from each 3-element stratum and abort.
    const std::vector<double> d = {0.10, 0.12, 0.11, 5.0, 5.2, 5.1};
    WorkloadStrataConfig cfg;
    cfg.wt = 3;
    cfg.tsd = 0.5;
    const auto sampler = makeWorkloadStratifiedSampler(d, cfg);
    Rng rng(31);
    const Sample s = sampler->draw(60, rng);
    std::size_t total = 0;
    for (const auto &st : s.strata)
        total += st.indices.size();
    EXPECT_EQ(total, 6u);
}

// -------------------------------------------------------------------
// Adaptive artifact persistence
// -------------------------------------------------------------------

class AdaptivePersist : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_adaptive_persist_") +
                 info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(AdaptivePersist, BatchRoundTrips)
{
    persist::AdaptiveBatch b;
    b.fingerprint = 0xfeed;
    b.index = 3;
    b.firstPosition = 12;
    b.ranks = {5, 9, 2, 2};
    b.d = {0.5, -0.25, 0.0, 1.5};
    persist::writeAdaptiveBatch(dir_, b);

    const persist::AdaptiveBatch got =
        persist::readAdaptiveBatch(dir_, 0xfeed, 3);
    EXPECT_EQ(got.firstPosition, 12u);
    EXPECT_EQ(got.ranks, b.ranks);
    EXPECT_EQ(got.d, b.d);
}

TEST_F(AdaptivePersist, BatchRejectsDamageAndMismatch)
{
    persist::AdaptiveBatch b;
    b.fingerprint = 0xfeed;
    b.index = 0;
    b.ranks = {1, 2, 3};
    b.d = {0.1, 0.2, 0.3};
    persist::writeAdaptiveBatch(dir_, b);
    const std::string path = persist::adaptiveBatchPath(dir_, 0);

    EXPECT_THROW(persist::readAdaptiveBatch(dir_, 0xbeef, 0),
                 persist::CacheInvalid);
    EXPECT_THROW(persist::readAdaptiveBatch(dir_, 0xfeed, 1),
                 persist::CacheInvalid);

    ASSERT_GT(test::fileSize(path), 40u);
    test::flipBit(path, 40);
    EXPECT_THROW(persist::readAdaptiveBatch(dir_, 0xfeed, 0),
                 persist::CacheInvalid);
    test::flipBit(path, 40); // restore
    test::truncateFile(path, test::fileSize(path) - 3);
    EXPECT_THROW(persist::readAdaptiveBatch(dir_, 0xfeed, 0),
                 persist::CacheInvalid);
}

TEST_F(AdaptivePersist, DecisionRoundTrips)
{
    persist::AdaptiveDecisionRecord d;
    d.fingerprint = 0xabc;
    d.reason =
        static_cast<std::uint8_t>(StopReason::TargetReached);
    d.yWins = 1;
    d.method = "ranked-set";
    d.batches = 4;
    d.workloads = 256;
    d.confidence = 0.981;
    d.cv = 2.5;
    d.target = 0.977;
    d.trajectory = {0.6, 0.8, 0.95, 0.981};
    EXPECT_FALSE(persist::hasAdaptiveDecision(dir_));
    persist::writeAdaptiveDecision(dir_, d);
    EXPECT_TRUE(persist::hasAdaptiveDecision(dir_));

    const persist::AdaptiveDecisionRecord got =
        persist::readAdaptiveDecision(dir_);
    EXPECT_EQ(got.fingerprint, 0xabcu);
    EXPECT_EQ(got.method, "ranked-set");
    EXPECT_EQ(got.workloads, 256u);
    EXPECT_EQ(got.trajectory, d.trajectory);

    ASSERT_GT(test::fileSize(persist::adaptiveDecisionPath(dir_)),
              40u);
    test::flipBit(persist::adaptiveDecisionPath(dir_), 40);
    EXPECT_THROW(persist::readAdaptiveDecision(dir_),
                 persist::CacheInvalid);
}

// -------------------------------------------------------------------
// Sequential campaign runner
// -------------------------------------------------------------------

/** Per-test scratch directory; dir-less model store (no caches). */
class AdaptiveCampaign : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_adaptive_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        unsetenv("WSEL_JOBS");
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string
    path(const std::string &name) const
    {
        return dir_ + "/" + name;
    }

    /**
     * The standard run: LRU vs DIP over the full 4-core population
     * of a 3-benchmark suite (15 workloads), batches of 4, a
     * target no real data reaches (so the population bounds the
     * run at 15 workloads = 4 batches) unless overridden.
     */
    AdaptiveResult
    run(const std::string &out, const AdaptiveOptions &opts)
    {
        const auto suite = testSuite();
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), 4);
        BadcoModelStore store(CoreConfig{}, kUops, 5);
        return runAdaptiveCampaign(pop, PolicyKind::DIP,
                                   PolicyKind::LRU,
                                   ThroughputMetric::IPCT, kUops,
                                   store, suite, out, opts);
    }

    AdaptiveOptions
    baseOptions() const
    {
        AdaptiveOptions o;
        o.jobs = 1;
        o.batchWorkloads = 4;
        o.stop.targetConfidence = 0.999999;
        o.stop.minWorkloads = 4;
        o.subsampleRedraws = 64;
        return o;
    }

    /** Every artifact byte: batch files in order + decision. */
    std::string
    artifactBytes(const std::string &out, std::uint64_t batches)
    {
        std::string all;
        for (std::uint64_t b = 0; b < batches; ++b)
            all += test::readFile(
                persist::adaptiveBatchPath(out, b));
        all += "|";
        all += test::readFile(persist::adaptiveDecisionPath(out));
        return all;
    }

    std::string dir_;
};

TEST_F(AdaptiveCampaign, RunsToPopulationExhaustion)
{
    const AdaptiveResult r = run(path("a"), baseOptions());
    EXPECT_EQ(r.verdict.reason, StopReason::PopulationExhausted);
    EXPECT_EQ(r.verdict.workloads, 15u);
    EXPECT_EQ(r.decision.batches, 4u);
    EXPECT_EQ(r.cellsSimulated, 30u);
    EXPECT_EQ(r.cellsResumed, 0u);
    EXPECT_EQ(r.budgetWorkloads, 15u);
    EXPECT_EQ(r.cellsSaved(), 0u);
    EXPECT_EQ(r.decision.trajectory.size(), 4u);
    EXPECT_TRUE(persist::hasAdaptiveDecision(path("a")));
    // d statistics are real: the batch files replay to them.
    EXPECT_EQ(r.d.count(), 15u);
    // The subsample cross-check ran over all 15 d values.
    EXPECT_EQ(r.subsample.redraws, 64u);
    EXPECT_EQ(r.subsample.subsampleSize, 7u);
}

TEST_F(AdaptiveCampaign, BudgetStopSavesCells)
{
    AdaptiveOptions o = baseOptions();
    o.stop.maxWorkloads = 8;
    const AdaptiveResult r = run(path("a"), o);
    EXPECT_EQ(r.verdict.reason, StopReason::BudgetExhausted);
    EXPECT_EQ(r.verdict.workloads, 8u);
    EXPECT_EQ(r.cellsSimulated, 16u);
    EXPECT_EQ(r.budgetWorkloads, 8u);
}

TEST_F(AdaptiveCampaign, WallClockBudgetStopsAfterFirstBatch)
{
    AdaptiveOptions o = baseOptions();
    // A sub-nanosecond budget expires during batch 0, so the run
    // stops at the first batch boundary and banks the remaining
    // 11 workloads (22 cells) as savings.
    o.wallClockBudget = 1e-9;
    const AdaptiveResult r = run(path("a"), o);
    EXPECT_EQ(r.verdict.reason, StopReason::WallClock);
    EXPECT_EQ(r.verdict.workloads, 4u);
    EXPECT_EQ(r.cellsSimulated, 8u);
    EXPECT_EQ(r.cellsSaved(), 22u);
    EXPECT_TRUE(persist::hasAdaptiveDecision(path("a")));
    EXPECT_EQ(r.decision.batches, 1u);
}

TEST_F(AdaptiveCampaign, SerialAndParallelAreBitwiseIdentical)
{
    AdaptiveOptions serial = baseOptions();
    const AdaptiveResult a = run(path("serial"), serial);
    AdaptiveOptions par = baseOptions();
    par.jobs = 8;
    const AdaptiveResult b = run(path("par"), par);
    EXPECT_EQ(a.verdict.workloads, b.verdict.workloads);
    EXPECT_EQ(artifactBytes(path("serial"), a.decision.batches),
              artifactBytes(path("par"), b.decision.batches));
}

TEST_F(AdaptiveCampaign, RankedSetRunsPrepassAndIsDeterministic)
{
    AdaptiveOptions o = baseOptions();
    o.method = AdaptiveMethod::RankedSet;
    o.setSize = 3;
    const AdaptiveResult a = run(path("a"), o);
    EXPECT_EQ(a.prepassCells, 6u); // 3 benchmarks x 2 policies
    EXPECT_EQ(a.decision.method, "ranked-set");
    o.jobs = 8;
    const AdaptiveResult b = run(path("b"), o);
    EXPECT_EQ(artifactBytes(path("a"), a.decision.batches),
              artifactBytes(path("b"), b.decision.batches));
    // The ranked-set schedule differs from the random one.
    const AdaptiveResult rnd = run(path("rnd"), baseOptions());
    EXPECT_NE(artifactBytes(path("a"), a.decision.batches),
              artifactBytes(path("rnd"), rnd.decision.batches));
}

TEST_F(AdaptiveCampaign, KillMidBatchResumesBitwiseIdentical)
{
    const std::string ref = path("ref");
    const AdaptiveResult full = run(ref, baseOptions());
    const std::string bytes =
        artifactBytes(ref, full.decision.batches);

    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        const std::string out =
            path("killed_j" + std::to_string(jobs));
        AdaptiveOptions o = baseOptions();
        o.jobs = jobs;
        {
            // Kill inside the second batch: cell 11 of the run is
            // batch 1's third cell.
            test::FaultInjector kill("adaptive.cell", 11);
            EXPECT_THROW(run(out, o), test::InjectedFault);
        }
        // Batch 0 survived; batch 1 never hit the disk.
        EXPECT_TRUE(
            fs::exists(persist::adaptiveBatchPath(out, 0)));
        EXPECT_FALSE(
            fs::exists(persist::adaptiveBatchPath(out, 1)));
        EXPECT_FALSE(persist::hasAdaptiveDecision(out));

        AdaptiveOptions resume = o;
        resume.resume = true;
        const AdaptiveResult r = run(out, resume);
        EXPECT_EQ(r.batchesResumed, 1u);
        EXPECT_EQ(r.cellsResumed, 8u);
        EXPECT_EQ(r.cellsSimulated, 22u);
        EXPECT_EQ(bytes, artifactBytes(out, r.decision.batches));
    }
}

TEST_F(AdaptiveCampaign, KillAtBatchBoundaryResumesBitwise)
{
    const std::string ref = path("ref");
    const AdaptiveResult full = run(ref, baseOptions());
    const std::string bytes =
        artifactBytes(ref, full.decision.batches);

    const std::string out = path("killed");
    {
        // Kill during the third batch file's atomic rename: the
        // batch is fully simulated but never becomes visible — the
        // batch-boundary crash.
        test::FaultInjector kill("atomic.before-rename", 3);
        EXPECT_THROW(run(out, baseOptions()),
                     test::InjectedFault);
    }
    EXPECT_TRUE(fs::exists(persist::adaptiveBatchPath(out, 0)));
    EXPECT_TRUE(fs::exists(persist::adaptiveBatchPath(out, 1)));
    EXPECT_FALSE(fs::exists(persist::adaptiveBatchPath(out, 2)));

    AdaptiveOptions resume = baseOptions();
    resume.resume = true;
    const AdaptiveResult r = run(out, resume);
    EXPECT_EQ(r.batchesResumed, 2u);
    EXPECT_EQ(r.cellsResumed, 16u);
    EXPECT_EQ(bytes, artifactBytes(out, r.decision.batches));
}

TEST_F(AdaptiveCampaign, CorruptBatchIsQuarantinedAndResimulated)
{
    const std::string ref = path("ref");
    const AdaptiveResult full = run(ref, baseOptions());
    const std::string bytes =
        artifactBytes(ref, full.decision.batches);

    const std::string out = path("corrupt");
    run(out, baseOptions());
    test::flipBit(persist::adaptiveBatchPath(out, 1), 40);
    fs::remove(persist::adaptiveDecisionPath(out));

    AdaptiveOptions resume = baseOptions();
    resume.resume = true;
    const AdaptiveResult r = run(out, resume);
    // Batch 0 resumed; 1 was quarantined and re-simulated; 2 and 3
    // resumed (still intact).
    EXPECT_EQ(r.batchesResumed, 3u);
    EXPECT_EQ(r.batchesRun, 1u);
    EXPECT_EQ(bytes, artifactBytes(out, r.decision.batches));
}

TEST_F(AdaptiveCampaign, FreshRunClearsStaleArtifacts)
{
    const std::string out = path("a");
    run(out, baseOptions());
    // A non-resume rerun with a smaller budget must not leave the
    // old (longer) run's later batches behind.
    AdaptiveOptions o = baseOptions();
    o.stop.maxWorkloads = 8;
    o.resume = false;
    const AdaptiveResult r = run(out, o);
    EXPECT_EQ(r.decision.batches, 2u);
    EXPECT_FALSE(fs::exists(persist::adaptiveBatchPath(out, 2)));
    EXPECT_FALSE(fs::exists(persist::adaptiveBatchPath(out, 3)));
}

TEST_F(AdaptiveCampaign, AdaptiveMethodNamesRoundTrip)
{
    EXPECT_EQ(parseAdaptiveMethod("random"),
              AdaptiveMethod::Random);
    EXPECT_EQ(parseAdaptiveMethod("ranked-set"),
              AdaptiveMethod::RankedSet);
    EXPECT_STREQ(toString(AdaptiveMethod::Random), "random");
    EXPECT_STREQ(toString(AdaptiveMethod::RankedSet),
                 "ranked-set");
    EXPECT_THROW(parseAdaptiveMethod("bogus"), FatalError);
}

} // namespace

} // namespace wsel
