/**
 * @file
 * Tests for binomial / multiset counting, including the paper's
 * population sizes.
 */

#include <gtest/gtest.h>

#include "stats/combinatorics.hh"
#include "stats/logging.hh"

namespace wsel
{

TEST(Binomial, SmallValues)
{
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(5, 0), 1u);
    EXPECT_EQ(binomial(5, 5), 1u);
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(10, 3), 120u);
    EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Binomial, KGreaterThanNIsZero)
{
    EXPECT_EQ(binomial(3, 4), 0u);
}

TEST(Binomial, Symmetry)
{
    for (std::uint64_t n = 0; n <= 30; ++n)
        for (std::uint64_t k = 0; k <= n; ++k)
            EXPECT_EQ(binomial(n, k), binomial(n, n - k));
}

TEST(Binomial, PascalIdentity)
{
    for (std::uint64_t n = 1; n <= 40; ++n) {
        for (std::uint64_t k = 1; k <= n; ++k) {
            EXPECT_EQ(binomial(n, k),
                      binomial(n - 1, k - 1) + binomial(n - 1, k));
        }
    }
}

TEST(Binomial, LargeExactValue)
{
    EXPECT_EQ(binomial(60, 30), 118264581564861424ULL);
}

TEST(Binomial, OverflowIsFatal)
{
    EXPECT_THROW(binomial(128, 64), FatalError);
}

TEST(MultisetCount, PaperPopulationSizes)
{
    // Section IV-A: 253 workloads for 2 cores, 12650 for 4 cores
    // out of 22 benchmarks.
    EXPECT_EQ(multisetCount(22, 2), 253u);
    EXPECT_EQ(multisetCount(22, 4), 12650u);
    // 8 cores: C(29, 8).
    EXPECT_EQ(multisetCount(22, 8), 4292145u);
}

TEST(MultisetCount, Edges)
{
    EXPECT_EQ(multisetCount(0, 0), 1u);
    EXPECT_EQ(multisetCount(0, 3), 0u);
    EXPECT_EQ(multisetCount(5, 0), 1u);
    EXPECT_EQ(multisetCount(1, 7), 1u);
    EXPECT_EQ(multisetCount(7, 1), 7u);
}

} // namespace wsel
