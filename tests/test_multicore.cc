/**
 * @file
 * Tests for the multiprogram simulators (detailed and BADCO).
 */

#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

std::vector<BenchmarkProfile>
testSuite()
{
    std::vector<BenchmarkProfile> s;
    s.push_back(test::lightProfile(7));
    s.push_back(test::heavyProfile(11));
    auto third = test::lightProfile(19);
    third.name = "test-light-2";
    third.hotBytes = 20 * 1024;
    s.push_back(third);
    return s;
}

} // namespace

TEST(DetailedMulticore, RunsTwoCoreWorkload)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    DetailedMulticoreSim sim(CoreConfig{}, ucfg, 2, 10000);
    const SimResult r = sim.run(Workload({0, 1}), suite);
    ASSERT_EQ(r.ipc.size(), 2u);
    EXPECT_GT(r.ipc[0], 0.0);
    EXPECT_GT(r.ipc[1], 0.0);
    EXPECT_LE(r.ipc[0], 4.0);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 20000u);
    EXPECT_GT(r.wallSeconds, 0.0);
    EXPECT_GT(r.mips(), 0.0);
    ASSERT_EQ(r.llcDemandMisses.size(), 2u);
}

TEST(DetailedMulticore, DeterministicAcrossRuns)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::DRRIP);
    DetailedMulticoreSim sim(CoreConfig{}, ucfg, 2, 8000);
    const SimResult a = sim.run(Workload({0, 1}), suite);
    const SimResult b = sim.run(Workload({0, 1}), suite);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcDemandMisses, b.llcDemandMisses);
}

TEST(DetailedMulticore, ContentionSlowsThreadsDown)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    DetailedMulticoreSim sim(CoreConfig{}, ucfg, 2, 10000);
    // Light thread alone (paired with itself) vs paired with the
    // heavy thread: the heavy co-runner must not speed it up.
    const SimResult alone = sim.run(Workload({0, 0}), suite);
    const SimResult shared = sim.run(Workload({0, 1}), suite);
    EXPECT_LE(shared.ipc[0], alone.ipc[0] * 1.05);
}

TEST(DetailedMulticore, ReferenceIpcsAreSingleThreadRuns)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    DetailedMulticoreSim sim(CoreConfig{}, ucfg, 2, 8000);
    const auto refs = sim.referenceIpcs(suite);
    ASSERT_EQ(refs.size(), suite.size());
    for (double r : refs) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 4.0);
    }
}

TEST(DetailedMulticore, RejectsMismatchedWorkload)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    DetailedMulticoreSim sim(CoreConfig{}, ucfg, 2, 1000);
    EXPECT_THROW(sim.run(Workload({0, 1, 2}), suite), FatalError);
    EXPECT_THROW(sim.run(Workload({0, 9}), suite), FatalError);
}

TEST(BadcoMulticore, RunsAndIsDeterministic)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, 10000, ucfg.llcHitLatency);
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim sim(ucfg, 2, 10000);
    const SimResult a = sim.run(Workload({0, 1}), models);
    const SimResult b = sim.run(Workload({0, 1}), models);
    ASSERT_EQ(a.ipc.size(), 2u);
    EXPECT_GT(a.ipc[0], 0.0);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(BadcoMulticore, TracksDetailedWithinTolerance)
{
    // Single-benchmark CPI agreement between the two simulators
    // (the fig. 2 property, loose bound).
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    const std::uint64_t target = 20000;
    DetailedMulticoreSim det(CoreConfig{}, ucfg, 2, target);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency);
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim bad(ucfg, 2, target);
    for (std::uint32_t b : {0u, 1u}) {
        const SimResult d = det.run(Workload({b, b}), suite);
        const SimResult a = bad.run(Workload({b, b}), models);
        const double cpi_d = 1.0 / d.ipc[0];
        const double cpi_b = 1.0 / a.ipc[0];
        EXPECT_LT(std::abs(cpi_b - cpi_d) / cpi_d, 0.75)
            << "benchmark " << b;
    }
}

TEST(BadcoMulticore, FasterThanDetailed)
{
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    const std::uint64_t target = 30000;
    DetailedMulticoreSim det(CoreConfig{}, ucfg, 2, target);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency);
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim bad(ucfg, 2, target);
    const Workload w({1, 1});
    const SimResult d = det.run(w, suite);
    const SimResult a = bad.run(w, models);
    EXPECT_GT(a.mips(), d.mips());
}

TEST(BadcoMulticore, HaltProtocolFlattersSlowThreads)
{
    // With restart (the paper's protocol) the fast thread keeps
    // thrashing the LLC; halting it early can only help the slow
    // thread's measured IPC.
    const auto suite = testSuite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    const std::uint64_t target = 15000;
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency);
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim restart(ucfg, 2, target);
    BadcoMulticoreSim halt(ucfg, 2, target);
    halt.restartFinishedThreads(false);
    const Workload w({0, 1}); // light + heavy
    const SimResult a = restart.run(w, models);
    const SimResult b = halt.run(w, models);
    // The heavy (slow) thread must not get slower when its
    // co-runner halts early.
    EXPECT_GE(b.ipc[1], a.ipc[1] * 0.999);
}

TEST(BadcoMulticore, MissingModelFatal)
{
    const UncoreConfig ucfg =
        UncoreConfig::forCores(2, PolicyKind::LRU);
    BadcoMulticoreSim sim(ucfg, 2, 1000);
    std::vector<const BadcoModel *> models = {nullptr, nullptr};
    EXPECT_THROW(sim.run(Workload({0, 1}), models), FatalError);
}

TEST(ModelStore, BuildsOncePerBenchmark)
{
    const auto suite = testSuite();
    BadcoModelStore store(CoreConfig{}, 5000, 5);
    store.get(suite[0]);
    EXPECT_EQ(store.modelsBuilt(), 1u);
    store.get(suite[0]);
    EXPECT_EQ(store.modelsBuilt(), 1u);
    EXPECT_GT(store.buildSeconds(), 0.0);
}

TEST(ModelStore, DiskCacheRoundTrip)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "wsel_test_store";
    std::filesystem::remove_all(dir);
    const auto suite = testSuite();
    {
        BadcoModelStore store(CoreConfig{}, 4000, 5, dir.string());
        store.get(suite[1]);
        EXPECT_EQ(store.modelsBuilt(), 1u);
    }
    {
        BadcoModelStore store(CoreConfig{}, 4000, 5, dir.string());
        const BadcoModel &m = store.get(suite[1]);
        EXPECT_EQ(store.modelsBuilt(), 0u); // loaded, not rebuilt
        EXPECT_EQ(m.traceUops, 4000u);
    }
    std::filesystem::remove_all(dir);
}

} // namespace wsel
