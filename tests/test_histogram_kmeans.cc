/**
 * @file
 * Tests for Histogram and k-means clustering.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "stats/histogram.hh"
#include "stats/kmeans.hh"
#include "stats/logging.hh"

namespace wsel
{

TEST(Histogram, BinsCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    for (double x : {0.5, 1.5, 1.6, 9.9})
        h.add(x);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, RenderProducesOneLinePerBin)
{
    Histogram h(0.0, 1.0, 5);
    h.add(0.5);
    const std::string out = h.render();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Histogram, BadRangeFatal)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(KMeans, RecoversSeparatedClusters)
{
    std::vector<std::vector<double>> pts;
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        pts.push_back({rng.nextGaussian() * 0.1,
                       rng.nextGaussian() * 0.1});
    for (int i = 0; i < 50; ++i)
        pts.push_back({10.0 + rng.nextGaussian() * 0.1,
                       10.0 + rng.nextGaussian() * 0.1});
    Rng seed(5);
    const KMeansResult res = kmeans(pts, 2, seed);
    // All first-half points share a cluster, all second-half points
    // share the other.
    for (int i = 1; i < 50; ++i)
        EXPECT_EQ(res.assignment[i], res.assignment[0]);
    for (int i = 51; i < 100; ++i)
        EXPECT_EQ(res.assignment[i], res.assignment[50]);
    EXPECT_NE(res.assignment[0], res.assignment[50]);
}

TEST(KMeans, OneDimensionalMpkiLikeClasses)
{
    // Values resembling per-benchmark MPKIs: three obvious groups.
    const std::vector<double> mpki = {0.2, 0.4, 0.3, 0.5, 3.0,
                                      3.5,  2.8, 20.0, 25.0, 30.0};
    Rng rng(9);
    const KMeansResult res = kmeans1d(mpki, 3, rng);
    EXPECT_EQ(res.assignment[0], res.assignment[1]);
    EXPECT_EQ(res.assignment[4], res.assignment[5]);
    EXPECT_EQ(res.assignment[7], res.assignment[8]);
    EXPECT_NE(res.assignment[0], res.assignment[4]);
    EXPECT_NE(res.assignment[4], res.assignment[7]);
}

TEST(KMeans, InertiaNonIncreasingInK)
{
    Rng data(13);
    std::vector<double> vals;
    for (int i = 0; i < 60; ++i)
        vals.push_back(data.nextDouble() * 100.0);
    double prev = 1e300;
    for (std::size_t k = 1; k <= 6; ++k) {
        // Best of a few restarts to smooth local minima.
        double best = 1e300;
        for (int r = 0; r < 5; ++r) {
            Rng rng(100 + r);
            best = std::min(best, kmeans1d(vals, k, rng).inertia);
        }
        EXPECT_LE(best, prev + 1e-9);
        prev = best;
    }
}

TEST(KMeans, KEqualsNIsPerfect)
{
    const std::vector<double> vals = {1.0, 2.0, 3.0};
    Rng rng(1);
    const KMeansResult res = kmeans1d(vals, 3, rng);
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeans, InvalidKFatal)
{
    const std::vector<std::vector<double>> pts = {{1.0}, {2.0}};
    Rng rng(1);
    EXPECT_THROW(kmeans(pts, 0, rng), FatalError);
    EXPECT_THROW(kmeans(pts, 3, rng), FatalError);
}

TEST(KMeans, InconsistentDimensionsFatal)
{
    const std::vector<std::vector<double>> pts = {{1.0}, {2.0, 3.0}};
    Rng rng(1);
    EXPECT_THROW(kmeans(pts, 1, rng), FatalError);
}

} // namespace wsel
