/**
 * @file
 * Shared helpers for the wsel test suite: small fast benchmark
 * profiles and simulation shortcuts so unit tests stay quick.
 */

#ifndef WSEL_TESTS_TEST_UTIL_HH
#define WSEL_TESTS_TEST_UTIL_HH

#include <cstdint>

#include "cpu/detailed_core.hh"
#include "mem/uncore.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_store.hh"

namespace wsel::test
{

/** A light, fast profile for unit tests (mostly L1-resident). */
inline BenchmarkProfile
lightProfile(std::uint64_t seed = 7)
{
    BenchmarkProfile p;
    p.name = "test-light";
    p.seed = seed;
    p.loadFrac = 0.30;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    p.fpFrac = 0.05;
    p.l1Frac = 0.90;
    p.hotFrac = 0.08;
    p.streamFrac = 0.01;
    p.randomFrac = 0.01;
    p.chaseFrac = 0.0;
    p.l1Bytes = 4 * 1024;
    p.hotBytes = 12 * 1024;
    p.footprintBytes = 1 * 1024 * 1024;
    p.staticBlocks = 256;
    p.validate();
    return p;
}

/** A memory-heavy profile (streams, random, chase). */
inline BenchmarkProfile
heavyProfile(std::uint64_t seed = 11)
{
    BenchmarkProfile p;
    p.name = "test-heavy";
    p.seed = seed;
    p.loadFrac = 0.32;
    p.storeFrac = 0.10;
    p.branchFrac = 0.12;
    p.fpFrac = 0.02;
    p.l1Frac = 0.70;
    p.hotFrac = 0.10;
    p.streamFrac = 0.10;
    p.randomFrac = 0.06;
    p.chaseFrac = 0.04;
    p.l1Bytes = 4 * 1024;
    p.hotBytes = 24 * 1024;
    p.footprintBytes = 4 * 1024 * 1024;
    p.chaseBytes = 64 * 1024;
    p.staticBlocks = 256;
    p.validate();
    return p;
}

/** Run a single detailed core to its target and return it. */
inline CoreStats
runSingleCore(const BenchmarkProfile &profile, UncoreIf &uncore,
              std::uint64_t target, std::uint64_t seed = 1)
{
    CoreConfig cfg;
    DetailedCore core(cfg, TraceStore::global().cursor(profile),
                      uncore, 0, target, seed);
    std::uint64_t now = 0;
    while (!core.reachedTarget()) {
        core.tick(now);
        const std::uint64_t next = core.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }
    return core.stats();
}

} // namespace wsel::test

#endif // WSEL_TESTS_TEST_UTIL_HH
