/**
 * @file
 * Tests for the fatal/panic error-reporting macros, the warn()
 * rate limiter (now backed by the lock-free obs dedup table), and
 * the Pearson correlation helper.
 */

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stats/logging.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace wsel
{

TEST(Logging, FatalThrowsWithStreamedMessage)
{
    try {
        WSEL_FATAL("bad value " << 42 << " in " << "context");
        FAIL() << "WSEL_FATAL did not throw";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad value 42 in context"),
                  std::string::npos);
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos);
    }
}

TEST(Logging, FatalIsCatchableAsRuntimeError)
{
    EXPECT_THROW(WSEL_FATAL("boom"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    // Must not throw or abort.
    WSEL_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(Logging, AssertAbortsOnFalseCondition)
{
    EXPECT_DEATH(WSEL_ASSERT(false, "invariant " << 7),
                 "assertion failed");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(WSEL_PANIC("internal bug " << 3), "panic");
}

namespace
{

/** Count non-overlapping occurrences of @p needle in @p hay. */
std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = hay.find(needle);
         at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

} // namespace

// The repeat counts live in the process-global obs dedup table, so
// each test uses a unique message string.

TEST(Logging, WarnSuppressesAfterTwentyRepeats)
{
    const std::string msg = "test-warn-suppression-regression";
    testing::internal::CaptureStderr();
    for (int i = 0; i < 50; ++i)
        warn(msg);
    const std::string err = testing::internal::GetCapturedStderr();
    // Exactly 20 lines emitted; the 20th announces the suppression.
    EXPECT_EQ(countOccurrences(err, "warn: " + msg), 20u);
    EXPECT_EQ(countOccurrences(
                  err, "(suppressing further identical warnings)"),
              1u);
}

TEST(Logging, WarnSuppressionIsExactUnderConcurrency)
{
    // 8 threads flooding one message must emit exactly 20 lines —
    // the dedup table hands out one occurrence number per call, so
    // no line is lost or duplicated by the race.
    const std::string msg = "test-warn-concurrent-regression";
    testing::internal::CaptureStderr();
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&msg] {
            for (int i = 0; i < 500; ++i)
                warn(msg);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(countOccurrences(err, "warn: " + msg), 20u);
}

TEST(Logging, WarnKeepsDistinctMessagesApart)
{
    const std::string a = "test-warn-distinct-a";
    const std::string b = "test-warn-distinct-b";
    testing::internal::CaptureStderr();
    warn(a);
    warn(b);
    warn(a);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(countOccurrences(err, "warn: " + a), 2u);
    EXPECT_EQ(countOccurrences(err, "warn: " + b), 1u);
}

TEST(Pearson, PerfectCorrelation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
    std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(pearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, IndependenceIsNearZero)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.nextGaussian());
        ys.push_back(rng.nextGaussian());
    }
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 0.0, 0.03);
}

TEST(Pearson, ConstantSeriesIsNaN)
{
    const std::vector<double> xs = {1.0, 1.0, 1.0};
    const std::vector<double> ys = {1.0, 2.0, 3.0};
    EXPECT_TRUE(std::isnan(pearsonCorrelation(xs, ys)));
}

TEST(Pearson, LengthMismatchFatal)
{
    const std::vector<double> xs = {1.0, 2.0};
    const std::vector<double> ys = {1.0};
    EXPECT_THROW(pearsonCorrelation(xs, ys), FatalError);
}

} // namespace wsel
