/**
 * @file
 * Tests for the fatal/panic error-reporting macros and the Pearson
 * correlation helper.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/logging.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

namespace wsel
{

TEST(Logging, FatalThrowsWithStreamedMessage)
{
    try {
        WSEL_FATAL("bad value " << 42 << " in " << "context");
        FAIL() << "WSEL_FATAL did not throw";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad value 42 in context"),
                  std::string::npos);
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos);
    }
}

TEST(Logging, FatalIsCatchableAsRuntimeError)
{
    EXPECT_THROW(WSEL_FATAL("boom"), std::runtime_error);
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    // Must not throw or abort.
    WSEL_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(Logging, AssertAbortsOnFalseCondition)
{
    EXPECT_DEATH(WSEL_ASSERT(false, "invariant " << 7),
                 "assertion failed");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(WSEL_PANIC("internal bug " << 3), "panic");
}

TEST(Pearson, PerfectCorrelation)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
    std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(pearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, IndependenceIsNearZero)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.nextGaussian());
        ys.push_back(rng.nextGaussian());
    }
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 0.0, 0.03);
}

TEST(Pearson, ConstantSeriesIsNaN)
{
    const std::vector<double> xs = {1.0, 1.0, 1.0};
    const std::vector<double> ys = {1.0, 2.0, 3.0};
    EXPECT_TRUE(std::isnan(pearsonCorrelation(xs, ys)));
}

TEST(Pearson, LengthMismatchFatal)
{
    const std::vector<double> xs = {1.0, 2.0};
    const std::vector<double> ys = {1.0};
    EXPECT_THROW(pearsonCorrelation(xs, ys), FatalError);
}

} // namespace wsel
