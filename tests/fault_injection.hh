/**
 * @file
 * Deterministic fault injection for the persistence layer.
 *
 * The production code in stats/persist.hh calls
 * persist::faultPoint("name") at each kill-point (journal record
 * appended, atomic write about to rename, ...).  Tests install a
 * hook that throws InjectedFault at a chosen point and hit count,
 * simulating a process killed exactly there: the stack unwinds
 * without running any of the persistence code that would have
 * followed, just like a real SIGKILL, while RAII keeps the test
 * process itself healthy.  File-corruption helpers (truncate at
 * byte K, flip a bit) complete the harness.
 *
 * Kill-points currently emitted by the production code:
 *  - "journal.before-append": about to record a completed cell
 *    (killing here loses that cell's work);
 *  - "journal.append": cell durably recorded (killing here loses
 *    nothing);
 *  - "atomic.begin" / "atomic.before-rename" /
 *    "atomic.after-rename": around atomicWriteFile's
 *    write-tmp-then-rename sequence;
 *  - "population.cell": one (row, policy) cell of a population
 *    shard simulated (src/sim/population.cc);
 *  - "adaptive.cell": one (workload, policy) cell of a sequential
 *    adaptive batch simulated (src/sim/adaptive.cc);
 *  - "serve.shard-start" / "serve.shard-committed": a worker
 *    process accepted a shard lease / durably committed the shard
 *    to the result store (src/serve/worker.cc);
 *  - "fidelity.escalate": one escalated cell about to run on the
 *    detailed simulator in a mixed-fidelity campaign
 *    (src/sim/hybrid.cc and, for distributed escalation,
 *    src/sim/population.cc's detailed shard twin).
 *
 * The serve tests escalate from exceptions to real SIGKILL:
 * wsel_worker arms these same points from WSEL_KILL_POINT=
 * "point:nth" (optionally gated to one shard by WSEL_KILL_SHARD)
 * and raises SIGKILL at the hit, so whole-process crash recovery
 * is exercised with genuine process death (docs/ROBUSTNESS.md,
 * "Distributed campaigns").
 */

#ifndef WSEL_TESTS_FAULT_INJECTION_HH
#define WSEL_TESTS_FAULT_INJECTION_HH

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/persist.hh"

namespace wsel::test
{

/** Thrown at an armed kill-point; simulates a crash at that spot. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * RAII fault plan: arms one kill-point for the lifetime of the
 * object and disarms (and resets hit counters) on destruction.
 * With nth == 0 the point never fires but hits are still counted,
 * which lets tests observe how often the persistence layer passed
 * a point (e.g. how many journal appends a resumed run performed).
 */
class FaultInjector
{
  public:
    FaultInjector(std::string point, std::uint64_t nth)
    {
        persist::resetFaultPoints();
        persist::setFaultHook(
            [point = std::move(point), nth](const char *p,
                                            std::uint64_t hits) {
                if (nth != 0 && point == p && hits == nth)
                    throw InjectedFault(
                        std::string("injected fault at ") + p +
                        " #" + std::to_string(hits));
            });
    }

    /** Count hits on every point without ever firing. */
    FaultInjector() : FaultInjector("", 0) {}

    ~FaultInjector()
    {
        persist::setFaultHook(nullptr);
        persist::resetFaultPoints();
    }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Hits recorded on @p point since this injector was armed. */
    std::uint64_t
    hits(const char *point) const
    {
        return persist::faultPointHits(point);
    }
};

/** Truncate @p path to @p size bytes. */
inline void
truncateFile(const std::string &path, std::uint64_t size)
{
    std::filesystem::resize_file(path, size);
}

/** Flip one bit of the byte at @p offset in @p path. */
inline void
flipBit(const std::string &path, std::uint64_t offset,
        unsigned bit = 0)
{
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    c = static_cast<char>(c ^ (1u << (bit & 7)));
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(c);
}

/** Size of @p path in bytes. */
inline std::uint64_t
fileSize(const std::string &path)
{
    return std::filesystem::file_size(path);
}

/** Read a whole file into a string. */
inline std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
    return s;
}

} // namespace wsel::test

#endif // WSEL_TESTS_FAULT_INJECTION_HH
