/**
 * @file
 * Tests for the BADCO behavioural model builder and machine.
 */

#include <cmath>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "badco/badco_machine.hh"
#include "badco/badco_model.hh"
#include "mem/uncore.hh"
#include "stats/logging.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

BadcoModel
buildTestModel(const BenchmarkProfile &p, std::uint64_t target)
{
    CoreConfig cfg;
    return buildBadcoModel(p, cfg, target, 6);
}

} // namespace

TEST(BadcoModel, BuildProducesNonTrivialModel)
{
    const BadcoModel m =
        buildTestModel(test::heavyProfile(), 20000);
    EXPECT_EQ(m.benchmark, "test-heavy");
    EXPECT_EQ(m.traceUops, 20000u);
    EXPECT_GT(m.intrinsicCycles, 0u);
    EXPECT_GT(m.nodes.size(), 100u);
    EXPECT_GT(m.loadCount, 50u);
    EXPECT_GE(m.window, 1u);
    EXPECT_LE(m.window, 512u);
}

TEST(BadcoModel, NodesAreProgramOrdered)
{
    const BadcoModel m =
        buildTestModel(test::heavyProfile(), 20000);
    std::uint64_t total_uops = 0, total_weight = 0;
    std::int64_t loads_seen = 0;
    for (const BadcoNode &n : m.nodes) {
        total_uops += n.uops;
        total_weight += n.weight;
        EXPECT_LE(n.uopSeq, m.traceUops);
        if (n.req.type == BadcoReqType::Load) {
            // Load dependencies must point strictly backwards.
            EXPECT_LT(n.req.dependsOn, loads_seen);
            ++loads_seen;
        } else {
            EXPECT_EQ(n.req.dependsOn, -1);
        }
    }
    EXPECT_EQ(loads_seen, static_cast<std::int64_t>(m.loadCount));
    // Node µops plus the tail cover the whole slice.
    EXPECT_EQ(total_uops + m.tailUops, m.traceUops);
    // Node weights plus the tail cover the intrinsic cycles.
    EXPECT_EQ(total_weight + m.tailWeight, m.intrinsicCycles);
}

TEST(BadcoModel, SaveLoadRoundTrip)
{
    const BadcoModel m =
        buildTestModel(test::lightProfile(), 10000);
    std::stringstream ss;
    m.save(ss);
    const BadcoModel r = BadcoModel::load(ss);
    EXPECT_EQ(r.benchmark, m.benchmark);
    EXPECT_EQ(r.traceUops, m.traceUops);
    EXPECT_EQ(r.intrinsicCycles, m.intrinsicCycles);
    EXPECT_EQ(r.tailWeight, m.tailWeight);
    EXPECT_EQ(r.tailUops, m.tailUops);
    EXPECT_EQ(r.loadCount, m.loadCount);
    EXPECT_EQ(r.window, m.window);
    ASSERT_EQ(r.nodes.size(), m.nodes.size());
    for (std::size_t i = 0; i < m.nodes.size(); ++i) {
        EXPECT_EQ(r.nodes[i].weight, m.nodes[i].weight);
        EXPECT_EQ(r.nodes[i].uops, m.nodes[i].uops);
        EXPECT_EQ(r.nodes[i].req.vaddr, m.nodes[i].req.vaddr);
        EXPECT_EQ(r.nodes[i].req.type, m.nodes[i].req.type);
        EXPECT_EQ(r.nodes[i].req.dependsOn,
                  m.nodes[i].req.dependsOn);
    }
}

TEST(BadcoModel, LoadRejectsGarbage)
{
    std::stringstream ss;
    ss << "not a model";
    EXPECT_THROW(BadcoModel::load(ss), FatalError);
}

TEST(BadcoMachine, ReplayAtPerfectLatencyMatchesIntrinsic)
{
    // Against the same perfect uncore the model was built with, the
    // replay should reproduce the intrinsic cycle count closely
    // (requests never stall: completion always hit-latency away).
    const BadcoModel m =
        buildTestModel(test::lightProfile(), 20000);
    PerfectUncore uncore(6);
    BadcoMachine machine(m, uncore, 0, 20000);
    while (!machine.reachedTarget())
        machine.run(machine.localClock() + 10000);
    const double ratio =
        static_cast<double>(machine.stats().cyclesToTarget) /
        static_cast<double>(m.intrinsicCycles);
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.10);
}

TEST(BadcoMachine, CalibratedWindowReproducesSlowUncore)
{
    // The second-trace calibration contract: at the calibration
    // latency, the replay cycle count matches the detailed core's.
    const BenchmarkProfile p = test::heavyProfile();
    const std::uint64_t target = 20000;
    const BadcoModel m = buildTestModel(p, target);

    PerfectUncore slow(206);
    const CoreStats detailed =
        test::runSingleCore(p, slow, target);

    PerfectUncore slow2(206);
    BadcoMachine machine(m, slow2, 0, target);
    while (!machine.reachedTarget())
        machine.run(machine.localClock() + 10000);

    const double err =
        std::abs(static_cast<double>(
                     machine.stats().cyclesToTarget) -
                 static_cast<double>(detailed.cyclesToTarget)) /
        static_cast<double>(detailed.cyclesToTarget);
    EXPECT_LT(err, 0.10);
}

TEST(BadcoMachine, WindowOverrideChangesTiming)
{
    const BadcoModel m =
        buildTestModel(test::heavyProfile(), 20000);
    PerfectUncore u1(206), u2(206);
    BadcoMachine narrow(m, u1, 0, 20000, 1);
    BadcoMachine wide(m, u2, 0, 20000, 512);
    while (!narrow.reachedTarget())
        narrow.run(narrow.localClock() + 10000);
    while (!wide.reachedTarget())
        wide.run(wide.localClock() + 10000);
    EXPECT_GT(narrow.stats().cyclesToTarget,
              wide.stats().cyclesToTarget);
}

TEST(BadcoMachine, RestartsAndKeepsRunning)
{
    const BadcoModel m =
        buildTestModel(test::lightProfile(), 5000);
    PerfectUncore uncore(6);
    BadcoMachine machine(m, uncore, 0, 5000);
    while (!machine.reachedTarget())
        machine.run(machine.localClock() + 1000);
    const std::uint64_t frozen = machine.stats().cyclesToTarget;
    machine.run(machine.localClock() + 100000);
    EXPECT_EQ(machine.stats().cyclesToTarget, frozen);
    EXPECT_GT(machine.stats().uops, 5000u);
}

TEST(BadcoMachine, DeterministicReplay)
{
    const BadcoModel m =
        buildTestModel(test::heavyProfile(), 15000);
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::DRRIP);
    Uncore u1(cfg, 1, 3), u2(cfg, 1, 3);
    BadcoMachine a(m, u1, 0, 15000), b(m, u2, 0, 15000);
    while (!a.reachedTarget())
        a.run(a.localClock() + 777);
    while (!b.reachedTarget())
        b.run(b.localClock() + 777);
    EXPECT_EQ(a.stats().cyclesToTarget, b.stats().cyclesToTarget);
    EXPECT_EQ(a.stats().requests, b.stats().requests);
}

TEST(BadcoMachine, RejectsDegenerateInputs)
{
    const BadcoModel m =
        buildTestModel(test::lightProfile(), 2000);
    PerfectUncore uncore(6);
    EXPECT_THROW(BadcoMachine(m, uncore, 0, 2000, 5, 0), FatalError);
    BadcoModel empty;
    EXPECT_THROW(BadcoMachine(empty, uncore, 0, 100), FatalError);
}

} // namespace wsel
