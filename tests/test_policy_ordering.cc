/**
 * @file
 * Integration test of the case study's scientific property: on a
 * BADCO-simulated 2-core workload sample from the real 22-benchmark
 * suite, the five LLC policies order the way the paper's evaluation
 * shows — LRU above RND and FIFO, DIP/DRRIP at or above LRU — and
 * all three throughput metrics agree on the signs.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/confidence/confidence.hh"
#include "sim/campaign.hh"
#include "sim/model_store.hh"
#include "stats/logging.hh"

namespace wsel
{

namespace
{

/** One shared campaign for the whole suite of checks. */
class PolicyOrdering : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const auto &suite = spec2006Suite();
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), 2);
        // A balanced slice of the 2-core population keeps this test
        // fast while exercising every benchmark.
        Rng rng(1);
        std::vector<Workload> ws;
        for (std::size_t i : rng.sampleWithoutReplacement(
                 static_cast<std::size_t>(pop.size()), 60))
            ws.push_back(pop.unrank(i));

        const UncoreConfig ucfg =
            UncoreConfig::forCores(2, PolicyKind::LRU);
        store_ = new BadcoModelStore(CoreConfig{}, kTarget,
                                     ucfg.llcHitLatency);
        campaign_ = new Campaign(
            runBadcoCampaign(ws, paperPolicies(), 2, kTarget,
                             *store_, suite));
    }

    static void
    TearDownTestSuite()
    {
        delete campaign_;
        delete store_;
        campaign_ = nullptr;
        store_ = nullptr;
    }

    static double
    meanThroughput(PolicyKind p, ThroughputMetric m)
    {
        const auto t = campaign_->perWorkloadThroughputs(
            campaign_->policyIndex(p), m);
        return sampleThroughput(m, t);
    }

    static constexpr std::uint64_t kTarget = 50000;
    static Campaign *campaign_;
    static BadcoModelStore *store_;
};

Campaign *PolicyOrdering::campaign_ = nullptr;
BadcoModelStore *PolicyOrdering::store_ = nullptr;

} // namespace

TEST_F(PolicyOrdering, LruBeatsRandomAndFifo)
{
    for (ThroughputMetric m : paperMetrics()) {
        EXPECT_GT(meanThroughput(PolicyKind::LRU, m),
                  meanThroughput(PolicyKind::Random, m))
            << toString(m);
        EXPECT_GT(meanThroughput(PolicyKind::LRU, m),
                  meanThroughput(PolicyKind::FIFO, m))
            << toString(m);
    }
}

TEST_F(PolicyOrdering, AdaptiveInsertionBeatsLru)
{
    for (ThroughputMetric m : paperMetrics()) {
        EXPECT_GT(meanThroughput(PolicyKind::DIP, m),
                  meanThroughput(PolicyKind::LRU, m))
            << toString(m);
        EXPECT_GT(meanThroughput(PolicyKind::DRRIP, m),
                  meanThroughput(PolicyKind::LRU, m))
            << toString(m);
    }
}

TEST_F(PolicyOrdering, DrripVsDipIsTheClosePair)
{
    // The DRRIP-DIP gap must be the smallest of the DIP/DRRIP
    // comparisons against the classical policies (the paper's
    // "closest pair" that motivates large samples).
    const ThroughputMetric m = ThroughputMetric::IPCT;
    const auto t_lru = campaign_->perWorkloadThroughputs(
        campaign_->policyIndex(PolicyKind::LRU), m);
    const auto t_dip = campaign_->perWorkloadThroughputs(
        campaign_->policyIndex(PolicyKind::DIP), m);
    const auto t_drrip = campaign_->perWorkloadThroughputs(
        campaign_->policyIndex(PolicyKind::DRRIP), m);
    const double close =
        std::abs(differenceStats(m, t_dip, t_drrip).inverseCv());
    const double far =
        std::abs(differenceStats(m, t_lru, t_drrip).inverseCv());
    EXPECT_LT(close, far);
}

TEST_F(PolicyOrdering, MetricsAgreeOnEverySign)
{
    const auto &policies = campaign_->policies;
    for (std::size_t a = 0; a < policies.size(); ++a) {
        for (std::size_t b = a + 1; b < policies.size(); ++b) {
            double first_sign = 0.0;
            for (ThroughputMetric m : paperMetrics()) {
                const auto tx =
                    campaign_->perWorkloadThroughputs(a, m);
                const auto ty =
                    campaign_->perWorkloadThroughputs(b, m);
                const double mu = differenceStats(m, tx, ty).mu;
                if (std::abs(mu) < 1e-6)
                    continue; // genuinely tied under this metric
                const double sign = mu > 0 ? 1.0 : -1.0;
                if (first_sign == 0.0)
                    first_sign = sign;
                EXPECT_EQ(sign, first_sign)
                    << toString(policies[a]) << " vs "
                    << toString(policies[b]) << " under "
                    << toString(m);
            }
        }
    }
}

} // namespace wsel
