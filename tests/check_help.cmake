# Runs `wsel_cli help` and compares its (stderr) usage text against
# the committed golden copy.  Invoked by the wsel_cli_help_golden
# ctest entry with -DCLI=<binary> -DGOLDEN=<tests/cli_help.golden>.
#
# When the CLI interface deliberately changes, regenerate with:
#     build/tools/wsel_cli help 2> tests/cli_help.golden

execute_process(COMMAND ${CLI} help
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "wsel_cli help exited with '${rc}'")
endif()

file(READ ${GOLDEN} want)
if(NOT err STREQUAL want)
    message(FATAL_ERROR
        "wsel_cli help drifted from tests/cli_help.golden.\n"
        "---- got ----\n${err}\n"
        "---- want ----\n${want}\n"
        "If the interface change is deliberate, regenerate the "
        "golden file (see the header of tests/check_help.cmake) "
        "and update README.md to match.")
endif()
