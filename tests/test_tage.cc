/**
 * @file
 * Tests for the TAGE branch predictor.
 */

#include <gtest/gtest.h>

#include "cpu/tage.hh"
#include "stats/logging.hh"
#include "stats/rng.hh"

namespace wsel
{

TEST(Tage, LearnsAlwaysTakenBranch)
{
    Tage t;
    int wrong = 0;
    for (int i = 0; i < 2000; ++i)
        wrong += !t.predictAndUpdate(0x400100, true);
    // After warmup, effectively perfect.
    EXPECT_LT(wrong, 5);
}

TEST(Tage, LearnsAlternatingPattern)
{
    Tage t;
    int wrong_late = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 2) == 0;
        const bool correct = t.predictAndUpdate(0x400104, taken);
        if (i >= 2000)
            wrong_late += !correct;
    }
    // A period-2 pattern is trivially history-predictable.
    EXPECT_LT(wrong_late / 2000.0, 0.05);
}

TEST(Tage, LearnsLoopExitPattern)
{
    // Taken 9 times, not-taken once (period-10 loop).
    Tage t;
    int wrong_late = 0;
    const int iters = 20000;
    for (int i = 0; i < iters; ++i) {
        const bool taken = (i % 10) != 9;
        const bool correct = t.predictAndUpdate(0x400108, taken);
        if (i >= iters / 2)
            wrong_late += !correct;
    }
    // Far better than the 10% a static predictor would get.
    EXPECT_LT(wrong_late / (iters / 2.0), 0.03);
}

TEST(Tage, RandomOutcomesApproachBiasFloor)
{
    // An i.i.d. p=0.7 branch cannot be predicted better than 30%
    // error; TAGE should get close to that floor from above.
    Tage t;
    Rng rng(7);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += !t.predictAndUpdate(0x40010c, rng.nextBool(0.7));
    const double mpr = wrong / static_cast<double>(n);
    EXPECT_GT(mpr, 0.25);
    EXPECT_LT(mpr, 0.45);
}

TEST(Tage, ManyBranchesDoNotAliasCatastrophically)
{
    // 256 always-taken branches must all be predictable even with
    // shared tables.
    Tage t;
    int wrong_late = 0, total_late = 0;
    for (int round = 0; round < 40; ++round) {
        for (int b = 0; b < 256; ++b) {
            const bool correct =
                t.predictAndUpdate(0x400000 + 4 * b, true);
            if (round >= 20) {
                wrong_late += !correct;
                ++total_late;
            }
        }
    }
    EXPECT_LT(wrong_late / static_cast<double>(total_late), 0.02);
}

TEST(Tage, DeterministicAcrossInstances)
{
    Tage a, b;
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t pc = 0x400000 + 4 * rng.nextInt(64);
        const bool taken = rng.nextBool(0.6);
        EXPECT_EQ(a.predictAndUpdate(pc, taken),
                  b.predictAndUpdate(pc, taken));
    }
}

TEST(Tage, CountersAreConsistent)
{
    Tage t;
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        t.predictAndUpdate(0x400000 + 4 * rng.nextInt(8),
                           rng.nextBool(0.5));
    EXPECT_EQ(t.predictions(), 1000u);
    EXPECT_LE(t.mispredictions(), t.predictions());
    EXPECT_NEAR(t.mispredictRate(),
                static_cast<double>(t.mispredictions()) / 1000.0,
                1e-12);
}

TEST(Tage, RejectsDegenerateConfig)
{
    TageConfig cfg;
    cfg.numTables = 1;
    EXPECT_THROW(Tage{cfg}, FatalError);
    TageConfig cfg2;
    cfg2.minHistory = 10;
    cfg2.maxHistory = 10;
    EXPECT_THROW(Tage{cfg2}, FatalError);
}

} // namespace wsel
