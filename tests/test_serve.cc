/**
 * @file
 * Tests for the distributed campaign service (src/serve/): lease
 * lifecycle edges on the clock-injected LeaseTable, wire-protocol
 * robustness against truncated/oversized frames, content-addressed
 * store idempotence and corruption quarantine, the two-process
 * directory-creation race, and end-to-end coordinator/worker runs
 * with real SIGKILLed worker processes — the recovered campaign
 * must be bitwise identical to an uninterrupted serial run.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>

#include <gtest/gtest.h>

#include "fidelity/error_profile.hh"
#include "fidelity/persist_fidelity.hh"
#include "obs/metrics.hh"
#include "serve/context.hh"
#include "serve/coordinator.hh"
#include "serve/lease.hh"
#include "serve/protocol.hh"
#include "serve/spawn.hh"
#include "serve/store.hh"
#include "sim/population.hh"
#include "stats/persist.hh"
#include "stats/persist_v3.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using serve::CompleteResult;
using serve::LeaseClock;
using serve::LeaseOptions;
using serve::LeaseTable;
using serve::ShardState;

// -------------------------------------------------------------------
// LeaseTable: lifecycle edge cases, unit-tested with an injected
// clock (no sleeps).
// -------------------------------------------------------------------

LeaseOptions
fastOpts()
{
    LeaseOptions o;
    o.ttl = 100ms;
    o.backoffBase = 10ms;
    o.backoffCap = 80ms;
    o.quarantineAfter = 2;
    return o;
}

TEST(LeaseTableTest, GrantsLowestPendingInOrder)
{
    LeaseTable t(3, fastOpts());
    const auto now = LeaseClock::now();
    const auto a = t.acquire(now);
    const auto b = t.acquire(now);
    const auto c = t.acquire(now);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(a->shard, 0u);
    EXPECT_EQ(b->shard, 1u);
    EXPECT_EQ(c->shard, 2u);
    EXPECT_FALSE(t.acquire(now)); // everything leased
    EXPECT_EQ(t.activeLeases(), 3u);
}

TEST(LeaseTableTest, HeartbeatRenewsDeadline)
{
    LeaseTable t(1, fastOpts());
    const auto t0 = LeaseClock::now();
    const auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    // Renew just before expiry; the old deadline must not fire.
    EXPECT_TRUE(t.heartbeat(g->leaseId, t0 + 90ms));
    EXPECT_TRUE(t.expire(t0 + 150ms).empty());
    // ... but the renewed one does.
    const auto reclaimed = t.expire(t0 + 191ms);
    ASSERT_EQ(reclaimed.size(), 1u);
    EXPECT_EQ(reclaimed[0], g->leaseId);
    EXPECT_FALSE(t.heartbeat(g->leaseId, t0 + 200ms));
}

TEST(LeaseTableTest, ExpiryDuringFinalWriteIsStaleThenDuplicate)
{
    // The "heartbeat expiry during the final shard write" edge: the
    // lease expires while the worker is inside commitShard.  Its
    // late completion report must come back Stale (the shard may
    // already be re-leased), and once the re-run finishes, a second
    // zombie report must be Duplicate — never a double count.
    LeaseTable t(1, fastOpts());
    const auto t0 = LeaseClock::now();
    const auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    ASSERT_EQ(t.expire(t0 + 101ms).size(), 1u);
    EXPECT_EQ(t.complete(g->leaseId, g->shard),
              CompleteResult::Stale);
    EXPECT_EQ(t.doneCount(), 0u);

    // Re-lease after the backoff and complete for real.
    const auto g2 = t.acquire(t0 + 200ms);
    ASSERT_TRUE(g2);
    EXPECT_EQ(t.complete(g2->leaseId, g2->shard),
              CompleteResult::Committed);
    EXPECT_EQ(t.complete(g->leaseId, g->shard),
              CompleteResult::Duplicate);
    EXPECT_EQ(t.doneCount(), 1u);
    EXPECT_TRUE(t.succeeded());
}

TEST(LeaseTableTest, DuplicateCompletionIsIdempotent)
{
    LeaseTable t(1, fastOpts());
    const auto g = t.acquire(LeaseClock::now());
    ASSERT_TRUE(g);
    EXPECT_EQ(t.complete(g->leaseId, g->shard),
              CompleteResult::Committed);
    EXPECT_EQ(t.complete(g->leaseId, g->shard),
              CompleteResult::Duplicate);
    EXPECT_EQ(t.doneCount(), 1u);
}

TEST(LeaseTableTest, HaltStopsNewLeasesButDrainsInFlight)
{
    LeaseTable t(3, fastOpts());
    const auto t0 = LeaseClock::now();
    const auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    t.halt();
    EXPECT_TRUE(t.halted());
    // No new work after a halt, even with shards still pending.
    EXPECT_FALSE(t.acquire(t0));
    // The in-flight lease keeps its deadline and still commits.
    EXPECT_FALSE(t.finished());
    EXPECT_TRUE(t.heartbeat(g->leaseId, t0 + 50ms));
    EXPECT_EQ(t.complete(g->leaseId, g->shard),
              CompleteResult::Committed);
    EXPECT_EQ(t.doneCount(), 1u);
    // Finished once the last lease drains, without the other two
    // shards ever running; the partial result is not a success.
    EXPECT_TRUE(t.finished());
    EXPECT_FALSE(t.succeeded());
}

TEST(LeaseTableTest, HaltWithNoLeasesFinishesImmediately)
{
    LeaseTable t(2, fastOpts());
    EXPECT_FALSE(t.finished());
    t.halt();
    EXPECT_TRUE(t.finished());
    EXPECT_FALSE(t.succeeded());
    EXPECT_EQ(t.doneCount(), 0u);
}

TEST(LeaseTableTest, WrongShardReportRequeuesHeldShard)
{
    LeaseTable t(2, fastOpts());
    const auto t0 = LeaseClock::now();
    const auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    EXPECT_EQ(t.complete(g->leaseId, 1), CompleteResult::Stale);
    EXPECT_EQ(t.shardState(0), ShardState::Pending);
    EXPECT_EQ(t.doneCount(), 0u);
}

TEST(LeaseTableTest, BackoffIsExponentialAndCapped)
{
    LeaseOptions o = fastOpts();
    o.quarantineAfter = 10; // keep requeuing
    LeaseTable t(1, o);
    const auto t0 = LeaseClock::now();

    // Death 1: backoff = base = 10ms.
    auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    t.fail(g->leaseId, t0);
    EXPECT_FALSE(t.acquire(t0 + 9ms));
    g = t.acquire(t0 + 10ms);
    ASSERT_TRUE(g);

    // Death 2: backoff doubles to 20ms.
    t.fail(g->leaseId, t0 + 10ms);
    EXPECT_FALSE(t.acquire(t0 + 29ms));
    g = t.acquire(t0 + 30ms);
    ASSERT_TRUE(g);

    // Deaths 3..5: 40ms, then capped at 80ms.
    t.fail(g->leaseId, t0);
    g = t.acquire(t0 + 40ms);
    ASSERT_TRUE(g);
    t.fail(g->leaseId, t0);
    EXPECT_FALSE(t.acquire(t0 + 79ms)); // 2^3*10 = 80ms (cap)
    g = t.acquire(t0 + 80ms);
    ASSERT_TRUE(g);
    t.fail(g->leaseId, t0);
    EXPECT_FALSE(t.acquire(t0 + 79ms)); // still the cap
    EXPECT_TRUE(t.acquire(t0 + 80ms));
}

TEST(LeaseTableTest, PoisonShardQuarantinedAfterTwoDeaths)
{
    LeaseTable t(2, fastOpts());
    const auto t0 = LeaseClock::now();
    auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    t.fail(g->leaseId, t0);
    EXPECT_EQ(t.shardState(0), ShardState::Pending);
    g = t.acquire(t0 + 50ms);
    ASSERT_TRUE(g);
    ASSERT_EQ(g->shard, 0u);
    t.fail(g->leaseId, t0 + 50ms);
    EXPECT_EQ(t.shardState(0), ShardState::Quarantined);
    EXPECT_EQ(t.quarantinedCount(), 1u);

    // The table still finishes (Failed overall, not wedged).
    g = t.acquire(t0 + 50ms);
    ASSERT_TRUE(g);
    ASSERT_EQ(g->shard, 1u);
    EXPECT_EQ(t.complete(g->leaseId, 1),
              CompleteResult::Committed);
    EXPECT_TRUE(t.finished());
    EXPECT_FALSE(t.succeeded());
}

TEST(LeaseTableTest, MarkDoneCoversDedupAndRestartResume)
{
    LeaseTable t(3, fastOpts());
    EXPECT_TRUE(t.markDone(1));  // store already has it
    EXPECT_FALSE(t.markDone(1)); // idempotent
    EXPECT_EQ(t.doneCount(), 1u);

    // A quarantined shard whose file later shows up in the store
    // (another campaign computed it) is un-poisoned.
    const auto t0 = LeaseClock::now();
    for (int i = 0; i < 2; ++i) {
        const auto g = t.acquire(t0 + i * 100ms);
        ASSERT_TRUE(g);
        ASSERT_EQ(g->shard, 0u);
        t.fail(g->leaseId, t0);
    }
    ASSERT_EQ(t.shardState(0), ShardState::Quarantined);
    EXPECT_TRUE(t.markDone(0));
    EXPECT_EQ(t.quarantinedCount(), 0u);
    EXPECT_EQ(t.shardState(0), ShardState::Done);
}

TEST(LeaseTableTest, ExtendAllCompensatesCoordinatorStall)
{
    LeaseTable t(1, fastOpts());
    const auto t0 = LeaseClock::now();
    const auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    // A 1s coordinator stall (e.g. model build) must not expire the
    // worker's 100ms lease once compensated.
    t.extendAll(1000ms);
    EXPECT_TRUE(t.expire(t0 + 1050ms).empty());
    ASSERT_EQ(t.expire(t0 + 1101ms).size(), 1u);
}

TEST(LeaseTableTest, NextEventTracksDeadlinesAndBackoffs)
{
    LeaseTable t(2, fastOpts());
    EXPECT_FALSE(t.nextEvent()); // nothing time-driven yet
    const auto t0 = LeaseClock::now();
    const auto g = t.acquire(t0);
    ASSERT_TRUE(g);
    ASSERT_TRUE(t.nextEvent());
    EXPECT_EQ(*t.nextEvent(), t0 + 100ms);
    t.fail(g->leaseId, t0); // backoff gate at t0 + 10ms
    ASSERT_TRUE(t.nextEvent());
    EXPECT_EQ(*t.nextEvent(), t0 + 10ms);
}

// -------------------------------------------------------------------
// Wire protocol: round-trips and hostile input.
// -------------------------------------------------------------------

serve::CampaignSpec
sampleSpec()
{
    serve::CampaignSpec s;
    s.cores = 2;
    s.targetUops = 20000;
    s.seed = 42;
    s.firstRank = 3;
    s.lastRank = 17;
    s.shardRows = 4;
    s.policies = {"LRU", "RND"};
    s.benchmarks = {"povray", "gromacs", "mcf"};
    return s;
}

TEST(ServeProtocolTest, SpecRoundTrips)
{
    serve::WireWriter w;
    serve::encodeSpec(w, sampleSpec());
    serve::WireReader r(w.bytes());
    const serve::CampaignSpec back = serve::decodeSpec(r);
    r.expectEnd();
    EXPECT_EQ(back, sampleSpec());
}

TEST(ServeProtocolTest, LeaseRoundTrips)
{
    serve::LeaseMsg m;
    m.leaseId = 7;
    m.campaignId = 3;
    m.shard = 12;
    m.ttlMs = 2500;
    m.fingerprint = 0xdeadbeefcafef00dULL;
    m.dir = "/tmp/store/c-abc-def";
    m.spec = sampleSpec();
    const serve::LeaseMsg back = serve::decodeLease(serve::encodeLease(m));
    EXPECT_EQ(back.leaseId, m.leaseId);
    EXPECT_EQ(back.campaignId, m.campaignId);
    EXPECT_EQ(back.shard, m.shard);
    EXPECT_EQ(back.ttlMs, m.ttlMs);
    EXPECT_EQ(back.fingerprint, m.fingerprint);
    EXPECT_EQ(back.dir, m.dir);
    EXPECT_EQ(back.spec, m.spec);
}

TEST(ServeProtocolTest, StatusRoundTrips)
{
    serve::StatusMsg m;
    m.state = serve::CampaignState::Failed;
    m.shardsTotal = 5;
    m.shardsDone = 4;
    m.shardsDeduped = 2;
    m.shardsQuarantined = 1;
    m.leasesActive = 3;
    m.dir = "/store/c-1-2";
    m.message = "1 shard(s) quarantined as poison";
    const serve::StatusMsg back =
        serve::decodeStatus(serve::encodeStatus(m));
    EXPECT_EQ(back.state, m.state);
    EXPECT_EQ(back.shardsTotal, m.shardsTotal);
    EXPECT_EQ(back.shardsDone, m.shardsDone);
    EXPECT_EQ(back.shardsDeduped, m.shardsDeduped);
    EXPECT_EQ(back.shardsQuarantined, m.shardsQuarantined);
    EXPECT_EQ(back.leasesActive, m.leasesActive);
    EXPECT_EQ(back.dir, m.dir);
    EXPECT_EQ(back.message, m.message);
}

TEST(ServeProtocolTest, FrameBufferReassemblesByteByByte)
{
    serve::WireWriter w;
    serve::encodeSpec(w, sampleSpec());
    const std::string frame =
        serve::encodeFrame(serve::MsgType::Submit, w.bytes());

    serve::FrameBuffer fb;
    for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
        fb.feed(frame.data() + i, 1);
        EXPECT_FALSE(fb.next()) << "frame popped early at byte " << i;
    }
    fb.feed(frame.data() + frame.size() - 1, 1);
    const auto f = fb.next();
    ASSERT_TRUE(f);
    EXPECT_EQ(f->type, serve::MsgType::Submit);
    serve::WireReader r(f->body);
    EXPECT_EQ(serve::decodeSpec(r), sampleSpec());
}

TEST(ServeProtocolTest, FrameBufferPopsBackToBackFrames)
{
    const std::string two =
        serve::encodeFrame(serve::MsgType::RequestLease, "") +
        serve::encodeFrame(serve::MsgType::Shutdown, "");
    serve::FrameBuffer fb;
    fb.feed(two.data(), two.size());
    auto a = fb.next();
    auto b = fb.next();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->type, serve::MsgType::RequestLease);
    EXPECT_EQ(b->type, serve::MsgType::Shutdown);
    EXPECT_FALSE(fb.next());
}

TEST(ServeProtocolTest, OversizedLengthPrefixThrows)
{
    // A desynchronized or hostile peer announcing a 64 MiB frame.
    const std::uint32_t huge = 64u << 20;
    char hdr[4];
    std::memcpy(hdr, &huge, 4);
    serve::FrameBuffer fb;
    fb.feed(hdr, 4);
    EXPECT_THROW(fb.next(), serve::ProtocolError);
}

TEST(ServeProtocolTest, TruncatedBodiesThrowEverywhere)
{
    serve::WireWriter w;
    serve::encodeSpec(w, sampleSpec());
    const std::string full = w.bytes();
    // Every proper prefix must fail loudly, never read past the
    // end: a peer can be SIGKILLed at any byte of a send.
    for (std::size_t len = 0; len < full.size(); ++len) {
        serve::WireReader r(std::string_view(full).substr(0, len));
        EXPECT_THROW(
            {
                serve::decodeSpec(r);
                r.expectEnd();
            },
            serve::ProtocolError)
            << "prefix length " << len;
    }
    const std::string lease_full =
        serve::encodeLease([] {
            serve::LeaseMsg m;
            m.spec = sampleSpec();
            m.dir = "/d";
            return m;
        }());
    for (std::size_t len = 0; len < lease_full.size(); ++len)
        EXPECT_THROW(serve::decodeLease(
                         std::string_view(lease_full).substr(0, len)),
                     serve::ProtocolError)
            << "prefix length " << len;
}

TEST(ServeProtocolTest, TrailingGarbageRejected)
{
    serve::StatusMsg m;
    m.dir = "/d";
    std::string body = serve::encodeStatus(m);
    body.push_back('\0');
    EXPECT_THROW(serve::decodeStatus(body), serve::ProtocolError);
}

// -------------------------------------------------------------------
// Result store: addressing, idempotent commits, corruption
// quarantine, and the two-process directory race.
// -------------------------------------------------------------------

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

persist::V3Manifest
tinyManifest()
{
    persist::V3Manifest m;
    m.fingerprint = 0x5eed;
    m.simulator = "badco";
    m.cores = 2;
    m.targetUops = 1000;
    m.instructions = 0;
    m.policies = {"LRU", "RND"};
    m.benchmarks = {"a", "b"};
    m.refIpc = {1.0, 1.0};
    m.popBenchmarks = 2;
    m.popCores = 2;
    m.firstRank = 0;
    m.lastRank = 3;
    m.shardRows = 2; // shard 0: 2 rows, shard 1: 1 row
    return m;
}

std::vector<double>
shardPayload(const persist::V3Manifest &m, std::uint64_t shard)
{
    std::vector<double> p(m.rowsInShard(shard) * m.policies.size() *
                          m.cores);
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = static_cast<double>(shard * 100 + i) * 0.25;
    return p;
}

class ServeStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = (fs::temp_directory_path() /
                 (std::string("wsel_serve_store_") + info->name()))
                    .string();
        fs::remove_all(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    std::string root_;
};

TEST_F(ServeStoreTest, GeometryHashCoversSeedAndGeometry)
{
    const auto h = serve::campaignGeometryHash(1, 0, 100, 16);
    EXPECT_EQ(h, serve::campaignGeometryHash(1, 0, 100, 16));
    // The V3Manifest omits the base seed, so the geometry hash MUST
    // separate campaigns that differ only in seed.
    EXPECT_NE(h, serve::campaignGeometryHash(2, 0, 100, 16));
    EXPECT_NE(h, serve::campaignGeometryHash(1, 1, 100, 16));
    EXPECT_NE(h, serve::campaignGeometryHash(1, 0, 101, 16));
    EXPECT_NE(h, serve::campaignGeometryHash(1, 0, 100, 8));
}

TEST_F(ServeStoreTest, CampaignDirIsContentAddressed)
{
    serve::ResultStore store(root_);
    const std::string d1 = store.campaignDir(0xabc, 0x123);
    EXPECT_EQ(d1, store.campaignDir(0xabc, 0x123));
    EXPECT_NE(d1, store.campaignDir(0xabd, 0x123));
    EXPECT_NE(d1, store.campaignDir(0xabc, 0x124));
    EXPECT_EQ(d1.find(root_), 0u);
}

TEST_F(ServeStoreTest, CommitShardIsIdempotent)
{
    serve::ResultStore store(root_);
    const auto m = tinyManifest();
    const std::string dir = store.campaignDir(m.fingerprint, 1);
    store.ensureCampaignDir(dir);
    const auto payload = shardPayload(m, 0);

    EXPECT_FALSE(serve::ResultStore::hasShard(dir, m, 0));
    EXPECT_TRUE(serve::ResultStore::commitShard(
        dir, m, 0, {payload.data(), payload.size()}));
    EXPECT_TRUE(serve::ResultStore::hasShard(dir, m, 0));
    const std::string first =
        readFileBytes(persist::v3ShardPath(dir, 0));

    // The second commit (zombie worker, overlapping campaign) is a
    // no-op and leaves the bytes untouched.
    EXPECT_FALSE(serve::ResultStore::commitShard(
        dir, m, 0, {payload.data(), payload.size()}));
    EXPECT_EQ(readFileBytes(persist::v3ShardPath(dir, 0)), first);
}

TEST_F(ServeStoreTest, CorruptShardQuarantinedAndRecomputable)
{
    serve::ResultStore store(root_);
    const auto m = tinyManifest();
    const std::string dir = store.campaignDir(m.fingerprint, 1);
    store.ensureCampaignDir(dir);
    const auto payload = shardPayload(m, 0);
    ASSERT_TRUE(serve::ResultStore::commitShard(
        dir, m, 0, {payload.data(), payload.size()}));

    // Flip one payload byte; hasShard must reject AND move the file
    // aside so a re-commit can land.
    const std::string path = persist::v3ShardPath(dir, 0);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(40);
        char c = 0;
        f.seekg(40);
        f.get(c);
        c ^= 0x10;
        f.seekp(40);
        f.put(c);
    }
    EXPECT_FALSE(serve::ResultStore::hasShard(dir, m, 0));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
    EXPECT_TRUE(serve::ResultStore::commitShard(
        dir, m, 0, {payload.data(), payload.size()}));
    EXPECT_TRUE(serve::ResultStore::hasShard(dir, m, 0));
}

TEST_F(ServeStoreTest, ManifestCommitCompletesCampaign)
{
    serve::ResultStore store(root_);
    const auto m = tinyManifest();
    const std::string dir =
        store.campaignDir(m.fingerprint, 0x77);
    store.ensureCampaignDir(dir);
    EXPECT_FALSE(serve::ResultStore::isComplete(dir));
    for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
        const auto p = shardPayload(m, s);
        serve::ResultStore::commitShard(dir, m, s,
                                        {p.data(), p.size()});
    }
    EXPECT_FALSE(serve::ResultStore::isComplete(dir));
    serve::ResultStore::commitManifest(dir, m);
    EXPECT_TRUE(serve::ResultStore::isComplete(dir));
    // Idempotent re-commit (a second overlapping campaign
    // finishing later).
    serve::ResultStore::commitManifest(dir, m);
    EXPECT_TRUE(serve::ResultStore::isComplete(dir));
}

TEST_F(ServeStoreTest, TwoProcessDirectoryCreationRace)
{
    // Two real processes race persist::ensureDirTree on the same
    // deep tree; EEXIST at any component must not fail either one.
    const std::string deep = root_ + "/a/b/c/d/e";
    const std::string worker = serve::findWorkerBinary();
    std::vector<pid_t> pids;
    for (int i = 0; i < 2; ++i)
        pids.push_back(serve::spawnProcess(
            {worker, "--mkdir-race", deep}));
    for (const pid_t pid : pids) {
        const int status = serve::waitProcess(pid);
        EXPECT_TRUE(serve::exitedCleanly(status))
            << serve::describeExit(status);
    }
    EXPECT_TRUE(fs::is_directory(deep));
}

// -------------------------------------------------------------------
// End-to-end: coordinator + real worker processes, with SIGKILL
// fault injection.  The model cache is shared across the suite so
// the BADCO models are built once.
// -------------------------------------------------------------------

/** In-process coordinator on a background thread. */
class Service
{
  public:
    explicit Service(const serve::CoordinatorOptions &opts)
        : coordinator_(opts), thread_([this] {
              try {
                  rc_ = coordinator_.run();
              } catch (const std::exception &e) {
                  ADD_FAILURE() << "coordinator died: " << e.what();
              }
          })
    {}

    ~Service() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            coordinator_.requestStop();
            thread_.join();
        }
    }

    int exitCode() const { return rc_; }

  private:
    serve::Coordinator coordinator_;
    int rc_ = -1;
    std::thread thread_;
};

class ServeDistributedTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        obs::enableMetrics();
        cacheDir_ = (fs::temp_directory_path() /
                     "wsel_serve_test_model_cache")
                        .string();
        fs::create_directories(cacheDir_);
    }

    static void
    TearDownTestSuite()
    {
        obs::enableMetrics(false);
        fs::remove_all(cacheDir_);
    }

    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_serve_e2e_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        socket_ = dir_ + "/serve.sock";
    }

    void TearDown() override { fs::remove_all(dir_); }

    /**
     * 4 benchmarks x 2 cores -> 10 workloads; 2 rows/shard -> 5
     * shards of 2x2x2 = 8 cells each (4 "population.cell" fault
     * hits per shard, one per workload x policy).
     */
    static serve::CampaignSpec
    tinySpec()
    {
        serve::CampaignSpec s;
        s.cores = 2;
        s.targetUops = 20000;
        s.seed = 1;
        s.firstRank = 0;
        s.lastRank = 0; // full population
        s.shardRows = 2;
        s.policies = {"LRU", "RND"};
        s.benchmarks = {"povray", "gromacs", "gcc", "mcf"};
        return s;
    }

    serve::CoordinatorOptions
    coordinatorOptions()
    {
        serve::CoordinatorOptions o;
        o.socketPath = socket_;
        o.storeRoot = dir_ + "/store";
        o.cacheDir = cacheDir_;
        o.lease.backoffBase = std::chrono::milliseconds(10);
        return o;
    }

    pid_t
    spawnWorker(const std::vector<std::string> &extra_env = {})
    {
        return serve::spawnProcess(
            {serve::findWorkerBinary(), "--socket", socket_,
             "--cache-dir", cacheDir_},
            extra_env);
    }

    static void
    expectKilled(pid_t pid)
    {
        const int status = serve::waitProcess(pid);
        EXPECT_TRUE(WIFSIGNALED(status) &&
                    WTERMSIG(status) == SIGKILL)
            << serve::describeExit(status);
    }

    static void
    expectClean(pid_t pid)
    {
        const int status = serve::waitProcess(pid);
        EXPECT_TRUE(serve::exitedCleanly(status))
            << serve::describeExit(status);
    }

    /**
     * The uninterrupted serial reference: simulate every shard
     * in this process and commit it to @p dir.
     */
    persist::V3Manifest
    writeReference(const serve::CampaignSpec &spec,
                   const std::string &dir)
    {
        serve::CampaignContext ctx(spec, cacheDir_);
        const persist::V3Manifest &m = ctx.manifest();
        persist::ensureDirTree(dir);
        std::vector<double> payload;
        for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
            simulatePopulationShard(m, ctx.population(),
                                    ctx.uncores(), ctx.models(),
                                    ctx.seed(), s, payload);
            serve::ResultStore::commitShard(
                dir, m, s, {payload.data(), payload.size()});
        }
        serve::ResultStore::commitManifest(dir, m);
        return m;
    }

    /** Counter value out of the metrics JSON (-1 when absent). */
    static double
    counterValue(const std::string &json, const std::string &name)
    {
        const std::string key = "\"name\": \"" + name + "\"";
        const std::size_t at = json.find(key);
        if (at == std::string::npos)
            return -1.0;
        const std::string vkey = "\"value\": ";
        const std::size_t v = json.find(vkey, at);
        if (v == std::string::npos)
            return -1.0;
        return std::strtod(json.c_str() + v + vkey.size(), nullptr);
    }

    static std::string cacheDir_;
    std::string dir_;
    std::string socket_;
};

std::string ServeDistributedTest::cacheDir_;

TEST_F(ServeDistributedTest, KilledWorkersRecoverBitwiseIdentical)
{
    const serve::CampaignSpec spec = tinySpec();

    // Serial reference first (also warms the shared model cache).
    const persist::V3Manifest m =
        writeReference(spec, dir_ + "/reference");

    Service service(coordinatorOptions());
    serve::Client client(socket_);
    const std::uint64_t id = client.submit(spec);

    // One worker SIGKILLed mid-shard at a randomized cell, one
    // SIGKILLed at the shard boundary: after commitShard but
    // before its Done report (the zombie-commit window).
    std::mt19937_64 rng(static_cast<std::uint64_t>(
        ::testing::UnitTest::GetInstance()->random_seed()));
    const std::uint64_t nth =
        std::uniform_int_distribution<std::uint64_t>(1, 4)(rng);
    const pid_t mid_shard_victim = spawnWorker(
        {"WSEL_KILL_POINT=population.cell:" + std::to_string(nth)});
    const pid_t boundary_victim =
        spawnWorker({"WSEL_KILL_POINT=serve.shard-committed:1"});
    expectKilled(mid_shard_victim);
    expectKilled(boundary_victim);

    // Two healthy workers finish the campaign.
    const pid_t w1 = spawnWorker();
    const pid_t w2 = spawnWorker();
    const serve::StatusMsg st = client.waitFinished(id);
    EXPECT_EQ(st.state, serve::CampaignState::Done) << st.message;
    EXPECT_EQ(st.shardsTotal, m.shardCount());
    EXPECT_EQ(st.shardsDone, m.shardCount());
    EXPECT_EQ(st.shardsQuarantined, 0u);
    // The boundary victim committed its shard before dying, so the
    // re-lease found the file already present: a dedup.
    EXPECT_GE(st.shardsDeduped, 1u);

    service.stop(); // drain: healthy workers get Shutdown
    expectClean(w1);
    expectClean(w2);
    EXPECT_EQ(service.exitCode(), 0);

    // The recovered campaign must be indistinguishable from the
    // uninterrupted serial run, byte for byte.
    ASSERT_TRUE(serve::ResultStore::isComplete(st.dir));
    for (std::uint64_t s = 0; s < m.shardCount(); ++s) {
        EXPECT_EQ(
            readFileBytes(persist::v3ShardPath(st.dir, s)),
            readFileBytes(
                persist::v3ShardPath(dir_ + "/reference", s)))
            << "shard " << s << " differs (kill nth=" << nth << ")";
    }
}

TEST_F(ServeDistributedTest, OverlappingCampaignDedupsAllShards)
{
    const serve::CampaignSpec spec = tinySpec();
    Service service(coordinatorOptions());

    serve::Client client(socket_);
    const pid_t w = spawnWorker();
    const std::uint64_t first = client.submit(spec);
    const serve::StatusMsg st1 = client.waitFinished(first);
    ASSERT_EQ(st1.state, serve::CampaignState::Done) << st1.message;
    EXPECT_EQ(st1.shardsDeduped, 0u);

    const double dedup_before =
        counterValue(client.metricsJson(), "serve.dedup_hits");

    // Same physics, same geometry: the second campaign maps to the
    // same store directory and must recompute nothing.
    const std::uint64_t second = client.submit(spec);
    const serve::StatusMsg st2 = client.waitFinished(second);
    EXPECT_EQ(st2.state, serve::CampaignState::Done) << st2.message;
    EXPECT_EQ(st2.dir, st1.dir);
    EXPECT_EQ(st2.shardsDone, st2.shardsTotal);
    EXPECT_EQ(st2.shardsDeduped, st2.shardsTotal);

    const double dedup_after =
        counterValue(client.metricsJson(), "serve.dedup_hits");
    EXPECT_GE(dedup_after,
              dedup_before + static_cast<double>(st2.shardsTotal));

    // A different seed is a DIFFERENT campaign (the manifest omits
    // the seed; the geometry hash must not).
    serve::CampaignSpec reseeded = spec;
    reseeded.seed = 2;
    const std::uint64_t third = client.submit(reseeded);
    const serve::StatusMsg st3 = client.waitFinished(third);
    EXPECT_EQ(st3.state, serve::CampaignState::Done) << st3.message;
    EXPECT_NE(st3.dir, st1.dir);
    EXPECT_EQ(st3.shardsDeduped, 0u);

    service.stop();
    expectClean(w);
}

/**
 * Two-phase mixed-fidelity escalation end to end
 * (docs/FIDELITY.md): a BADCO campaign submitted with
 * --escalate-budget makes the coordinator, after the sweep
 * commits, compute the escalation set from the error profile
 * beside its cache and re-lease ONLY the suspect shards at
 * detailed fidelity; real worker processes run both phases.
 */
TEST_F(ServeDistributedTest, EscalationReleasesSuspectShardsDetailed)
{
    serve::CampaignSpec spec = tinySpec();
    spec.escalateBudget = 0.3; // ceil(0.3 * 10 rows) = 3
    spec.escalateQuantile = 0.9;

    // An empty profile for this spec's suite: every bound is +inf,
    // every row straddles, the budget alone picks the set.
    const std::string ppath =
        fidelity::errorProfilePath(cacheDir_);
    {
        serve::CampaignContext ctx(spec, cacheDir_);
        fidelity::writeErrorProfile(
            ppath, fidelity::ErrorProfile(ctx.suite()));
    }

    Service service(coordinatorOptions());
    serve::Client client(socket_);
    const std::uint64_t id = client.submit(spec);
    const pid_t w1 = spawnWorker();
    const pid_t w2 = spawnWorker();
    const serve::StatusMsg st = client.waitFinished(id);
    EXPECT_EQ(st.state, serve::CampaignState::Done) << st.message;

    // Read metrics while the daemon is still up: stop() drains it
    // and a drained daemon answers nothing.
    const double started = counterValue(
        client.metricsJson(), "serve.escalations_started");
    EXPECT_GE(started, 1.0);

    service.stop();
    expectClean(w1);
    expectClean(w2);
    fs::remove(ppath);

    // The final dir is the detailed-phase campaign: it holds the
    // committed escalation set...
    ASSERT_TRUE(fidelity::hasEscalationRecord(st.dir));
    const fidelity::EscalationRecord rec =
        fidelity::readEscalationRecord(st.dir);
    EXPECT_EQ(rec.escalatedCount, 3u);
    EXPECT_NEAR(rec.budgetFraction, 0.3, 1e-12);

    // ...and detailed shards exactly where the bitmap says — no
    // manifest (the campaign is deliberately partial) and no
    // shard that only holds non-escalated rows.
    serve::CampaignSpec dspec = spec;
    dspec.fidelity = 1;
    dspec.escalateBudget = 0.0;
    serve::CampaignContext dctx(dspec, cacheDir_);
    const persist::V3Manifest &dm = dctx.manifest();
    EXPECT_EQ(rec.detailedFingerprint, dm.fingerprint);
    EXPECT_FALSE(
        fs::exists(fs::path(st.dir) / "manifest.bin"));
    std::uint64_t flagged_shards = 0;
    for (std::uint64_t s = 0; s < dm.shardCount(); ++s) {
        const std::uint64_t first = dm.shardFirstRank(s);
        bool flagged = false;
        for (std::uint64_t r = 0; r < dm.rowsInShard(s); ++r)
            flagged = flagged || rec.escalated(first + r);
        EXPECT_EQ(fs::exists(persist::v3ShardPath(st.dir, s)),
                  flagged)
            << "shard " << s;
        flagged_shards += flagged ? 1 : 0;
    }
    EXPECT_EQ(st.shardsTotal, dm.shardCount());
    EXPECT_EQ(st.shardsDone, dm.shardCount()); // unflagged pre-done
    EXPECT_GE(flagged_shards, 2u); // 3 rows cannot fit in 1 shard

    // The escalated shards' bytes are exactly what a pure detailed
    // campaign of the same geometry produces.
    std::vector<double> payload;
    fs::create_directories(dir_ + "/detref");
    for (std::uint64_t s = 0; s < dm.shardCount(); ++s) {
        if (!fs::exists(persist::v3ShardPath(st.dir, s)))
            continue;
        simulateDetailedPopulationShard(
            dm, dctx.population(), dctx.coreConfig(),
            dctx.uncores(), dctx.suite(), dctx.seed(), s, payload);
        serve::ResultStore::commitShard(
            dir_ + "/detref", dm, s,
            {payload.data(), payload.size()});
        EXPECT_EQ(readFileBytes(persist::v3ShardPath(st.dir, s)),
                  readFileBytes(
                      persist::v3ShardPath(dir_ + "/detref", s)))
            << "shard " << s;
    }

    // The phase-0 BADCO campaign is complete in its own store dir
    // (the escalation never mutates the committed sweep).
    serve::CampaignContext bctx(spec, cacheDir_);
    serve::ResultStore store(dir_ + "/store");
    const std::string bdir = store.campaignDir(
        bctx.manifest().fingerprint, bctx.geometryHash());
    EXPECT_TRUE(serve::ResultStore::isComplete(bdir));
}

TEST_F(ServeDistributedTest, PoisonShardQuarantinedCampaignFails)
{
    const serve::CampaignSpec spec = tinySpec();
    Service service(coordinatorOptions());
    serve::Client client(socket_);
    const std::uint64_t id = client.submit(spec);

    // Two workers in a row die the moment they start shard 2; the
    // second death quarantines it instead of killing workers
    // forever.
    for (int i = 0; i < 2; ++i)
        expectKilled(
            spawnWorker({"WSEL_KILL_POINT=serve.shard-start:1",
                         "WSEL_KILL_SHARD=2"}));

    // A healthy worker finishes everything else; the campaign
    // completes as Failed, not wedged.
    const pid_t w = spawnWorker();
    const serve::StatusMsg st = client.waitFinished(id);
    EXPECT_EQ(st.state, serve::CampaignState::Failed);
    EXPECT_NE(st.message.find("quarantined"), std::string::npos)
        << st.message;
    EXPECT_EQ(st.shardsTotal, 5u);
    EXPECT_EQ(st.shardsDone, 4u);
    EXPECT_EQ(st.shardsQuarantined, 1u);

    // The store holds every good shard, no manifest (incomplete),
    // and no file for the poisoned shard.
    EXPECT_FALSE(serve::ResultStore::isComplete(st.dir));
    for (const std::uint64_t s : {0u, 1u, 3u, 4u})
        EXPECT_TRUE(fs::exists(persist::v3ShardPath(st.dir, s)))
            << "shard " << s;
    EXPECT_FALSE(fs::exists(persist::v3ShardPath(st.dir, 2)));

    service.stop();
    expectClean(w);
}

TEST_F(ServeDistributedTest, StopHaltsCampaignAndKeepsPaidShards)
{
    const serve::CampaignSpec spec = tinySpec();
    Service service(coordinatorOptions());
    serve::Client client(socket_);

    // Stopping an unknown campaign is rejected.
    EXPECT_THROW(client.stop(999), FatalError);

    // First campaign activates; an identical second one queues
    // behind it.  Stopping the queued one drops it before any
    // worker ever sees it.
    const std::uint64_t a = client.submit(spec);
    const std::uint64_t b = client.submit(spec);
    EXPECT_NE(client.stop(b).find("before activation"),
              std::string::npos);
    EXPECT_EQ(client.status(b).state,
              serve::CampaignState::Stopped);

    // A worker that dies right after committing its first shard
    // leaves one paid-for shard file in the store while the
    // campaign keeps running.
    expectKilled(
        spawnWorker({"WSEL_KILL_POINT=serve.shard-committed:1"}));

    // Stop the running campaign: no leases are in flight (the
    // victim's died with it), so it finalizes as Stopped, keeping
    // the committed shard.
    client.stop(a);
    const serve::StatusMsg sta = client.waitFinished(a);
    EXPECT_EQ(sta.state, serve::CampaignState::Stopped)
        << sta.message;
    EXPECT_NE(sta.message.find("stopped by client"),
              std::string::npos)
        << sta.message;
    EXPECT_FALSE(serve::ResultStore::isComplete(sta.dir));
    EXPECT_TRUE(fs::exists(persist::v3ShardPath(sta.dir, 0)));

    // A final campaign cannot be stopped again.
    EXPECT_THROW(client.stop(a), FatalError);

    // Resubmitting dedups the shard the stopped run already paid
    // for and completes the campaign.
    const pid_t w = spawnWorker();
    const serve::StatusMsg st =
        client.waitFinished(client.submit(spec));
    EXPECT_EQ(st.state, serve::CampaignState::Done) << st.message;
    EXPECT_EQ(st.dir, sta.dir);
    EXPECT_GE(st.shardsDeduped, 1u);

    EXPECT_GE(counterValue(client.metricsJson(),
                           "serve.campaigns_stopped"),
              2.0);

    service.stop();
    expectClean(w);
}

TEST_F(ServeDistributedTest, RestartedCoordinatorResumesFromStore)
{
    const serve::CampaignSpec spec = tinySpec();
    std::string campaign_dir;

    // First coordinator runs the campaign to completion ...
    {
        Service service(coordinatorOptions());
        serve::Client client(socket_);
        const pid_t w = spawnWorker();
        const serve::StatusMsg st =
            client.waitFinished(client.submit(spec));
        ASSERT_EQ(st.state, serve::CampaignState::Done)
            << st.message;
        campaign_dir = st.dir;
        service.stop();
        expectClean(w);
    }

    // ... then "crashes": simulate interrupted work by removing one
    // shard and the manifest (the manifest is only written once all
    // shards exist, so this is exactly a mid-campaign kill state).
    const std::string lost = persist::v3ShardPath(campaign_dir, 3);
    const std::string lost_bytes = readFileBytes(lost);
    fs::remove(lost);
    fs::remove(persist::v3ManifestPath(campaign_dir));
    ASSERT_FALSE(serve::ResultStore::isComplete(campaign_dir));

    // A fresh coordinator's admission scan must mark the surviving
    // shards done and lease only the missing one.
    Service service(coordinatorOptions());
    serve::Client client(socket_);
    const pid_t w = spawnWorker();
    const serve::StatusMsg st =
        client.waitFinished(client.submit(spec));
    EXPECT_EQ(st.state, serve::CampaignState::Done) << st.message;
    EXPECT_EQ(st.dir, campaign_dir);
    EXPECT_EQ(st.shardsDeduped, st.shardsTotal - 1);
    EXPECT_TRUE(serve::ResultStore::isComplete(campaign_dir));
    EXPECT_EQ(readFileBytes(lost), lost_bytes)
        << "recomputed shard differs from the original";

    service.stop();
    expectClean(w);
}

} // namespace

} // namespace wsel
