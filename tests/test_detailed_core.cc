/**
 * @file
 * Tests for the detailed out-of-order core model.
 */

#include <gtest/gtest.h>

#include "cpu/detailed_core.hh"
#include "mem/uncore.hh"
#include "stats/logging.hh"
#include "test_util.hh"
#include "trace/trace_store.hh"

namespace wsel
{

TEST(DetailedCore, ReachesTargetAndCountsCommits)
{
    PerfectUncore uncore(6);
    const CoreStats s =
        test::runSingleCore(test::lightProfile(), uncore, 20000);
    // The final tick may commit a few µops past the target (commit
    // width is 4), but never a full extra group.
    EXPECT_GE(s.committed, 20000u);
    EXPECT_LT(s.committed, 20004u);
    EXPECT_GT(s.cyclesToTarget, 0u);
}

TEST(DetailedCore, IpcBoundedByCommitWidth)
{
    PerfectUncore uncore(6);
    const CoreStats s =
        test::runSingleCore(test::lightProfile(), uncore, 20000);
    const double ipc = s.ipc(20000);
    EXPECT_GT(ipc, 0.05);
    EXPECT_LE(ipc, 4.0); // commit width
}

TEST(DetailedCore, DeterministicAcrossRuns)
{
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::LRU);
    Uncore u1(cfg, 1, 9), u2(cfg, 1, 9);
    const CoreStats a =
        test::runSingleCore(test::heavyProfile(), u1, 15000, 3);
    const CoreStats b =
        test::runSingleCore(test::heavyProfile(), u2, 15000, 3);
    EXPECT_EQ(a.cyclesToTarget, b.cyclesToTarget);
    EXPECT_EQ(a.dl1Misses, b.dl1Misses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST(DetailedCore, IdleSkippingPreservesTiming)
{
    // Driving the core with nextEventCycle() jumps must produce the
    // exact same cycle count as stepping every cycle.
    const BenchmarkProfile p = test::heavyProfile();
    UncoreConfig ucfg = UncoreConfig::forCores(4, PolicyKind::LRU);
    CoreConfig ccfg;
    const std::uint64_t target = 8000;

    Uncore u1(ucfg, 1, 5);
    DetailedCore skip(ccfg, TraceStore::global().cursor(p), u1, 0,
                      target, 1);
    std::uint64_t now = 0;
    while (!skip.reachedTarget()) {
        skip.tick(now);
        const std::uint64_t next = skip.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }

    Uncore u2(ucfg, 1, 5);
    DetailedCore step(ccfg, TraceStore::global().cursor(p), u2, 0,
                      target, 1);
    now = 0;
    while (!step.reachedTarget()) {
        step.tick(now);
        ++now;
    }

    EXPECT_EQ(skip.stats().cyclesToTarget,
              step.stats().cyclesToTarget);
    EXPECT_EQ(skip.stats().dl1Misses, step.stats().dl1Misses);
    EXPECT_EQ(skip.stats().uncoreLoads, step.stats().uncoreLoads);
}

TEST(DetailedCore, SlowerUncoreMeansMoreCycles)
{
    const BenchmarkProfile p = test::heavyProfile();
    PerfectUncore fast(6), slow(206);
    const CoreStats a = test::runSingleCore(p, fast, 10000);
    const CoreStats b = test::runSingleCore(p, slow, 10000);
    EXPECT_GT(b.cyclesToTarget, a.cyclesToTarget);
}

TEST(DetailedCore, MemoryHeavyProfileMissesMore)
{
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::LRU);
    Uncore u1(cfg, 1, 1), u2(cfg, 1, 1);
    const CoreStats light =
        test::runSingleCore(test::lightProfile(), u1, 20000);
    const CoreStats heavy =
        test::runSingleCore(test::heavyProfile(), u2, 20000);
    EXPECT_GT(heavy.dl1Misses, light.dl1Misses);
    EXPECT_GT(heavy.uncoreLoads, light.uncoreLoads);
}

TEST(DetailedCore, BranchStatsPopulated)
{
    PerfectUncore uncore(6);
    const CoreStats s =
        test::runSingleCore(test::lightProfile(), uncore, 20000);
    EXPECT_GT(s.branches, 1000u);
    EXPECT_GT(s.branchMispredicts, 0u);
    EXPECT_LT(s.branchMispredicts, s.branches / 2);
}

TEST(DetailedCore, ThreadRestartsAfterTarget)
{
    // Run a core past its target (multiprogram protocol): committed
    // keeps growing, cyclesToTarget freezes.
    const BenchmarkProfile p = test::lightProfile();
    PerfectUncore uncore(6);
    CoreConfig cfg;
    DetailedCore core(cfg, TraceStore::global().cursor(p), uncore,
                      0, 5000, 1);
    std::uint64_t now = 0;
    while (!core.reachedTarget())
        core.tick(now++);
    const std::uint64_t frozen = core.stats().cyclesToTarget;
    const std::uint64_t end = now + 20000;
    while (now < end)
        core.tick(now++);
    EXPECT_EQ(core.stats().cyclesToTarget, frozen);
    EXPECT_GT(core.stats().committed, 5000u);
}

/** Observer-based checks on the emitted uncore request stream. */
class EventCollector : public CoreObserver
{
  public:
    void
    onUncoreRequest(const UncoreRequestEvent &ev) override
    {
        events.push_back(ev);
    }

    std::vector<UncoreRequestEvent> events;
};

TEST(DetailedCore, ObserverSeesConsistentRequestStream)
{
    const BenchmarkProfile p = test::heavyProfile();
    PerfectUncore uncore(6);
    CoreConfig cfg;
    DetailedCore core(cfg, TraceStore::global().cursor(p), uncore,
                      0, 20000, 1);
    EventCollector obs;
    core.setObserver(&obs);
    std::uint64_t now = 0;
    while (!core.reachedTarget()) {
        core.tick(now);
        const std::uint64_t next = core.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
    }

    ASSERT_GT(obs.events.size(), 100u);
    std::int64_t data_loads = 0;
    for (const auto &ev : obs.events) {
        if (ev.isBlockingLoad() && !ev.isInstruction) {
            // Dependencies must reference earlier data loads only.
            EXPECT_LT(ev.dependsOn, data_loads);
            ++data_loads;
        }
        // Writebacks and prefetches never carry dependencies.
        if (ev.isWriteback || ev.isPrefetch) {
            EXPECT_EQ(ev.dependsOn, -1);
        }
    }
    EXPECT_GT(data_loads, 50);
}

TEST(DetailedCore, RejectsZeroTarget)
{
    const BenchmarkProfile p = test::lightProfile();
    PerfectUncore uncore(6);
    CoreConfig cfg;
    EXPECT_THROW(DetailedCore(cfg, TraceStore::global().cursor(p),
                              uncore, 0, 0, 1),
                 FatalError);
}

TEST(CoreConfig, DescribeMentionsTableIShape)
{
    CoreConfig cfg;
    const std::string d = cfg.describe();
    EXPECT_NE(d.find("4/6/4"), std::string::npos);
    EXPECT_NE(d.find("36/36/24/128"), std::string::npos);
}

} // namespace wsel
