/**
 * @file
 * End-to-end integration test: the paper's methodology in miniature
 * on a 2-core population — simulate with BADCO, estimate cv, check
 * the analytical confidence model against empirical resampling, and
 * verify that workload stratification needs fewer workloads than
 * random sampling.
 */

#include <gtest/gtest.h>

#include "core/confidence/confidence.hh"
#include "core/sampling/sampling.hh"
#include "sim/campaign.hh"
#include "stats/logging.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

/** Six-benchmark mini-suite spanning the three behaviour classes. */
std::vector<BenchmarkProfile>
miniSuite()
{
    std::vector<BenchmarkProfile> s;
    for (int i = 0; i < 3; ++i) {
        auto p = test::lightProfile(100 + i);
        p.name = "mini-light-" + std::to_string(i);
        p.hotBytes = (8 + 8 * i) * 1024;
        s.push_back(p);
    }
    for (int i = 0; i < 3; ++i) {
        auto p = test::heavyProfile(200 + i);
        p.name = "mini-heavy-" + std::to_string(i);
        p.streamFrac = 0.06 + 0.02 * i;
        p.l1Frac = 1.0 - p.hotFrac - p.streamFrac - p.randomFrac -
                   p.chaseFrac;
        s.push_back(p);
    }
    return s;
}

/** Shared fixture: one BADCO campaign over the full population. */
class MiniStudy : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const auto suite = miniSuite();
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), 2);
        store_ = new BadcoModelStore(CoreConfig{}, kTarget, 5);
        campaign_ = new Campaign(runBadcoCampaign(
            pop.enumerateAll(),
            {PolicyKind::LRU, PolicyKind::DRRIP}, 2, kTarget,
            *store_, suite));
    }

    static void
    TearDownTestSuite()
    {
        delete campaign_;
        delete store_;
        campaign_ = nullptr;
        store_ = nullptr;
    }

    static constexpr std::uint64_t kTarget = 25000;
    static Campaign *campaign_;
    static BadcoModelStore *store_;
};

Campaign *MiniStudy::campaign_ = nullptr;
BadcoModelStore *MiniStudy::store_ = nullptr;

} // namespace

TEST_F(MiniStudy, PopulationIsFullyCovered)
{
    EXPECT_EQ(campaign_->workloads.size(), 21u); // C(7,2)
    EXPECT_EQ(campaign_->policies.size(), 2u);
}

TEST_F(MiniStudy, ModelConfidenceMatchesEmpiricalResampling)
{
    // The §V-A validation: eq. (5) vs. measured confidence over
    // random samples, for each metric and several sample sizes.
    Rng rng(77);
    for (ThroughputMetric m : paperMetrics()) {
        const auto tx = campaign_->perWorkloadThroughputs(0, m);
        const auto ty = campaign_->perWorkloadThroughputs(1, m);
        const DifferenceStats ds = differenceStats(m, tx, ty);
        auto sampler = makeRandomSampler(tx.size());
        for (std::size_t w : {4u, 10u, 25u}) {
            const double model = modelConfidence(ds.cv, w);
            const double emp = empiricalConfidence(
                *sampler, w, 3000, m, tx, ty, rng);
            EXPECT_NEAR(emp, model, 0.08)
                << toString(m) << " W=" << w;
        }
    }
}

TEST_F(MiniStudy, MetricsAgreeOnTheWinner)
{
    // §V-C: on a large enough sample all metrics rank the two
    // policies identically (the magnitude of cv differs).
    double sign = 0.0;
    for (ThroughputMetric m : paperMetrics()) {
        const auto tx = campaign_->perWorkloadThroughputs(0, m);
        const auto ty = campaign_->perWorkloadThroughputs(1, m);
        const DifferenceStats ds = differenceStats(m, tx, ty);
        if (sign == 0.0)
            sign = ds.mu > 0 ? 1.0 : -1.0;
        EXPECT_GT(ds.mu * sign, 0.0) << toString(m);
    }
}

TEST_F(MiniStudy, StratificationNeedsFewerWorkloads)
{
    const ThroughputMetric m = ThroughputMetric::IPCT;
    const auto tx = campaign_->perWorkloadThroughputs(0, m);
    const auto ty = campaign_->perWorkloadThroughputs(1, m);
    const auto d = perWorkloadDifferences(m, tx, ty);

    auto rnd = makeRandomSampler(tx.size());
    WorkloadStrataConfig cfg;
    cfg.wt = 4;
    cfg.tsd = 1e-4;
    auto strat = makeWorkloadStratifiedSampler(d, cfg);

    Rng r1(5), r2(5);
    const std::size_t w = 6;
    const double c_rnd =
        empiricalConfidence(*rnd, w, 3000, m, tx, ty, r1);
    const double c_str =
        empiricalConfidence(*strat, w, 3000, m, tx, ty, r2);
    // Stratification must not be worse; in the common case it is
    // strictly better at small sizes.
    EXPECT_GE(c_str + 0.02, c_rnd);
}

TEST_F(MiniStudy, RequiredSampleSizeIsConsistent)
{
    // Drawing eq. (8)'s W random workloads should reach ~99.7%
    // confidence empirically (when W fits in the population many
    // times over, the approximation holds).
    const ThroughputMetric m = ThroughputMetric::WSU;
    const auto tx = campaign_->perWorkloadThroughputs(0, m);
    const auto ty = campaign_->perWorkloadThroughputs(1, m);
    const DifferenceStats ds = differenceStats(m, tx, ty);
    if (std::abs(ds.cv) < 1.5) {
        const std::size_t w = requiredSampleSize(ds.cv);
        auto sampler = makeRandomSampler(tx.size());
        Rng rng(9);
        const double emp = empiricalConfidence(*sampler, w, 2000, m,
                                               tx, ty, rng);
        EXPECT_GT(ds.mu > 0 ? emp : 1.0 - emp, 0.95);
    }
}

} // namespace wsel
