/**
 * @file
 * Compilation check of the umbrella header plus a smoke walk
 * through the top-level API surface it exposes.
 */

#include <gtest/gtest.h>

#include "wsel.hh"

namespace wsel
{

TEST(Umbrella, ExposesTheWholePublicSurface)
{
    // Touch one symbol from every module the umbrella pulls in.
    EXPECT_EQ(multisetCount(22, 4), 12650u);       // stats
    EXPECT_EQ(spec2006Suite().size(), 22u);        // trace
    EXPECT_EQ(toString(PolicyKind::DRRIP), "DRRIP"); // cache
    EXPECT_EQ(UncoreConfig::forCores(4, PolicyKind::LRU)
                  .llcHitLatency,
              6u);                                 // mem
    EXPECT_EQ(CoreConfig{}.robSize, 128u);         // cpu
    EXPECT_EQ(BadcoModel{}.window, 32u);           // badco
    EXPECT_EQ(toString(ThroughputMetric::HSU), "HSU"); // metrics
    EXPECT_EQ(requiredSampleSize(1.0), 8u);        // confidence
    EXPECT_EQ(WorkloadPopulation(22, 2).size(), 253u); // workload
    Rng rng(1);
    EXPECT_LT(rng.nextInt(10), 10u);               // rng
    auto sampler = makeRandomSampler(100);         // sampling
    EXPECT_EQ(sampler->name(), "random");
    ReportInput in;                                // report
    EXPECT_TRUE(in.configs.empty());
    const std::vector<std::vector<double>> f = {{1.0}, {2.0}};
    EXPECT_EQ(normalizeFeatures(f).size(), 2u);    // classify
}

} // namespace wsel
