/**
 * @file
 * Hostile-input tests for the campaign_v3 manifest reader: a
 * manifest is untrusted disk input (truncation, bit rot, a crafted
 * write), so readV3Manifest must answer every damaged byte stream
 * with CacheInvalid — never a crash, a giant allocation, or an
 * overflowed size computation.  Fuzz-ish coverage: every prefix
 * truncation, every single-byte bit flip, plus crafted manifests
 * whose individual fields lie about their bounds.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.hh"
#include "stats/logging.hh"
#include "stats/persist.hh"
#include "stats/persist_v3.hh"

namespace wsel
{

namespace
{

namespace fs = std::filesystem;

persist::V3Manifest
validManifest()
{
    persist::V3Manifest m;
    m.fingerprint = 0xfeedface12345678ULL;
    m.simulator = "badco";
    m.cores = 2;
    m.targetUops = 50000;
    m.simSeconds = 1.5;
    m.instructions = 123456;
    m.policies = {"LRU", "DIP"};
    m.benchmarks = {"alpha", "beta", "gamma"};
    m.refIpc = {1.0, 0.9, 1.1};
    m.popBenchmarks = 3;
    m.popCores = 2;
    m.firstRank = 0;
    m.lastRank = 6;
    m.shardRows = 2;
    return m;
}

class ManifestValidation : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("wsel_manifest_fuzz_") + info->name()))
                   .string();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string
    manifestBytes(const persist::V3Manifest &m)
    {
        persist::writeV3Manifest(dir_, m);
        std::ifstream in(persist::v3ManifestPath(dir_),
                         std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    void
    putManifestBytes(const std::string &bytes)
    {
        std::ofstream out(persist::v3ManifestPath(dir_),
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    /**
     * Overwrite the u64 field @p offset_from_body_end bytes before
     * the end of the manifest BODY (shardRows is 8, lastRank 16,
     * firstRank 24) and re-seal the trailing checksum — a crafted
     * manifest the trusted writer itself would refuse to produce.
     */
    std::string
    patchTailU64(std::string bytes,
                 std::size_t offset_from_body_end,
                 std::uint64_t value)
    {
        bytes.resize(bytes.size() - 8); // strip checksum
        const std::size_t at = bytes.size() - offset_from_body_end;
        for (int i = 0; i < 8; ++i)
            bytes[at + i] =
                static_cast<char>((value >> (8 * i)) & 0xff);
        const std::uint64_t sum = persist::fnv1a(bytes);
        for (int i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<char>((sum >> (8 * i)) & 0xff));
        return bytes;
    }

    std::string dir_;
};

TEST_F(ManifestValidation, IntactManifestRoundTrips)
{
    const persist::V3Manifest m = validManifest();
    manifestBytes(m);
    const persist::V3Manifest back = persist::readV3Manifest(dir_);
    EXPECT_EQ(back.fingerprint, m.fingerprint);
    EXPECT_EQ(back.policies, m.policies);
    EXPECT_EQ(back.benchmarks, m.benchmarks);
    EXPECT_EQ(back.lastRank, m.lastRank);
    EXPECT_EQ(back.shardRows, m.shardRows);
}

TEST_F(ManifestValidation, EveryTruncationRejected)
{
    const std::string full = manifestBytes(validManifest());
    ASSERT_GT(full.size(), 16u);
    for (std::size_t len = 0; len < full.size(); ++len) {
        putManifestBytes(full.substr(0, len));
        EXPECT_THROW(persist::readV3Manifest(dir_),
                     persist::CacheInvalid)
            << "accepted a manifest truncated to " << len
            << " of " << full.size() << " bytes";
    }
}

TEST_F(ManifestValidation, EverySingleBitFlipRejected)
{
    const std::string full = manifestBytes(validManifest());
    // The trailing FNV-1a covers every preceding byte and is itself
    // covered by the comparison, so ANY one-bit flip must surface
    // as CacheInvalid.
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string damaged = full;
            damaged[byte] =
                static_cast<char>(damaged[byte] ^ (1 << bit));
            putManifestBytes(damaged);
            EXPECT_THROW(persist::readV3Manifest(dir_),
                         persist::CacheInvalid)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// Crafted manifests: checksum-valid bytes whose fields lie.  The
// writer is the trusted side and does not validate, which lets the
// tests produce well-formed files with implausible contents.

TEST_F(ManifestValidation, ImplausibleCoreCountRejected)
{
    persist::V3Manifest m = validManifest();
    m.cores = 100000;
    manifestBytes(m);
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);
}

TEST_F(ManifestValidation, ImplausibleNameLengthsRejected)
{
    persist::V3Manifest m = validManifest();
    m.simulator = std::string(4096, 'x');
    manifestBytes(m);
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);

    m = validManifest();
    m.benchmarks[1] = std::string(100000, 'b');
    manifestBytes(m);
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);
}

TEST_F(ManifestValidation, InvertedRankRangeRejected)
{
    // The trusted writer refuses an inverted range, so forge one
    // behind its back: patch firstRank past lastRank and re-seal.
    const std::string full = manifestBytes(validManifest());
    putManifestBytes(patchTailU64(full, 24, 10)); // firstRank = 10
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);
}

TEST_F(ManifestValidation, ZeroShardRowsRejected)
{
    const std::string full = manifestBytes(validManifest());
    putManifestBytes(patchTailU64(full, 8, 0)); // shardRows = 0
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);
}

TEST_F(ManifestValidation, AbsurdRowCountRejected)
{
    persist::V3Manifest m = validManifest();
    m.lastRank = 1ULL << 49; // rows() over the 2^48 cap
    manifestBytes(m);
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);
}

TEST_F(ManifestValidation, ShardPayloadOverflowRejected)
{
    // shardRows x policies x cores would overflow the per-shard
    // payload bound even though each factor alone looks sane.
    persist::V3Manifest m = validManifest();
    m.shardRows = 1ULL << 40;
    m.lastRank = 1ULL << 41;
    manifestBytes(m);
    EXPECT_THROW(persist::readV3Manifest(dir_),
                 persist::CacheInvalid);
}

TEST_F(ManifestValidation, OversizedMaterializationRefusedByLoad)
{
    // A checksum-valid manifest may still describe a campaign too
    // large to materialize in memory; Campaign::load must refuse
    // BEFORE allocating the workload list or the IPC matrix, not
    // OOM first.  A 65536-benchmark 2-core population is ~2.1e9
    // workloads, so ranks up to 2^30 are inside the population but
    // 2^30 rows x 2 policies x 2 cores = 2^32 cells is over the
    // materialization cap.
    persist::V3Manifest m = validManifest();
    m.popBenchmarks = 65536;
    m.benchmarks.clear();
    m.refIpc.clear();
    for (std::uint32_t i = 0; i < m.popBenchmarks; ++i) {
        std::string name = "b";
        name += std::to_string(i);
        m.benchmarks.push_back(std::move(name));
        m.refIpc.push_back(1.0);
    }
    m.firstRank = 0;
    m.lastRank = 1ULL << 30;
    m.shardRows = 1ULL << 20;
    manifestBytes(m);
    // LoadMode::Strict wraps cache damage in FatalError; the point
    // here is that it throws promptly instead of allocating.
    EXPECT_THROW(Campaign::load(dir_), FatalError);
}

} // namespace

} // namespace wsel
