/**
 * @file
 * Stress tests: random workloads through both simulators under
 * every policy, asserting the structural invariants hold (no
 * crashes, sane IPCs, consistent counters).
 */

#include <gtest/gtest.h>

#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "stats/logging.hh"
#include "test_util.hh"

namespace wsel
{

namespace
{

std::vector<BenchmarkProfile>
stressSuite()
{
    std::vector<BenchmarkProfile> s;
    for (int i = 0; i < 3; ++i) {
        auto p = test::lightProfile(40 + i);
        p.name = "stress-light-" + std::to_string(i);
        s.push_back(p);
    }
    for (int i = 0; i < 3; ++i) {
        auto p = test::heavyProfile(50 + i);
        p.name = "stress-heavy-" + std::to_string(i);
        p.chaseFrac = 0.02 + 0.02 * i;
        p.randomFrac = 0.08 - 0.02 * i;
        s.push_back(p);
    }
    return s;
}

} // namespace

/** Each policy runs random workloads through the detailed sim. */
class DetailedStressTest
    : public ::testing::TestWithParam<PolicyKind>
{};

TEST_P(DetailedStressTest, RandomWorkloadsKeepInvariants)
{
    const auto suite = stressSuite();
    const std::uint64_t target = 6000;
    UncoreConfig ucfg = UncoreConfig::forCores(2, GetParam());
    DetailedMulticoreSim sim(CoreConfig{}, ucfg, 2, target);
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 2);
    Rng rng(77);
    for (int t = 0; t < 6; ++t) {
        const Workload w = pop.sampleUniform(rng);
        const SimResult r = sim.run(w, suite);
        ASSERT_EQ(r.ipc.size(), 2u);
        for (double ipc : r.ipc) {
            EXPECT_GT(ipc, 0.001);
            EXPECT_LE(ipc, 4.0);
        }
        EXPECT_GE(r.cycles, target / 4); // commit width bound
        EXPECT_EQ(r.instructions, 2 * target);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DetailedStressTest,
    ::testing::Values(PolicyKind::LRU, PolicyKind::Random,
                      PolicyKind::FIFO, PolicyKind::DIP,
                      PolicyKind::DRRIP),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return toString(info.param);
    });

/** Same sweep for the BADCO simulator, with more workloads. */
class BadcoStressTest : public ::testing::TestWithParam<PolicyKind>
{};

TEST_P(BadcoStressTest, RandomWorkloadsKeepInvariants)
{
    const auto suite = stressSuite();
    const std::uint64_t target = 12000;
    UncoreConfig ucfg = UncoreConfig::forCores(4, GetParam());
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency);
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim sim(ucfg, 4, target);
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 4);
    Rng rng(99);
    for (int t = 0; t < 25; ++t) {
        const Workload w = pop.sampleUniform(rng);
        const SimResult r = sim.run(w, models);
        ASSERT_EQ(r.ipc.size(), 4u);
        for (double ipc : r.ipc) {
            EXPECT_GT(ipc, 0.001);
            EXPECT_LE(ipc, 4.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, BadcoStressTest,
    ::testing::Values(PolicyKind::LRU, PolicyKind::Random,
                      PolicyKind::FIFO, PolicyKind::DIP,
                      PolicyKind::DRRIP),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return toString(info.param);
    });

TEST(Stress, ExtremeCoreCounts)
{
    // 1 core and 8 cores both work end to end.
    const auto suite = stressSuite();
    const std::uint64_t target = 5000;
    for (std::uint32_t k : {1u, 8u}) {
        UncoreConfig ucfg =
            UncoreConfig::forCores(k == 1 ? 2 : k, PolicyKind::DIP);
        BadcoModelStore store(CoreConfig{}, target,
                              ucfg.llcHitLatency);
        const auto models = store.getSuite(suite);
        BadcoMulticoreSim sim(ucfg, k, target);
        std::vector<std::uint32_t> ids;
        for (std::uint32_t i = 0; i < k; ++i)
            ids.push_back(i % static_cast<std::uint32_t>(
                                  suite.size()));
        const SimResult r = sim.run(Workload(ids), models);
        ASSERT_EQ(r.ipc.size(), k);
        for (double ipc : r.ipc)
            EXPECT_GT(ipc, 0.0);
    }
}

TEST(Stress, TinyTargetsStillTerminate)
{
    const auto suite = stressSuite();
    UncoreConfig ucfg = UncoreConfig::forCores(2, PolicyKind::LRU);
    DetailedMulticoreSim det(CoreConfig{}, ucfg, 2, 64);
    const SimResult r = det.run(Workload({0, 5}), suite);
    EXPECT_GT(r.ipc[0], 0.0);
    BadcoModelStore store(CoreConfig{}, 64, ucfg.llcHitLatency);
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim bad(ucfg, 2, 64);
    const SimResult b = bad.run(Workload({0, 5}), models);
    EXPECT_GT(b.ipc[0], 0.0);
}

} // namespace wsel
