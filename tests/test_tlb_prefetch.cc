/**
 * @file
 * Tests for the TLB and the prefetch engines.
 */

#include <gtest/gtest.h>

#include "cache/prefetcher.hh"
#include "cache/tlb.hh"
#include "stats/logging.hh"

namespace wsel
{

TEST(Tlb, HitAfterMiss)
{
    Tlb tlb(16, 4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same 4 kB page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
    EXPECT_EQ(tlb.accesses(), 4u);
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_DOUBLE_EQ(tlb.missRate(), 0.5);
}

TEST(Tlb, LruWithinSet)
{
    Tlb tlb(4, 4); // one set, 4 ways
    for (std::uint64_t p = 0; p < 4; ++p)
        tlb.access(p << 12);
    tlb.access(0 << 12); // touch page 0
    tlb.access(4ULL << 12); // evicts LRU = page 1
    EXPECT_TRUE(tlb.access(0 << 12));
    EXPECT_FALSE(tlb.access(1ULL << 12));
}

TEST(Tlb, CapacityWorksetFits)
{
    Tlb tlb(64, 4);
    for (int round = 0; round < 3; ++round)
        for (std::uint64_t p = 0; p < 64; ++p)
            tlb.access(p << 12);
    // First round cold, later rounds all hit.
    EXPECT_EQ(tlb.misses(), 64u);
}

TEST(Tlb, FlushInvalidates)
{
    Tlb tlb(16, 4);
    tlb.access(0x5000);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x5000));
}

TEST(Tlb, BadShapesFatal)
{
    EXPECT_THROW(Tlb(0, 4), FatalError);
    EXPECT_THROW(Tlb(10, 4), FatalError); // not divisible
    EXPECT_THROW(Tlb(24, 4), FatalError); // sets not power of two
}

TEST(NextLine, FiresOnMissOnly)
{
    auto p = makeNextLinePrefetcher(2);
    std::vector<std::uint64_t> out;
    p->observe(0x400, 100, false, out);
    EXPECT_TRUE(out.empty());
    p->observe(0x400, 100, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 101u);
    EXPECT_EQ(out[1], 102u);
}

TEST(IpStride, LearnsConstantStride)
{
    auto p = makeIpStridePrefetcher(64, 1);
    std::vector<std::uint64_t> out;
    const std::uint64_t pc = 0x400100;
    // Walk lines 10, 13, 16, 19...: stride 3.
    for (int i = 0; i < 3; ++i) {
        out.clear();
        p->observe(pc, 10 + 3 * i, true, out);
    }
    // By now confidence reached: next observation prefetches +3.
    out.clear();
    p->observe(pc, 19, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 22u);
}

TEST(IpStride, DoesNotFireOnIrregularPattern)
{
    auto p = makeIpStridePrefetcher(64, 1);
    std::vector<std::uint64_t> out;
    const std::uint64_t pc = 0x400104;
    const std::uint64_t lines[] = {5, 100, 7, 220, 3, 90, 11};
    for (std::uint64_t l : lines)
        p->observe(pc, l, true, out);
    EXPECT_TRUE(out.empty());
}

TEST(IpStride, IgnoresZeroPc)
{
    auto p = makeIpStridePrefetcher(64, 1);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 10; ++i)
        p->observe(0, 10 + i, true, out);
    EXPECT_TRUE(out.empty());
}

TEST(Stream, DetectsAscendingStream)
{
    auto p = makeStreamPrefetcher(4, 2);
    std::vector<std::uint64_t> out;
    p->observe(0, 100, true, out); // trainee
    EXPECT_TRUE(out.empty());
    p->observe(0, 101, true, out); // confirmed
    out.clear();
    p->observe(0, 102, true, out); // running
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 103u);
    EXPECT_EQ(out[1], 104u);
}

TEST(Stream, DetectsDescendingStream)
{
    auto p = makeStreamPrefetcher(4, 1);
    std::vector<std::uint64_t> out;
    p->observe(0, 500, true, out);
    p->observe(0, 499, true, out);
    out.clear();
    p->observe(0, 498, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 497u);
}

TEST(Stream, HitsDoNotTrain)
{
    auto p = makeStreamPrefetcher(4, 1);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 10; ++i)
        p->observe(0, 100 + i, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(Stream, TracksMultipleStreams)
{
    auto p = makeStreamPrefetcher(4, 1);
    std::vector<std::uint64_t> out;
    // Interleave two ascending streams.
    p->observe(0, 100, true, out);
    p->observe(0, 5000, true, out);
    p->observe(0, 101, true, out);
    p->observe(0, 5001, true, out);
    out.clear();
    p->observe(0, 102, true, out);
    p->observe(0, 5002, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 103u);
    EXPECT_EQ(out[1], 5003u);
}

TEST(Composite, MergesProposals)
{
    std::vector<std::unique_ptr<Prefetcher>> parts;
    parts.push_back(makeNextLinePrefetcher(1));
    parts.push_back(makeNextLinePrefetcher(2));
    auto p = makeCompositePrefetcher(std::move(parts));
    std::vector<std::uint64_t> out;
    p->observe(0, 10, true, out);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_NE(p->name().find("next-line"), std::string::npos);
}

TEST(Null, NeverProposes)
{
    auto p = makeNullPrefetcher();
    std::vector<std::uint64_t> out;
    p->observe(0x4, 10, true, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetchers, ResetClearsLearnedState)
{
    auto p = makeIpStridePrefetcher(64, 1);
    std::vector<std::uint64_t> out;
    const std::uint64_t pc = 0x40;
    for (int i = 0; i < 4; ++i)
        p->observe(pc, 10 + 3 * i, true, out);
    p->reset();
    out.clear();
    p->observe(pc, 100, true, out);
    EXPECT_TRUE(out.empty()); // must re-learn from scratch
}

} // namespace wsel
