/**
 * @file
 * Tests for the shared uncore timing model.
 */

#include <gtest/gtest.h>

#include "cache/tagscan.hh"
#include "mem/uncore.hh"
#include "stats/logging.hh"

namespace wsel
{

namespace
{

UncoreConfig
quietConfig()
{
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::LRU);
    cfg.streamPrefetch = false;
    cfg.ipStridePrefetch = false;
    return cfg;
}

} // namespace

TEST(UncoreConfig, TableIIShapes)
{
    const auto c2 = UncoreConfig::forCores(2, PolicyKind::LRU);
    const auto c4 = UncoreConfig::forCores(4, PolicyKind::DIP);
    const auto c8 = UncoreConfig::forCores(8, PolicyKind::DRRIP);
    // Scaled Table II: capacities double with core count, latency
    // grows 5/6/7, associativity and line size fixed.
    EXPECT_EQ(c4.llc.sizeBytes, 2 * c2.llc.sizeBytes);
    EXPECT_EQ(c8.llc.sizeBytes, 2 * c4.llc.sizeBytes);
    EXPECT_EQ(c2.llcHitLatency, 5u);
    EXPECT_EQ(c4.llcHitLatency, 6u);
    EXPECT_EQ(c8.llcHitLatency, 7u);
    for (const auto &c : {c2, c4, c8}) {
        EXPECT_EQ(c.llc.ways, 16u);
        EXPECT_EQ(c.llc.lineBytes, 64u);
        EXPECT_EQ(c.mshrs, 16u);
        EXPECT_EQ(c.writeBufferEntries, 8u);
        EXPECT_EQ(c.dramLatency, 200u);
    }
    EXPECT_EQ(c4.policy, PolicyKind::DIP);
    EXPECT_THROW(UncoreConfig::forCores(3, PolicyKind::LRU),
                 FatalError);
    EXPECT_FALSE(c4.describe().empty());
}

TEST(Uncore, HitLatencyAfterFill)
{
    Uncore u(quietConfig(), 1, 1);
    // Cold miss pays bus + DRAM + transfer after the LLC lookup.
    const auto &cfg = u.config();
    const std::uint64_t t0 = 1000;
    const std::uint64_t miss = u.access(t0, 0, 0x10000, false, 0);
    EXPECT_GE(miss - t0, cfg.llcHitLatency + cfg.dramLatency);
    // Re-access: pure LLC hit.
    const std::uint64_t t1 = miss + 100;
    const std::uint64_t hit = u.access(t1, 0, 0x10000, false, 0);
    EXPECT_EQ(hit - t1, cfg.llcHitLatency);
}

TEST(Uncore, MshrMergesSameLine)
{
    Uncore u(quietConfig(), 2, 1);
    const std::uint64_t c1 = u.access(100, 0, 0x40000, false, 0);
    // Another request to the same line while in flight completes at
    // the same time (no extra DRAM trip).
    const std::uint64_t c2 = u.access(101, 1, 0x40000, false, 0);
    EXPECT_GE(c2, c1); // but see below: per-core pages differ
    // Same core, same line: true merge.
    Uncore v(quietConfig(), 1, 1);
    const std::uint64_t d1 = v.access(100, 0, 0x40000, false, 0);
    const std::uint64_t d2 = v.access(101, 0, 0x40010, false, 0);
    EXPECT_EQ(d1, d2);
}

TEST(Uncore, PerCorePagesDoNotAlias)
{
    // The same virtual line from two cores must be two physical
    // lines: filling from core 0 must not give core 1 a hit.
    Uncore u(quietConfig(), 2, 1);
    u.access(100, 0, 0x40000, false, 0);
    const std::uint64_t far = 100000;
    const std::uint64_t c = u.access(far, 1, 0x40000, false, 0);
    EXPECT_GT(c - far, u.config().llcHitLatency); // missed
    EXPECT_EQ(u.coreStats(1).demandMisses, 1u);
}

TEST(Uncore, FirstTouchAllocationIsDeterministic)
{
    UncoreConfig cfg = quietConfig();
    Uncore a(cfg, 1, 1), b(cfg, 1, 1);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(a.access(i * 500, 0, i * 4096, false, 0),
                  b.access(i * 500, 0, i * 4096, false, 0));
    }
}

TEST(Uncore, FsbBandwidthSerializesMisses)
{
    UncoreConfig cfg = quietConfig();
    Uncore u(cfg, 1, 1);
    // Issue many misses at the same cycle: completions must be
    // spaced at least fsbCyclesPerTransfer apart.
    std::vector<std::uint64_t> comps;
    for (int i = 0; i < 8; ++i)
        comps.push_back(
            u.access(100, 0, 0x100000 + 4096 * i, false, 0));
    for (std::size_t i = 1; i < comps.size(); ++i)
        EXPECT_GE(comps[i] - comps[i - 1], cfg.fsbCyclesPerTransfer);
    EXPECT_GE(u.fsbBusyCycles(),
              8u * cfg.fsbCyclesPerTransfer);
}

TEST(Uncore, MshrCapacityStallsExtraMisses)
{
    UncoreConfig cfg = quietConfig();
    cfg.mshrs = 2;
    Uncore u(cfg, 1, 1);
    const std::uint64_t c1 =
        u.access(0, 0, 0x100000, false, 0);
    u.access(0, 0, 0x200000, false, 0);
    // Third concurrent miss must wait for an MSHR to free.
    const std::uint64_t c3 =
        u.access(1, 0, 0x300000, false, 0);
    EXPECT_GE(c3, c1);
}

TEST(Uncore, DemandMissCountsPerCore)
{
    Uncore u(quietConfig(), 2, 1);
    u.access(0, 0, 0x0, false, 0);
    u.access(500, 0, 0x0, false, 0); // hit
    u.access(1000, 1, 0x8000, true, 0);
    EXPECT_EQ(u.coreStats(0).reads, 2u);
    EXPECT_EQ(u.coreStats(0).demandMisses, 1u);
    EXPECT_EQ(u.coreStats(1).writes, 1u);
    EXPECT_EQ(u.coreStats(1).demandMisses, 1u);
    EXPECT_GT(u.coreStats(0).meanDemandLatency(), 0.0);
}

TEST(Uncore, PrefetchFlagIsNotDemand)
{
    Uncore u(quietConfig(), 1, 1);
    u.access(0, 0, 0x0, false, 0, true);
    EXPECT_EQ(u.coreStats(0).reads, 0u);
    EXPECT_EQ(u.coreStats(0).demandMisses, 0u);
    EXPECT_EQ(u.llcStats().prefetchMisses, 1u);
    // And the prefetched line now hits for demand.
    const std::uint64_t t = 10000;
    EXPECT_EQ(u.access(t, 0, 0x0, false, 0) - t,
              u.config().llcHitLatency);
}

TEST(Uncore, LlcPrefetcherGeneratesFills)
{
    UncoreConfig cfg = UncoreConfig::forCores(4, PolicyKind::LRU);
    cfg.ipStridePrefetch = false; // stream only
    Uncore u(cfg, 1, 1);
    // A miss stream should trigger stream prefetches.
    std::uint64_t t = 0;
    for (int i = 0; i < 16; ++i) {
        u.access(t, 0, 0x100000 + 64 * i, false, 0);
        t += 1000;
    }
    EXPECT_GT(u.llcStats().prefetchAccesses, 0u);
}

TEST(Uncore, GatheredPrefetchProbesMatchScalar)
{
    // The prefetcher's proposal sweep probes the LLC either one
    // set at a time (scalar) or as one gathered findMany sweep
    // with conservative re-probes on set conflicts; the two must
    // be indistinguishable in every completion and counter.
    UncoreConfig cfg =
        UncoreConfig::forCores(4, PolicyKind::LRU); // both pf on
    cfg.prefetchDegree = 4; // multi-line proposals per observe
    Uncore a(cfg, 2, 7);
    Uncore b(cfg, 2, 7);
    b.setGatheredPrefetchProbes(false);

    std::uint64_t t = 0;
    for (int i = 0; i < 3000; ++i) {
        const auto core = static_cast<std::uint32_t>(i % 2);
        const auto j = static_cast<std::uint64_t>(i / 2);
        std::uint64_t vaddr, pc;
        if (j % 2 == 0) {
            // Unit-stride line stream at one PC: trains both the
            // stream and ip-stride prefetchers, so one observe
            // proposes several lines — the gathered sweep shape.
            vaddr = (core ? 0x8000000 : 0x4000000) + (j / 2) * 64;
            pc = 0x1110 + core * 8;
        } else {
            // 3-line stride at another PC: ip-stride only.
            vaddr = (core ? 0xc000000 : 0x2000000) + (j / 2) * 192;
            pc = 0x2220 + core * 8;
        }
        const std::uint64_t ca =
            a.access(t, core, vaddr, false, pc);
        const std::uint64_t cb =
            b.access(t, core, vaddr, false, pc);
        ASSERT_EQ(ca, cb) << "request " << i;
        t += 400;
    }
    EXPECT_GT(a.llcStats().prefetchAccesses, 0u);
    EXPECT_EQ(a.llcStats().prefetchAccesses,
              b.llcStats().prefetchAccesses);
    EXPECT_EQ(a.llcStats().prefetchMisses,
              b.llcStats().prefetchMisses);
    EXPECT_EQ(a.coreStats(0).demandMisses,
              b.coreStats(0).demandMisses);
    EXPECT_EQ(a.coreStats(1).demandMisses,
              b.coreStats(1).demandMisses);
    EXPECT_EQ(a.fsbBusyCycles(), b.fsbBusyCycles());
}

TEST(Uncore, SplitAccessCompositionMatchesAccess)
{
    // accessBegin + llcProbe/findMany + accessFinish (the wavefront
    // engine's park/resume path) must equal the one-shot access().
    const UncoreConfig cfg =
        UncoreConfig::forCores(4, PolicyKind::DIP);
    Uncore a(cfg, 2, 3);
    Uncore b(cfg, 2, 3);

    std::uint64_t t = 0;
    for (int i = 0; i < 1500; ++i) {
        const auto core = static_cast<std::uint32_t>(i % 2);
        const std::uint64_t vaddr =
            0x8000 + (static_cast<std::uint64_t>(i) * 1037) % 65536;
        const std::uint64_t pc = 0x2000 + (i % 11) * 4;
        const bool write = (i % 4) == 0;
        const bool pf = (i % 13) == 0;
        const std::uint64_t ca =
            a.access(t, core, vaddr, write, pc, pf);

        const Uncore::PendingAccess pend =
            b.accessBegin(t, core, vaddr, write, pc, pf);
        const tagscan::Probe probe = b.llcProbe(pend);
        std::uint32_t way = 0;
        tagscan::findMany(&probe, 1, &way);
        const std::uint64_t cb = b.accessFinish(pend, way);
        ASSERT_EQ(ca, cb) << "request " << i;
        t += 2;
    }
    EXPECT_EQ(a.llcStats().demandHits, b.llcStats().demandHits);
    EXPECT_EQ(a.coreStats(0).reads, b.coreStats(0).reads);
    EXPECT_EQ(a.coreStats(1).writes, b.coreStats(1).writes);
}

TEST(Uncore, WritebackMarksOrAllocates)
{
    Uncore u(quietConfig(), 1, 1);
    u.writeback(0, 0, 0x7000);
    EXPECT_EQ(u.coreStats(0).writebacksIn, 1u);
    // The line is now LLC-resident: a demand access hits.
    const std::uint64_t t = 10000;
    EXPECT_EQ(u.access(t, 0, 0x7000, false, 0) - t,
              u.config().llcHitLatency);
}

TEST(PerfectUncore, ConstantLatency)
{
    PerfectUncore u(6);
    EXPECT_EQ(u.access(100, 0, 0xdead, false, 0, false), 106u);
    EXPECT_EQ(u.access(100, 3, 0xbeef, true, 0, true), 106u);
    EXPECT_EQ(u.hitLatency(), 6u);
}

TEST(Uncore, RejectsBadConfigs)
{
    UncoreConfig cfg = quietConfig();
    EXPECT_THROW(Uncore(cfg, 0, 1), FatalError);
    cfg.mshrs = 0;
    EXPECT_THROW(Uncore(cfg, 1, 1), FatalError);
}

} // namespace wsel
