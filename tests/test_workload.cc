/**
 * @file
 * Tests for workloads and the workload population (ranking,
 * unranking, enumeration, uniform sampling).
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/workload/workload.hh"
#include "stats/logging.hh"

namespace wsel
{

TEST(Workload, SortsBenchmarks)
{
    const Workload w({5, 2, 9, 2});
    EXPECT_EQ(w.size(), 4u);
    EXPECT_EQ(w[0], 2u);
    EXPECT_EQ(w[1], 2u);
    EXPECT_EQ(w[2], 5u);
    EXPECT_EQ(w[3], 9u);
    EXPECT_EQ(w.count(2), 2u);
    EXPECT_EQ(w.count(7), 0u);
    EXPECT_EQ(w.key(), "b2+b2+b5+b9");
}

TEST(Workload, EmptyIsFatal)
{
    EXPECT_THROW(Workload(std::vector<std::uint32_t>{}), FatalError);
}

TEST(WorkloadPopulation, PaperSizes)
{
    EXPECT_EQ(WorkloadPopulation(22, 2).size(), 253u);
    EXPECT_EQ(WorkloadPopulation(22, 4).size(), 12650u);
    EXPECT_EQ(WorkloadPopulation(22, 8).size(), 4292145u);
}

TEST(WorkloadPopulation, EnumerationIsLexicographicAndComplete)
{
    const WorkloadPopulation pop(5, 3);
    const auto all = pop.enumerateAll();
    EXPECT_EQ(all.size(), pop.size());
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1], all[i]);
    std::set<std::string> keys;
    for (const auto &w : all)
        keys.insert(w.key());
    EXPECT_EQ(keys.size(), all.size());
}

TEST(WorkloadPopulation, RankUnrankBijectionSmall)
{
    const WorkloadPopulation pop(6, 3);
    const auto all = pop.enumerateAll();
    for (std::uint64_t i = 0; i < pop.size(); ++i) {
        const Workload w = pop.unrank(i);
        EXPECT_EQ(w, all[i]);
        EXPECT_EQ(pop.rank(w), i);
    }
}

/** Bijection sweep over the paper's population shapes. */
class PopulationShapeTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(PopulationShapeTest, RankUnrankRoundTrip)
{
    const auto [b, k] = GetParam();
    const WorkloadPopulation pop(b, k);
    Rng rng(101);
    for (int t = 0; t < 500; ++t) {
        const std::uint64_t i = rng.nextInt(pop.size());
        const Workload w = pop.unrank(i);
        EXPECT_EQ(pop.rank(w), i);
        EXPECT_EQ(w.size(), static_cast<std::size_t>(k));
        for (std::size_t c = 0; c < w.size(); ++c)
            EXPECT_LT(w[c], static_cast<std::uint32_t>(b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperShapes, PopulationShapeTest,
    ::testing::Values(std::pair{22, 2}, std::pair{22, 4},
                      std::pair{22, 8}, std::pair{29, 4},
                      std::pair{3, 5}),
    [](const auto &info) {
        return "B" + std::to_string(info.param.first) + "_K" +
               std::to_string(info.param.second);
    });

TEST(WorkloadPopulation, UnrankBoundary)
{
    const WorkloadPopulation pop(22, 4);
    const Workload first = pop.unrank(0);
    const Workload last = pop.unrank(pop.size() - 1);
    EXPECT_EQ(first, Workload({0, 0, 0, 0}));
    EXPECT_EQ(last, Workload({21, 21, 21, 21}));
    EXPECT_THROW(pop.unrank(pop.size()), FatalError);
}

TEST(WorkloadPopulation, RankRejectsForeignWorkloads)
{
    const WorkloadPopulation pop(5, 2);
    EXPECT_THROW(pop.rank(Workload({0, 7})), FatalError);
    EXPECT_THROW(pop.rank(Workload({0, 1, 2})), FatalError);
}

TEST(WorkloadPopulation, EveryBenchmarkEquallyFrequent)
{
    // Paper §VI-A: over the full population every benchmark occurs
    // the same number of times.
    const WorkloadPopulation pop(7, 3);
    std::map<std::uint32_t, std::uint64_t> counts;
    for (const auto &w : pop.enumerateAll())
        for (std::uint32_t b : w.benchmarks())
            ++counts[b];
    const std::uint64_t expected = pop.occurrencesPerBenchmark();
    for (std::uint32_t b = 0; b < 7; ++b)
        EXPECT_EQ(counts[b], expected);
}

TEST(WorkloadPopulation, UniformSamplingIsUnbiased)
{
    const WorkloadPopulation pop(4, 2); // 10 workloads
    Rng rng(7);
    std::map<std::uint64_t, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[pop.rank(pop.sampleUniform(rng))];
    EXPECT_EQ(counts.size(), pop.size());
    for (const auto &[idx, c] : counts)
        EXPECT_NEAR(c / static_cast<double>(n), 0.1, 0.01);
}

TEST(WorkloadPopulation, EnumerationLimitGuards)
{
    const WorkloadPopulation pop(22, 8);
    EXPECT_THROW(pop.enumerateAll(), FatalError);
}

} // namespace wsel
