/**
 * @file
 * Tests for the four sampling methods and the stratified estimator.
 */

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/sampling/sampling.hh"
#include "stats/summary.hh"
#include "stats/logging.hh"

namespace wsel
{

namespace
{

/** A small population plus synthetic throughputs for two configs. */
struct TestBed
{
    WorkloadPopulation pop{8, 3}; // 120 workloads
    std::vector<Workload> workloads;
    std::vector<double> tx, ty, d;

    TestBed()
    {
        workloads = pop.enumerateAll();
        Rng rng(33);
        tx.resize(workloads.size());
        ty.resize(workloads.size());
        d.resize(workloads.size());
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            tx[i] = 1.0 + 0.3 * rng.nextGaussian();
            tx[i] = std::max(tx[i], 0.2);
            // Y is better on workloads containing benchmark 0.
            const double edge =
                workloads[i].count(0) > 0 ? 0.15 : -0.02;
            ty[i] = std::max(tx[i] + edge +
                                 0.02 * rng.nextGaussian(),
                             0.1);
            d[i] = ty[i] - tx[i];
        }
    }
};

std::vector<std::size_t>
identityMap(std::size_t n)
{
    std::vector<std::size_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = i;
    return v;
}

} // namespace

TEST(RandomSampler, SizeAndRange)
{
    auto s = makeRandomSampler(100);
    Rng rng(1);
    const Sample sample = s->draw(30, rng);
    EXPECT_EQ(sample.totalSize(), 30u);
    ASSERT_EQ(sample.strata.size(), 1u);
    EXPECT_DOUBLE_EQ(sample.strata[0].weight, 1.0);
    for (std::size_t i : sample.flatten())
        EXPECT_LT(i, 100u);
    EXPECT_EQ(s->name(), "random");
}

TEST(RandomSampler, WithReplacement)
{
    // Sampling 200 from a population of 10 must repeat.
    auto s = makeRandomSampler(10);
    Rng rng(2);
    const Sample sample = s->draw(200, rng);
    EXPECT_EQ(sample.totalSize(), 200u);
    std::set<std::size_t> uniq;
    for (std::size_t i : sample.flatten())
        uniq.insert(i);
    EXPECT_LE(uniq.size(), 10u);
}

TEST(BalancedRandomSampler, EqualBenchmarkCounts)
{
    const WorkloadPopulation pop(4, 2);
    auto s = makeBalancedRandomSampler(pop, identityMap(pop.size()));
    EXPECT_EQ(s->name(), "bal-random");
    const auto all = pop.enumerateAll();
    Rng rng(3);
    // 10 workloads x 2 cores = 20 slots over 4 benchmarks: exactly
    // 5 occurrences each.
    const Sample sample = s->draw(10, rng);
    std::map<std::uint32_t, int> counts;
    for (std::size_t idx : sample.flatten())
        for (std::uint32_t b : all[idx].benchmarks())
            ++counts[b];
    for (std::uint32_t b = 0; b < 4; ++b)
        EXPECT_EQ(counts[b], 5) << "benchmark " << b;
}

TEST(BalancedRandomSampler, NearEqualWhenNotDivisible)
{
    const WorkloadPopulation pop(5, 2);
    auto s = makeBalancedRandomSampler(pop, identityMap(pop.size()));
    const auto all = pop.enumerateAll();
    Rng rng(4);
    // 7 x 2 = 14 slots over 5 benchmarks: counts in {2, 3}.
    const Sample sample = s->draw(7, rng);
    std::map<std::uint32_t, int> counts;
    for (std::size_t idx : sample.flatten())
        for (std::uint32_t b : all[idx].benchmarks())
            ++counts[b];
    int total = 0;
    for (std::uint32_t b = 0; b < 5; ++b) {
        EXPECT_GE(counts[b], 2);
        EXPECT_LE(counts[b], 3);
        total += counts[b];
    }
    EXPECT_EQ(total, 14);
}

TEST(BalancedRandomSampler, IndexMapSizeChecked)
{
    const WorkloadPopulation pop(4, 2);
    EXPECT_THROW(makeBalancedRandomSampler(pop, identityMap(3)),
                 FatalError);
}

TEST(BenchmarkStratifiedSampler, PaperStratumCount)
{
    // Table IV classes (3 classes) on 4 cores give C(3+4-1, 4) = 15
    // strata over the full population (paper §VI-B1).
    const WorkloadPopulation pop(22, 4);
    const auto all = pop.enumerateAll();
    std::vector<std::uint32_t> cls(22);
    for (std::uint32_t b = 0; b < 22; ++b)
        cls[b] = b % 3;
    auto s = makeBenchmarkStratifiedSampler(all, cls, 3);
    Rng rng(5);
    const Sample sample = s->draw(100, rng);
    // With W=100 >> 15 strata, every stratum is sampled.
    EXPECT_EQ(sample.strata.size(), 15u);
    EXPECT_EQ(sample.totalSize(), 100u);
    // Stratum weights are the stratum sizes; they partition N.
    double total_weight = 0.0;
    for (const auto &st : sample.strata)
        total_weight += st.weight;
    EXPECT_DOUBLE_EQ(total_weight,
                     static_cast<double>(pop.size()));
}

TEST(BenchmarkStratifiedSampler, WorkloadsLandInOwnStratum)
{
    const WorkloadPopulation pop(6, 2);
    const auto all = pop.enumerateAll();
    // Two classes: benchmarks 0-2 are class 0, 3-5 class 1.
    std::vector<std::uint32_t> cls = {0, 0, 0, 1, 1, 1};
    auto s = makeBenchmarkStratifiedSampler(all, cls, 2);
    Rng rng(6);
    const Sample sample = s->draw(21, rng); // the full population
    // Each drawn stratum must be internally homogeneous in its
    // class signature.
    for (const auto &st : sample.strata) {
        ASSERT_FALSE(st.indices.empty());
        auto signature = [&](std::size_t idx) {
            int c0 = 0;
            for (std::uint32_t b : all[idx].benchmarks())
                c0 += cls[b] == 0;
            return c0;
        };
        const int sig = signature(st.indices[0]);
        for (std::size_t idx : st.indices)
            EXPECT_EQ(signature(idx), sig);
    }
}

TEST(BenchmarkStratifiedSampler, RejectsBadClasses)
{
    const WorkloadPopulation pop(4, 2);
    const auto all = pop.enumerateAll();
    std::vector<std::uint32_t> cls = {0, 1, 2, 3};
    EXPECT_THROW(makeBenchmarkStratifiedSampler(all, cls, 3),
                 FatalError);
}

TEST(WorkloadStratifiedSampler, StrataAreContiguousInD)
{
    TestBed bed;
    WorkloadStrataConfig cfg;
    cfg.wt = 10;
    cfg.tsd = 0.01;
    auto s = makeWorkloadStratifiedSampler(bed.d, cfg);
    EXPECT_EQ(s->name(), "workload-strata");
    Rng rng(7);
    const Sample sample = s->draw(60, rng);
    // d-ranges of strata must not interleave: sort strata by their
    // min d and check max d <= next min d.
    std::vector<std::pair<double, double>> ranges;
    for (const auto &st : sample.strata) {
        double lo = 1e300, hi = -1e300;
        for (std::size_t idx : st.indices) {
            lo = std::min(lo, bed.d[idx]);
            hi = std::max(hi, bed.d[idx]);
        }
        ranges.emplace_back(lo, hi);
    }
    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i)
        EXPECT_LE(ranges[i - 1].second, ranges[i].first + 1e-12);
}

TEST(WorkloadStratifiedSampler, TsdControlsStratumCount)
{
    TestBed bed;
    WorkloadStrataConfig tight{0.0001, 5};
    WorkloadStrataConfig loose{1.0, 5};
    EXPECT_GT(countWorkloadStrata(bed.d, tight),
              countWorkloadStrata(bed.d, loose));
    EXPECT_EQ(countWorkloadStrata(bed.d, loose), 1u);
}

TEST(WorkloadStratifiedSampler, WtEnforcesMinimumSizes)
{
    TestBed bed;
    WorkloadStrataConfig cfg{1e-6, 25};
    auto s = makeWorkloadStratifiedSampler(bed.d, cfg);
    Rng rng(8);
    const Sample sample =
        s->draw(bed.workloads.size(), rng); // everything
    for (std::size_t i = 0; i + 1 < sample.strata.size(); ++i)
        EXPECT_GE(sample.strata[i].indices.size(), 1u);
    // All but possibly the last stratum hold >= WT workloads.
    std::size_t total = 0;
    for (const auto &st : sample.strata)
        total += st.indices.size();
    EXPECT_EQ(total, bed.workloads.size());
}

TEST(SampleThroughput, SingleStratumEqualsPlainMean)
{
    TestBed bed;
    Sample s;
    s.strata.resize(1);
    s.strata[0].weight = 1.0;
    s.strata[0].indices = {0, 5, 10, 15};
    double mean = 0.0;
    for (std::size_t i : s.strata[0].indices)
        mean += bed.tx[i];
    mean /= 4.0;
    EXPECT_NEAR(sampleThroughput(s, ThroughputMetric::IPCT, bed.tx),
                mean, 1e-12);
}

TEST(SampleThroughput, StratifiedWeighting)
{
    // Stratum A: value 1.0, weight 3; stratum B: value 2.0, weight
    // 1; estimate = (3*1 + 1*2)/4.
    std::vector<double> t = {1.0, 2.0};
    Sample s;
    s.strata.resize(2);
    s.strata[0].indices = {0};
    s.strata[0].weight = 3.0;
    s.strata[1].indices = {1};
    s.strata[1].weight = 1.0;
    EXPECT_DOUBLE_EQ(
        sampleThroughput(s, ThroughputMetric::IPCT, t), 1.25);
}

TEST(EmpiricalConfidence, SeparatedConfigsGiveCertainty)
{
    TestBed bed;
    std::vector<double> ty_big = bed.tx;
    for (double &v : ty_big)
        v += 1.0; // Y unambiguously better
    auto s = makeRandomSampler(bed.tx.size());
    Rng rng(9);
    EXPECT_DOUBLE_EQ(
        empiricalConfidence(*s, 5, 200, ThroughputMetric::IPCT,
                            bed.tx, ty_big, rng),
        1.0);
    EXPECT_DOUBLE_EQ(
        empiricalConfidence(*s, 5, 200, ThroughputMetric::IPCT,
                            ty_big, bed.tx, rng),
        0.0);
}

TEST(EmpiricalConfidence, GrowsWithSampleSize)
{
    TestBed bed;
    auto s = makeRandomSampler(bed.tx.size());
    Rng rng(10);
    const double c_small =
        empiricalConfidence(*s, 3, 3000, ThroughputMetric::IPCT,
                            bed.tx, bed.ty, rng);
    const double c_large =
        empiricalConfidence(*s, 60, 3000, ThroughputMetric::IPCT,
                            bed.tx, bed.ty, rng);
    EXPECT_GT(c_large, c_small);
}

TEST(EmpiricalConfidence, WorkloadStrataBeatsRandomAtSmallSizes)
{
    // The paper's headline result in miniature: at equal sample
    // size, workload stratification yields at least the confidence
    // of simple random sampling.
    TestBed bed;
    auto rnd = makeRandomSampler(bed.tx.size());
    WorkloadStrataConfig cfg{0.005, 8};
    auto strat = makeWorkloadStratifiedSampler(bed.d, cfg);
    Rng r1(11), r2(11);
    const double c_rnd =
        empiricalConfidence(*rnd, 12, 3000, ThroughputMetric::IPCT,
                            bed.tx, bed.ty, r1);
    const double c_str = empiricalConfidence(
        *strat, 12, 3000, ThroughputMetric::IPCT, bed.tx, bed.ty,
        r2);
    EXPECT_GE(c_str + 0.02, c_rnd);
    EXPECT_GT(c_str, 0.9);
}

TEST(WorkloadStratifiedSampler, SmallDrawsCoverBothTails)
{
    // Regression test: with W far below the stratum count, the
    // largest-remainder tie-break must pick strata randomly. A
    // deterministic tie-break would always sample the lowest-d
    // (most negative) strata and flip comparison conclusions.
    TestBed bed;
    WorkloadStrataConfig cfg{1e-9, 4}; // many tiny strata
    auto s = makeWorkloadStratifiedSampler(bed.d, cfg);
    const std::size_t n_strata = countWorkloadStrata(bed.d, cfg);
    ASSERT_GT(n_strata, 12u);

    Rng rng(31);
    int low_tail = 0, high_tail = 0;
    const double med = quantile(bed.d, 0.5);
    for (int t = 0; t < 200; ++t) {
        const Sample sample = s->draw(4, rng);
        for (std::size_t idx : sample.flatten()) {
            if (bed.d[idx] < med)
                ++low_tail;
            else
                ++high_tail;
        }
    }
    // Both halves of the d-distribution must be sampled with
    // roughly equal frequency.
    const double frac = static_cast<double>(low_tail) /
                        static_cast<double>(low_tail + high_tail);
    EXPECT_GT(frac, 0.35);
    EXPECT_LT(frac, 0.65);
}

TEST(Samplers, DrawIsDeterministicGivenRngState)
{
    TestBed bed;
    auto s = makeRandomSampler(bed.tx.size());
    Rng a(12), b(12);
    EXPECT_EQ(s->draw(20, a).flatten(), s->draw(20, b).flatten());
}

TEST(Samplers, ZeroSizeDrawFatal)
{
    auto s = makeRandomSampler(10);
    Rng rng(13);
    EXPECT_THROW(s->draw(0, rng), FatalError);
}

TEST(Samplers, OversizedStratifiedDrawClampsToCensus)
{
    // An over-sized draw degrades to the census instead of
    // fataling (warned once): small populations in tests and
    // subsampled benches hit this constantly (docs/SAMPLING.md).
    TestBed bed;
    WorkloadStrataConfig cfg{0.01, 10};
    auto s = makeWorkloadStratifiedSampler(bed.d, cfg);
    Rng rng(14);
    const Sample big = s->draw(bed.workloads.size() + 1, rng);
    EXPECT_EQ(big.totalSize(), bed.workloads.size());
}

} // namespace wsel
