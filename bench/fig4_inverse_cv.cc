/**
 * @file
 * Figure 4 reproduction: 1/cv for every policy pair and every
 * metric on 4 cores, measured three ways —
 *   (1) with the detailed simulator on a random workload sample,
 *   (2) with BADCO on the same sample,
 *   (3) with BADCO on the (near-)full 12650-workload population.
 * The sign shows which policy wins; the magnitude how easily a
 * random sample detects it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/model_store.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint32_t cores = 4;
    const auto &suite = spec2006Suite();
    const std::uint64_t target = targetUops();

    const Campaign det = detailedSampleCampaign(cores);

    // BADCO on exactly the detailed sample.
    const UncoreConfig u0 =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, u0.llcHitLatency,
                          defaultCacheDir());
    const std::string key =
        "badco_on_detailed_sample_k" + std::to_string(cores) +
        "_n" + std::to_string(det.workloads.size()) + "_u" +
        std::to_string(target);
    const std::uint64_t fp = campaignFingerprint(
        "badco", cores, target, det.policies, suite);
    const Campaign bad_sample = cachedCampaign(
        key, fp, [&](const std::string &journal) {
            CampaignOptions opts;
            opts.journalPath = journal;
            return runBadcoCampaign(det.workloads, det.policies,
                                    cores, target, store, suite,
                                    opts);
        });

    const Campaign bad_pop = standardBadcoCampaign(cores);

    std::printf("FIGURE 4. 1/cv per policy pair and metric "
                "(4 cores)\n");
    std::printf("columns: detailed %zu-workload sample | BADCO same "
                "sample | BADCO population (%zu workloads)\n\n",
                det.workloads.size(), bad_pop.workloads.size());

    for (ThroughputMetric m : paperMetrics()) {
        std::printf("[%s]\n", toString(m).c_str());
        std::printf("  %-12s %9s %9s %9s   %s\n", "pair",
                    "detailed", "badco-s", "badco-pop",
                    "badco-pop bar (range +-4)");
        for (const PolicyPair &pair : paperPolicyPairs()) {
            const double inv_det =
                pairStats(det, pair, m).inverseCv();
            const double inv_bs =
                pairStats(bad_sample, pair, m).inverseCv();
            const double inv_bp =
                pairStats(bad_pop, pair, m).inverseCv();
            std::printf("  %-12s %9.3f %9.3f %9.3f   %s\n",
                        pair.label().c_str(), inv_det, inv_bs,
                        inv_bp, bar(inv_bp, 4.0).c_str());
        }
        std::printf("\n");
    }
    std::printf("paper shape: LRU clearly beats RND and FIFO "
                "(|1/cv| near 1); DIP/DRRIP beat LRU;\nDIP>DRRIP is "
                "the closest pair; metrics agree on every sign but "
                "differ in magnitude.\n");
    return 0;
}
