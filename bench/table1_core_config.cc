/**
 * @file
 * Table I reproduction: the core configuration, paper values next to
 * the scaled values this library simulates.
 */

#include <cstdio>

#include "bench_util.hh"
#include "cpu/core_config.hh"

int
main()
{
    using namespace wsel;
    const CoreConfig c;
    std::printf("TABLE I. CORE CONFIGURATION "
                "(paper value -> this library)\n");
    std::printf("%-28s %-22s %s\n", "parameter", "paper", "wsel");
    std::printf("%-28s %-22s %u/%u/%u\n", "decode/issue/commit",
                "4/6/4", c.decodeWidth, c.issueWidth, c.commitWidth);
    std::printf("%-28s %-22s %u/%u/%u/%u\n", "RS/LDQ/STQ/ROB",
                "36/36/24/128", c.rsSize, c.ldqSize, c.stqSize,
                c.robSize);
    std::printf("%-28s %-22s %s\n", "clock", "3 GHz",
                "3 GHz (cycle-based)");
    std::printf("%-28s %-22s %llukB %u-way, %u-cycle, "
                "next-line pf\n",
                "IL1 cache", "32kB 4-way 2-cycle",
                static_cast<unsigned long long>(
                    c.il1.sizeBytes / 1024),
                c.il1.ways, c.il1Latency);
    std::printf("%-28s %-22s %u-entry %u-way\n", "ITLB",
                "128-entry 4-way", c.itlbEntries, c.itlbWays);
    std::printf("%-28s %-22s %llukB %u-way, %u-cycle, "
                "IP-stride + next-line pf, %u MSHRs\n",
                "DL1 cache", "32kB 8-way 2-cycle",
                static_cast<unsigned long long>(
                    c.dl1.sizeBytes / 1024),
                c.dl1.ways, c.dl1Latency, c.dl1Mshrs);
    std::printf("%-28s %-22s %u-entry %u-way\n", "DTLB",
                "512-entry 4-way", c.dtlbEntries, c.dtlbWays);
    std::printf("%-28s %-22s TAGE %u-entry bimodal + %ux%u tagged\n",
                "branch predictor", "TAGE 4kB + BTAC",
                1u << c.tage.bimodalBits, c.tage.numTables,
                1u << c.tage.taggedBits);
    std::printf("\nL1/TLB capacities are scaled 4x down alongside "
                "the LLC scaling\n(100k-instruction traces vs the "
                "paper's 100M; see DESIGN.md).\n");
    return 0;
}
