/**
 * @file
 * Adaptive stopping vs. fixed-size campaigns (docs/SAMPLING.md):
 * run the sequential engine end to end — real BADCO cells, live
 * eq. 5 confidence, batch artifacts — on DIP>LRU and RND>FIFO at 4
 * cores, and compare the cells it paid for against two fixed-size
 * baselines:
 *
 *  - eq. 8: the 2 * W(cv) cells a fixed campaign would simulate if
 *    an oracle told it cv up front (the adaptive engine discovers
 *    cv as it goes and should land in the same neighbourhood);
 *  - the full population sweep (what fig. 6's campaign pays), the
 *    baseline a practitioner without a stopping rule actually runs.
 *
 * Both the random and the ranked-set schedule are timed.  When
 * WSEL_BENCH_JSON names a file, the numbers are archived there for
 * CI trend tracking (tools/ci.sh release leg).
 *
 * Knobs: WSEL_INSNS (per-benchmark uops, default 100000),
 * WSEL_ADAPTIVE_BATCH (batch workloads, default 32).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"

#include "sim/adaptive.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;
    namespace fs = std::filesystem;

    const std::uint32_t cores = 4;
    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());

    const PolicyPair pairs[] = {
        {PolicyKind::DIP, PolicyKind::LRU},
        {PolicyKind::Random, PolicyKind::FIFO},
    };
    const AdaptiveMethod methods[] = {AdaptiveMethod::Random,
                                      AdaptiveMethod::RankedSet};

    const std::string scratch =
        (fs::temp_directory_path() / "wsel_bench_adaptive")
            .string();
    fs::remove_all(scratch);

    std::printf("ADAPTIVE STOPPING. cells to reach the 0.977 "
                "target vs fixed-size campaigns\n");
    std::printf("metric IPCT, %u cores, %llu-workload population, "
                "%llu uops/benchmark\n\n",
                cores, static_cast<unsigned long long>(pop.size()),
                static_cast<unsigned long long>(target));
    std::printf("%-12s %-10s %9s %9s %7s %9s %9s %8s\n", "pair",
                "schedule", "stop-W", "cells", "conf", "eq8-cells",
                "vs-eq8", "secs");

    struct Row
    {
        std::string pair;
        std::string schedule;
        std::uint64_t stopW;
        std::uint64_t cells;
        double confidence;
        std::uint64_t eq8Cells;
        double vsEq8;
        double vsPopulation;
        double seconds;
    };
    std::vector<Row> rows;

    for (const PolicyPair &pair : pairs) {
        for (const AdaptiveMethod method : methods) {
            AdaptiveOptions o;
            o.jobs = 0; // auto: $WSEL_JOBS, else hardware threads
            o.batchWorkloads = static_cast<std::uint64_t>(
                envU64("WSEL_ADAPTIVE_BATCH", 32));
            o.stop.targetConfidence = 0.977;
            o.stop.minWorkloads = o.batchWorkloads;
            o.method = method;
            o.resume = false;

            const std::string out =
                scratch + "/" + pair.label() + "_" +
                toString(method);
            const AdaptiveResult r = runAdaptiveCampaign(
                pop, pair.b, pair.a, ThroughputMetric::IPCT,
                target, store, suite, out, o);

            // The eq. 8 oracle baseline from the cv the run
            // actually measured; the pre-pass cells are part of
            // the ranked-set schedule's price.
            const std::uint64_t eq8 =
                2 * static_cast<std::uint64_t>(requiredSampleSize(
                        std::abs(r.verdict.cv)));
            const std::uint64_t paid =
                r.cellsSimulated + r.prepassCells;
            const double vs_eq8 =
                eq8 ? static_cast<double>(paid) /
                          static_cast<double>(eq8)
                    : 0.0;
            const double vs_pop =
                static_cast<double>(paid) /
                static_cast<double>(2 * pop.size());
            std::printf("%-12s %-10s %9llu %9llu %7.3f %9llu "
                        "%8.2fx %8.1f\n",
                        pair.label().c_str(), toString(method),
                        static_cast<unsigned long long>(
                            r.verdict.workloads),
                        static_cast<unsigned long long>(paid),
                        r.verdict.confidence,
                        static_cast<unsigned long long>(eq8),
                        vs_eq8, r.wallSeconds);
            rows.push_back({pair.label(), toString(method),
                            r.verdict.workloads, paid,
                            r.verdict.confidence, eq8, vs_eq8,
                            vs_pop, r.wallSeconds});
        }
    }
    std::printf("\nthe stopping rule discovers the sample size "
                "live: it tracks the eq. 8 oracle\n(floored at "
                "minWorkloads = one batch when cv is small), and "
                "against the full\npopulation sweep (%llu cells) "
                "every run above pays a small fraction.\n",
                static_cast<unsigned long long>(2 * pop.size()));

    if (const char *json = std::getenv("WSEL_BENCH_JSON");
        json && *json) {
        FILE *f = std::fopen(json, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json);
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"adaptive_stopping\",\n"
                     "  \"target_uops\": %llu,\n"
                     "  \"cores\": %u,\n"
                     "  \"population\": %llu,\n"
                     "  \"population_cells\": %llu,\n"
                     "  \"target_confidence\": 0.977,\n"
                     "  \"runs\": [\n",
                     static_cast<unsigned long long>(target), cores,
                     static_cast<unsigned long long>(pop.size()),
                     static_cast<unsigned long long>(
                         2 * pop.size()));
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                f,
                "    {\"pair\": \"%s\", \"schedule\": \"%s\", "
                "\"stop_workloads\": %llu, \"cells\": %llu, "
                "\"confidence\": %.4f, \"eq8_cells\": %llu, "
                "\"cells_vs_eq8\": %.3f, "
                "\"cells_vs_population\": %.5f, "
                "\"seconds\": %.3f}%s\n",
                r.pair.c_str(), r.schedule.c_str(),
                static_cast<unsigned long long>(r.stopW),
                static_cast<unsigned long long>(r.cells),
                r.confidence,
                static_cast<unsigned long long>(r.eq8Cells),
                r.vsEq8, r.vsPopulation, r.seconds,
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "[wsel] bench json -> %s\n", json);
    }

    fs::remove_all(scratch);
    return 0;
}
