/**
 * @file
 * Section V-B quantified: "we cannot be certain that the value of
 * cv estimated on a sample is accurate unless we know a priori that
 * one microarchitecture significantly outperforms the other."
 *
 * For each policy pair, draw many random samples of the sizes
 * studies typically use and report the spread of the 1/cv estimate
 * against the population value — small samples give unstable cv for
 * close pairs, which is exactly why the paper sizes samples with a
 * fast approximate simulator instead.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "stats/summary.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const ThroughputMetric metric = ThroughputMetric::IPCT;
    const Campaign c = standardBadcoCampaign(4);
    const std::size_t draws = 400;

    std::printf("SECTION V-B: stability of the 1/cv estimate vs "
                "sample size (IPCT, 4 cores,\n%zu-workload "
                "population, %zu bootstrap samples per cell)\n\n",
                c.workloads.size(), draws);
    std::printf("%-12s %10s | %s\n", "pair", "population",
                "sample p10 / median / p90 of 1/cv");
    std::printf("%-12s %10s | %12s %21s %21s\n", "", "1/cv",
                "W=30", "W=100", "W=400");

    Rng rng(5);
    for (const PolicyPair &pair : paperPolicyPairs()) {
        const auto tb = c.perWorkloadThroughputs(
            c.policyIndex(pair.b), metric);
        const auto ta = c.perWorkloadThroughputs(
            c.policyIndex(pair.a), metric);
        const auto d = perWorkloadDifferences(metric, tb, ta);
        const double pop_inv = differenceStats(d).inverseCv();

        std::printf("%-12s %10.3f |", pair.label().c_str(),
                    pop_inv);
        for (std::size_t w : {30u, 100u, 400u}) {
            std::vector<double> estimates;
            estimates.reserve(draws);
            for (std::size_t t = 0; t < draws; ++t) {
                RunningStats s;
                for (std::size_t i = 0; i < w; ++i)
                    s.add(d[rng.nextInt(d.size())]);
                const double sigma = s.stddevPopulation();
                estimates.push_back(
                    sigma > 0.0 ? s.mean() / sigma : 0.0);
            }
            std::printf("  %5.2f/%5.2f/%5.2f",
                        quantile(estimates, 0.1),
                        quantile(estimates, 0.5),
                        quantile(estimates, 0.9));
        }
        std::printf("\n");
    }

    std::printf("\nreading: for well-separated pairs the estimate "
                "stabilizes quickly; for the close pair\n"
                "(DIP>DRRIP) a 30-workload sample can misestimate "
                "1/cv by half or more — and since\neq. (8) squares "
                "cv, the inferred sample size is off by a larger "
                "factor. This is the\npaper's argument for "
                "estimating cv on a large approximate-simulation "
                "sample.\n");
    return 0;
}
