/**
 * @file
 * Ablation of the BADCO machine's model parameters: the calibrated
 * effective window (vs fixed overrides), the outstanding-request
 * cap, and the multicore simulation quantum — accuracy against the
 * detailed simulator and simulation speed.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "badco/badco_machine.hh"
#include "cpu/detailed_core.hh"
#include "trace/trace_generator.hh"
#include "stats/summary.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    const auto models = store.getSuite(suite);

    // References: detailed single-thread CPI per benchmark against
    // (a) the real uncore and (b) the uniform slow uncore the
    // second-trace calibration targets.
    std::vector<double> ref_cpi, ref_cpi_slow;
    {
        DetailedMulticoreSim det(CoreConfig{}, ucfg, 1, target);
        for (double ipc : det.referenceIpcs(suite))
            ref_cpi.push_back(1.0 / ipc);
        UncoreConfig slow_cfg = ucfg;
        for (const auto &p : suite) {
            PerfectUncore slow(ucfg.llcHitLatency + 200);
            CoreConfig ccfg;
            DetailedCore core(ccfg, TraceStore::global().cursor(p),
                              slow, 0, target, 1);
            std::uint64_t now = 0;
            while (!core.reachedTarget()) {
                core.tick(now);
                const std::uint64_t next = core.nextEventCycle(now);
                now = std::max(now + 1,
                               next == UINT64_MAX ? now + 1 : next);
            }
            ref_cpi_slow.push_back(
                static_cast<double>(core.stats().cyclesToTarget) /
                static_cast<double>(target));
        }
        (void)slow_cfg;
    }

    std::printf("ABLATION: BADCO machine window "
                "(single-thread CPI error vs detailed)\n\n");
    std::printf("calibrated per-benchmark windows: ");
    for (std::size_t i = 0; i < suite.size(); ++i)
        std::printf("%s%u", i ? "," : "", models[i]->window);
    std::printf("\n\n%-22s %14s %14s\n", "window setting",
                "|err| real-unc", "|err| slow-unc");

    auto evalWindow = [&](std::uint32_t window,
                          const char *label) {
        RunningStats abs_err, abs_err_slow;
        BadcoMulticoreSim bad(ucfg, 1, target, 1, window);
        for (std::size_t i = 0; i < suite.size(); ++i) {
            Workload w({static_cast<std::uint32_t>(i)});
            const SimResult r = bad.run(w, models);
            abs_err.add(std::abs(1.0 / r.ipc[0] - ref_cpi[i]) /
                        ref_cpi[i]);
            // Replay against the calibration operating point.
            PerfectUncore slow(ucfg.llcHitLatency + 200);
            BadcoMachine m(*models[i], slow, 0, target, window);
            while (!m.reachedTarget())
                m.run(m.localClock() + 100000);
            const double cpi_b =
                static_cast<double>(m.stats().cyclesToTarget) /
                static_cast<double>(target);
            abs_err_slow.add(std::abs(cpi_b - ref_cpi_slow[i]) /
                             ref_cpi_slow[i]);
        }
        std::printf("%-22s %13.2f%% %13.2f%%\n", label,
                    100.0 * abs_err.mean(),
                    100.0 * abs_err_slow.mean());
    };

    evalWindow(0, "calibrated (model)");
    evalWindow(4, "fixed 4");
    evalWindow(8, "fixed 8");
    evalWindow(16, "fixed 16");
    evalWindow(64, "fixed 64");
    evalWindow(128, "fixed 128 (ROB)");

    std::printf("\nmulticore quantum (4 cores, one heavy mixed "
                "workload):\n%-12s %10s %10s\n", "quantum",
                "IPC[0]", "MIPS");
    const Workload mix({1, 11, 16, 20});
    for (std::uint64_t q : {10u, 50u, 200u, 1000u}) {
        BadcoMulticoreSim bad(ucfg, 4, target, 1, 0, 16, q);
        const SimResult r = bad.run(mix, models);
        std::printf("%-12llu %10.3f %10.1f\n",
                    static_cast<unsigned long long>(q), r.ipc[0],
                    r.mips());
    }
    std::printf("\nreading: the calibrated window matches the "
                "detailed core at its calibration operating\npoint "
                "(slow-uncore column) by construction, preserving "
                "each benchmark's latency\nsensitivity — what "
                "multicore contention accuracy needs (fig2's "
                "speedup error). A small\nfixed window can score "
                "better on single-thread real-uncore CPI but "
                "collapses\nhigh-ILP threads under contention; a "
                "ROB-sized window is far too optimistic\n"
                "everywhere. The quantum is a speed/skew tradeoff "
                "with mild IPC sensitivity.\n");
    return 0;
}
