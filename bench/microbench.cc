/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths:
 * RNG draws, trace generation, cache accesses per policy, TAGE
 * prediction, uncore requests, detailed-core cycles and BADCO
 * machine steps — plus the observability primitives (counter
 * increments and span enter/exit), measured both enabled and
 * disabled to back the near-zero-overhead-when-off claim in
 * docs/OBSERVABILITY.md.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "badco/badco_machine.hh"
#include "badco/badco_model.hh"
#include "cache/cache.hh"
#include "cache/tagscan.hh"
#include "core/workload/workload.hh"
#include "cpu/detailed_core.hh"
#include "cpu/tage.hh"
#include "mem/uncore.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/batch.hh"
#include "stats/persist_v3.hh"
#include "stats/summary.hh"
#include "trace/trace_generator.hh"
#include "trace/trace_store.hh"

namespace
{

using namespace wsel;

void
BM_RngNextInt(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.nextInt(12650));
}
BENCHMARK(BM_RngNextInt);

void
BM_TraceGeneratorNext(benchmark::State &state)
{
    TraceGenerator gen(findProfile("mcf"));
    for (auto _ : state)
        benchmark::DoNotOptimize(&gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneratorNext);

// Steady-state µop fetch through the memoized SoA store: the
// cursor-vs-generator comparison backing docs/PERFORMANCE.md. The
// walk wraps at the chunk size (the simulators' thread-restart
// pattern), so the one-time chunk build is not in the measurement.
void
BM_TraceCursorNext(benchmark::State &state)
{
    static TraceStore store; // chunks shared across iterations
    TraceCursor cur = store.cursor(findProfile("mcf"));
    for (auto _ : state) {
        if (cur.generated() == TraceStore::kDefaultChunkUops)
            cur.reset();
        MicroOp u = cur.next();
        benchmark::DoNotOptimize(u);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceCursorNext);

// Cost of materializing one chunk (generator replay + SoA pack):
// what a cold start or a post-eviction regeneration pays. A zero
// budget evicts each chunk as the next lands, so every fetch below
// is a fresh build; items = µops packed.
void
BM_TraceChunkBuild(benchmark::State &state)
{
    TraceStore store(0);
    auto stream = store.stream(findProfile("mcf"));
    std::uint64_t idx = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(stream->chunk(idx++));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        TraceStore::kDefaultChunkUops);
}
BENCHMARK(BM_TraceChunkBuild);

void
BM_CacheAccess(benchmark::State &state)
{
    const PolicyKind kind =
        static_cast<PolicyKind>(state.range(0));
    Cache cache(CacheGeometry{128 * 1024, 16, 64}, kind, 1);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(64 * rng.nextInt(8192), false));
    }
    state.SetLabel(toString(kind));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(PolicyKind::LRU))
    ->Arg(static_cast<int>(PolicyKind::Random))
    ->Arg(static_cast<int>(PolicyKind::FIFO))
    ->Arg(static_cast<int>(PolicyKind::DIP))
    ->Arg(static_cast<int>(PolicyKind::DRRIP));

void
BM_TagePredict(benchmark::State &state)
{
    Tage tage;
    Rng rng(3);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        pc = 0x400000 + 4 * rng.nextInt(512);
        benchmark::DoNotOptimize(
            tage.predictAndUpdate(pc, rng.nextBool(0.7)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredict);

void
BM_UncoreAccess(benchmark::State &state)
{
    const UncoreConfig cfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    Uncore uncore(cfg, 1, 1);
    Rng rng(4);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        cycle += 10;
        benchmark::DoNotOptimize(uncore.access(
            cycle, 0, 64 * rng.nextInt(1 << 16), false, 0x400));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UncoreAccess);

void
BM_DetailedCoreUop(benchmark::State &state)
{
    const BenchmarkProfile &p = findProfile(
        state.range(0) == 0 ? "povray" : "mcf");
    PerfectUncore uncore(6);
    CoreConfig cfg;
    DetailedCore core(cfg, TraceStore::global().cursor(p), uncore,
                      0, 1ULL << 60, 1);
    std::uint64_t now = 0;
    std::uint64_t committed = 0;
    for (auto _ : state) {
        const std::uint64_t before = core.stats().committed;
        core.tick(now);
        const std::uint64_t next = core.nextEventCycle(now);
        now = std::max(now + 1, next == UINT64_MAX ? now + 1 : next);
        committed += core.stats().committed - before;
    }
    state.SetLabel(p.name);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(committed));
}
BENCHMARK(BM_DetailedCoreUop)->Arg(0)->Arg(1);

// One tag scan over a 16-way set (the Table II LLC geometry), per
// implementation. The hit way cycles through all 16 positions so
// early-exit paths are not flattered by a fixed match index.
// sse2/avx2 call the implementations directly (the dispatched
// find() routes 16-way sets to the inlined SSE2 body even on AVX2
// hosts — see cache/tagscan.hh).
void
BM_SwarTagCompare(benchmark::State &state)
{
    const auto path = static_cast<tagscan::Path>(state.range(0));
#ifdef WSEL_TAGSCAN_X86
    if (static_cast<int>(path) >
        static_cast<int>(tagscan::activePath())) {
        state.SkipWithError("path unsupported on this host");
        return;
    }
#else
    if (static_cast<int>(path) >=
        static_cast<int>(tagscan::Path::Sse2)) {
        state.SkipWithError("x86-only path");
        return;
    }
#endif
    alignas(64) std::uint32_t tags[16];
    for (std::uint32_t w = 0; w < 16; ++w)
        tags[w] = ((w + 1) << 1) | 1; // valid-tag encoding
    std::uint32_t i = 0;
    for (auto _ : state) {
        const std::uint32_t want = (((i & 15) + 1) << 1) | 1;
        ++i;
        std::uint32_t r = 0;
        switch (path) {
#ifdef WSEL_TAGSCAN_X86
          case tagscan::Path::Avx2:
            r = tagscan::findAvx2(tags, 16, want);
            break;
          case tagscan::Path::Sse2:
            r = tagscan::findSse2(tags, 16, want);
            break;
#endif
          case tagscan::Path::Swar:
            r = tagscan::findSwar(tags, 16, want);
            break;
          default:
            r = tagscan::findScalar(tags, 16, want);
            break;
        }
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(tagscan::toString(path));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwarTagCompare)
    ->Arg(static_cast<int>(tagscan::Path::Scalar))
    ->Arg(static_cast<int>(tagscan::Path::Swar))
    ->Arg(static_cast<int>(tagscan::Path::Sse2))
    ->Arg(static_cast<int>(tagscan::Path::Avx2));

// A gathered sweep of 16 independent 16-way probes (the wavefront
// engine's shape: one parked probe per resident cell, disjoint tag
// arrays), per implementation. Items = probes, so the per-probe
// cost is directly comparable with BM_SwarTagCompare's single-probe
// numbers — the difference is the call amortization and (on AVX2)
// the 2-probe 256-bit pairing the gathered kernels can afford.
void
BM_GatheredTagScan(benchmark::State &state)
{
    const auto path = static_cast<tagscan::Path>(state.range(0));
#ifdef WSEL_TAGSCAN_X86
    if (static_cast<int>(path) >
        static_cast<int>(tagscan::activePath())) {
        state.SkipWithError("path unsupported on this host");
        return;
    }
#else
    if (static_cast<int>(path) >=
        static_cast<int>(tagscan::Path::Sse2)) {
        state.SkipWithError("x86-only path");
        return;
    }
#endif
    constexpr std::size_t kProbes = 16;
    alignas(64) static std::uint32_t tags[kProbes][16];
    tagscan::Probe probes[kProbes];
    for (std::size_t p = 0; p < kProbes; ++p) {
        for (std::uint32_t w = 0; w < 16; ++w)
            tags[p][w] = ((w + 1) << 1) | 1;
        probes[p] = {tags[p], 16, 0};
    }
    std::uint32_t out[kProbes];
    std::uint32_t i = 0;
    for (auto _ : state) {
        for (std::size_t p = 0; p < kProbes; ++p)
            probes[p].want = ((((i + p) & 15) + 1) << 1) | 1;
        ++i;
        switch (path) {
#ifdef WSEL_TAGSCAN_X86
          case tagscan::Path::Avx2:
            tagscan::findManyAvx2(probes, kProbes, out);
            break;
          case tagscan::Path::Sse2:
            tagscan::findManySse2(probes, kProbes, out);
            break;
#endif
          case tagscan::Path::Swar:
            tagscan::findManySwar(probes, kProbes, out);
            break;
          default:
            tagscan::findManyScalar(probes, kProbes, out);
            break;
        }
        benchmark::DoNotOptimize(out);
    }
    state.SetLabel(tagscan::toString(path));
    state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_GatheredTagScan)
    ->Arg(static_cast<int>(tagscan::Path::Scalar))
    ->Arg(static_cast<int>(tagscan::Path::Swar))
    ->Arg(static_cast<int>(tagscan::Path::Sse2))
    ->Arg(static_cast<int>(tagscan::Path::Avx2));

// Whole cells through the batched engine (sim/batch.hh) at batch
// size B: the per-cell cost including uncore construction and lane
// reset, i.e. what a population shard pays per (workload, policy)
// cell. Items = cells.
void
BM_BatchStep(benchmark::State &state)
{
    constexpr std::uint64_t kTarget = 20000;
    static const BadcoModel m0 = buildBadcoModel(
        findProfile("mcf"), CoreConfig{}, kTarget, 6);
    static const BadcoModel m1 = buildBadcoModel(
        findProfile("povray"), CoreConfig{}, kTarget, 6);
    static const std::vector<const BadcoModel *> models = {&m0,
                                                           &m1};
    static const std::vector<UncoreConfig> ucfgs = {
        UncoreConfig::forCores(4, PolicyKind::LRU)};
    const auto batch = static_cast<std::uint32_t>(state.range(0));
    BadcoBatchRunner runner({ucfgs.data(), ucfgs.size()}, 4,
                            kTarget, models, batch);
    const std::uint32_t benches[4] = {0, 1, 0, 1};
    std::vector<double> out(static_cast<std::size_t>(batch) * 4);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        for (std::uint32_t i = 0; i < batch; ++i)
            runner.add(seed++, 0, {benches, 4}, out.data() + i * 4);
        runner.run();
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_BatchStep)->Arg(1)->Arg(8)->Arg(32);

// The same per-cell cost under wavefront interleaving: W = batch
// cells advance in lockstep with W resident uncores and gathered
// tag-scan sweeps (sim/batch.hh runWavefront). Compare against
// BM_BatchStep at the same batch size to see what the wave costs
// or saves per cell. Items = cells.
void
BM_WaveStep(benchmark::State &state)
{
    constexpr std::uint64_t kTarget = 20000;
    static const BadcoModel m0 = buildBadcoModel(
        findProfile("mcf"), CoreConfig{}, kTarget, 6);
    static const BadcoModel m1 = buildBadcoModel(
        findProfile("povray"), CoreConfig{}, kTarget, 6);
    static const std::vector<const BadcoModel *> models = {&m0,
                                                           &m1};
    static const std::vector<UncoreConfig> ucfgs = {
        UncoreConfig::forCores(4, PolicyKind::LRU)};
    const auto batch = static_cast<std::uint32_t>(state.range(0));
    BadcoBatchRunner runner({ucfgs.data(), ucfgs.size()}, 4,
                            kTarget, models, batch, batch);
    if (runner.wave() != batch) {
        state.SkipWithError("wave clamped below batch "
                            "(WSEL_WAVE_MEM too small)");
        return;
    }
    const std::uint32_t benches[4] = {0, 1, 0, 1};
    std::vector<double> out(static_cast<std::size_t>(batch) * 4);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        for (std::uint32_t i = 0; i < batch; ++i)
            runner.add(seed++, 0, {benches, 4}, out.data() + i * 4);
        runner.run();
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WaveStep)->Arg(2)->Arg(8)->Arg(32);

// Pinning a batch's trace chunks up front (trace/trace_store.hh
// BatchPin): the per-batch fixed cost the detailed path pays to
// take chunk refills out of its lanes' way. Chunks are prebuilt;
// items = chunk pins per iteration.
void
BM_BatchChunkPin(benchmark::State &state)
{
    static TraceStore store; // chunks shared across iterations
    const BenchmarkProfile &p = findProfile("mcf");
    constexpr std::uint64_t kUops =
        4 * TraceStore::kDefaultChunkUops;
    store.ensureBuilt(p, kUops);
    for (auto _ : state) {
        BatchPin pin;
        pin.pin(store, p, kUops);
        benchmark::DoNotOptimize(pin.held());
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_BatchChunkPin);

void
BM_BadcoMachineStep(benchmark::State &state)
{
    static const BadcoModel model = buildBadcoModel(
        findProfile("mcf"), CoreConfig{}, 50000, 6);
    const UncoreConfig cfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    Uncore uncore(cfg, 1, 1);
    BadcoMachine machine(model, uncore, 0, 1ULL << 60);
    for (auto _ : state)
        machine.run(machine.localClock() + 200);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(machine.stats().uops));
}
BENCHMARK(BM_BadcoMachineStep);

// -------------------------------------------------------------------
// Observability primitives (docs/OBSERVABILITY.md)
// -------------------------------------------------------------------

void
BM_ObsCounterInc(benchmark::State &state)
{
    obs::enableMetrics(state.range(0) != 0);
    obs::Counter &c = obs::counter("microbench.counter");
    for (auto _ : state)
        c.inc();
    obs::enableMetrics(false);
    state.SetLabel(state.range(0) ? "enabled" : "disabled");
    state.SetItemsProcessed(state.iterations());
}
// Threads(8) exercises the shard contention story: 8 threads
// incrementing one counter must not bounce a shared cache line.
BENCHMARK(BM_ObsCounterInc)->Arg(0)->Arg(1);
BENCHMARK(BM_ObsCounterInc)->Arg(1)->Threads(8);

void
BM_ObsSpan(benchmark::State &state)
{
    if (state.range(0)) {
        // Small ring: steady-state span cost includes the
        // drop-oldest path, the honest number for a long campaign.
        obs::enableTracing(1 << 10);
    } else {
        obs::disableTracing();
    }
    for (auto _ : state)
        obs::Span span("microbench.span");
    obs::disableTracing();
    state.SetLabel(state.range(0) ? "enabled" : "disabled");
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpan)->Arg(0)->Arg(1);

// -------------------------------------------------------------------
// Population-campaign building blocks (docs/PERFORMANCE.md,
// "Population campaigns")
// -------------------------------------------------------------------

// Baseline: materialize the whole 4-core population (12650
// Workloads, one heap vector each).
void
BM_EnumerateAll(benchmark::State &state)
{
    const WorkloadPopulation pop(22, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(pop.enumerateAll());
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(pop.size()));
}
BENCHMARK(BM_EnumerateAll);

// Streamed alternative: walk the same population with the
// successor-rule cursor; no per-workload allocation.
void
BM_UnrankIterator(benchmark::State &state)
{
    const WorkloadPopulation pop(22, 4);
    WorkloadCursor cur(pop, 0);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        if (cur.atEnd())
            cur = WorkloadCursor(pop, 0);
        sum += cur.benchmarks()[0];
        cur.next();
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnrankIterator);

// One campaign_v3 shard write (checksum + atomic replace); items =
// IPC cells persisted.
void
BM_CampaignV3ShardWrite(benchmark::State &state)
{
    const std::string dir = ".wsel_microbench_v3";
    std::filesystem::create_directories(dir);
    persist::V3Manifest m;
    m.fingerprint = 0x1234;
    m.simulator = "badco";
    m.cores = 4;
    m.targetUops = 1000;
    m.policies = {"LRU", "RND", "FIFO", "DIP", "DRRIP"};
    m.benchmarks.assign(22, "b");
    m.refIpc.assign(22, 1.0);
    m.popBenchmarks = 22;
    m.popCores = 4;
    m.firstRank = 0;
    m.lastRank = 12650;
    m.shardRows = 64 * 1024 / m.policies.size();
    const std::size_t cells = static_cast<std::size_t>(
        m.rowsInShard(0) * m.policies.size());
    const std::vector<double> payload(cells * m.cores, 1.0);
    for (auto _ : state)
        persist::writeV3Shard(dir, m, 0,
                              {payload.data(), payload.size()});
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cells));
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>(payload.size() *
                                  sizeof(double)));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_CampaignV3ShardWrite);

// Merging per-shard Welford partials: the per-campaign reduction
// cost of the streamed statistics (1024 partials per iteration).
void
BM_WelfordMerge(benchmark::State &state)
{
    std::vector<RunningStats> parts(1024);
    Rng rng(7);
    for (RunningStats &p : parts)
        for (int i = 0; i < 64; ++i)
            p.add(rng.nextDouble());
    for (auto _ : state) {
        RunningStats total;
        for (const RunningStats &p : parts)
            total.merge(p);
        benchmark::DoNotOptimize(total.mean());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(parts.size()));
}
BENCHMARK(BM_WelfordMerge);

} // namespace

BENCHMARK_MAIN();
