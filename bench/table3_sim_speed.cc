/**
 * @file
 * Table III reproduction: simulation speed (MIPS) of the detailed
 * simulator vs the BADCO simulator for 1, 2, 4 and 8 cores, and the
 * resulting speedup. The paper reports 0.17->0.017 MIPS for Zesto
 * and 2.5->1.2 MIPS for BADCO (speedups 15x to 68x); absolute
 * numbers differ on our scaled substrate, the shape (BADCO much
 * faster, speedup growing with core count) is the target.
 *
 * A second table reports host-parallel scaling: the same BADCO
 * campaign run with --jobs 1/2/4/8 on the exec/ work-stealing
 * pool, with wall-clock speedup over the serial run and a check
 * that every job count produced the identical IPC matrix
 * (docs/PARALLELISM.md).  WSEL_SCALE_WORKLOADS sizes the campaign
 * (default 24 workloads).
 *
 * A third section benchmarks the shared trace store hot path
 * (docs/PERFORMANCE.md): cells/sec of an 8-core BADCO campaign at
 * --jobs 1 and 8 (WSEL_TS_WORKLOADS sizes it, default 24), with
 * the trace_store.* observability counters sampled at the end.
 * When WSEL_BENCH_JSON names a file, the section is archived there
 * as JSON (tools/ci.sh stores it as BENCH_trace_store.json).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "exec/scheduler.hh"
#include "obs/metrics.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "trace/trace_store.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    // Count trace-store activity from the first chunk build: the
    // final section snapshots the trace_store.* counters.
    obs::enableMetrics();

    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const std::size_t reps =
        static_cast<std::size_t>(envU64("WSEL_SPEED_REPS", 6));

    std::printf("TABLE III. AVERAGE SIMULATION SPEEDUP "
                "(%llu uops/thread, %zu workloads per cell)\n\n",
                static_cast<unsigned long long>(target), reps);
    std::printf("%-18s %8s %8s %8s %8s\n", "number of cores", "1",
                "2", "4", "8");

    double mips_det[4] = {0, 0, 0, 0};
    double mips_bad[4] = {0, 0, 0, 0};
    const std::uint32_t core_counts[4] = {1, 2, 4, 8};

    for (int i = 0; i < 4; ++i) {
        const std::uint32_t k = core_counts[i];
        const UncoreConfig ucfg =
            UncoreConfig::forCores(k == 1 ? 2 : k, PolicyKind::LRU);
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), k);
        Rng rng(33 + k);
        std::vector<Workload> ws;
        for (std::size_t r = 0; r < reps; ++r)
            ws.push_back(pop.sampleUniform(rng));

        DetailedMulticoreSim det(CoreConfig{}, ucfg, k, target);
        BadcoModelStore store(CoreConfig{}, target,
                              ucfg.llcHitLatency,
                              defaultCacheDir());
        const auto models = store.getSuite(suite);
        BadcoMulticoreSim bad(ucfg, k, target);

        double det_insn = 0, det_sec = 0, bad_insn = 0, bad_sec = 0;
        for (const Workload &w : ws) {
            const SimResult rd = det.run(w, suite);
            det_insn += static_cast<double>(rd.instructions);
            det_sec += rd.wallSeconds;
            const SimResult rb = bad.run(w, models);
            bad_insn += static_cast<double>(rb.instructions);
            bad_sec += rb.wallSeconds;
        }
        mips_det[i] = det_insn / det_sec / 1e6;
        mips_bad[i] = bad_insn / bad_sec / 1e6;
    }

    std::printf("%-18s", "MIPS - detailed");
    for (int i = 0; i < 4; ++i)
        std::printf(" %8.3f", mips_det[i]);
    std::printf("   (paper Zesto: 0.170 0.096 0.049 0.017)\n");
    std::printf("%-18s", "MIPS - BADCO");
    for (int i = 0; i < 4; ++i)
        std::printf(" %8.2f", mips_bad[i]);
    std::printf("   (paper BADCO: 2.52 2.41 1.89 1.19)\n");
    std::printf("%-18s", "speedup");
    for (int i = 0; i < 4; ++i)
        std::printf(" %8.1f", mips_bad[i] / mips_det[i]);
    std::printf("   (paper: 14.8 25.2 38.9 68.1)\n");

    // Host-parallel scaling of one BADCO campaign across worker
    // threads.  The matrices must match bitwise for every job
    // count; the speedup column shows what the exec/ scheduler
    // buys on this host (bounded by its hardware threads).
    const std::size_t scale_n = static_cast<std::size_t>(
        envU64("WSEL_SCALE_WORKLOADS", 24));
    const std::uint32_t scale_cores = 4;
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), scale_cores);
    const auto workloads = subsamplePopulation(pop, scale_n);
    const UncoreConfig ucfg =
        UncoreConfig::forCores(scale_cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());

    std::printf("\nHOST-PARALLEL CAMPAIGN SCALING "
                "(badco, %u cores, %zu workloads x %zu policies, "
                "%u hardware threads)\n\n",
                scale_cores, workloads.size(),
                paperPolicies().size(),
                static_cast<unsigned>(exec::hardwareConcurrency()));
    std::printf("%-10s %10s %10s %12s\n", "jobs", "seconds",
                "speedup", "matrix");

    double serial_sec = 0.0;
    Campaign ref;
    const std::size_t job_counts[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
        CampaignOptions opts;
        opts.jobs = job_counts[i];
        const auto t0 = std::chrono::steady_clock::now();
        const Campaign c =
            runBadcoCampaign(workloads, paperPolicies(),
                             scale_cores, target, store, suite,
                             opts);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               t0)
                               .count();
        if (i == 0) {
            serial_sec = sec;
            ref = c;
        }
        const bool same = c.ipc == ref.ipc && c.refIpc == ref.refIpc;
        std::printf("%-10zu %10.2f %10.2f %12s\n", job_counts[i],
                    sec, serial_sec / sec,
                    same ? "identical" : "DIVERGED");
        if (!same)
            return 1;
    }

    // Trace-store throughput: cells/sec of an 8-core BADCO campaign
    // at jobs 1 and 8.  The cells walk the finalize()d SoA model
    // views and the optimized uncore, and model building streams
    // µops through shared TraceStore cursors, so this tracks the
    // docs/PERFORMANCE.md hot path end to end.
    const std::size_t ts_n = static_cast<std::size_t>(
        envU64("WSEL_TS_WORKLOADS", 24));
    const std::uint32_t ts_cores = 8;
    const WorkloadPopulation pop8(
        static_cast<std::uint32_t>(suite.size()), ts_cores);
    const auto ts_workloads = subsamplePopulation(pop8, ts_n);
    const UncoreConfig ucfg8 =
        UncoreConfig::forCores(ts_cores, PolicyKind::LRU);
    BadcoModelStore store8(CoreConfig{}, target, ucfg8.llcHitLatency,
                           defaultCacheDir());
    // Build the models outside the timed loop: the section measures
    // campaign cell throughput, not one-time model construction.
    (void)store8.getSuite(suite);
    const double cells = static_cast<double>(ts_workloads.size()) *
                         static_cast<double>(paperPolicies().size());

    std::printf("\nTRACE-STORE HOT PATH "
                "(badco, %u cores, %.0f cells)\n\n",
                ts_cores, cells);
    std::printf("%-10s %10s %12s %12s\n", "jobs", "seconds",
                "cells/sec", "matrix");

    double cps[2] = {0, 0};
    Campaign ts_ref;
    const std::size_t ts_jobs[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
        CampaignOptions opts;
        opts.jobs = ts_jobs[i];
        const auto t0 = std::chrono::steady_clock::now();
        const Campaign c =
            runBadcoCampaign(ts_workloads, paperPolicies(), ts_cores,
                             target, store8, suite, opts);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        cps[i] = cells / sec;
        if (i == 0)
            ts_ref = c;
        const bool same =
            c.ipc == ts_ref.ipc && c.refIpc == ts_ref.refIpc;
        std::printf("%-10zu %10.2f %12.1f %12s\n", ts_jobs[i], sec,
                    cps[i], same ? "identical" : "DIVERGED");
        if (!same)
            return 1;
    }

    const std::uint64_t chunks_built =
        obs::counter("trace_store.chunks_built").value();
    const std::uint64_t chunk_hits =
        obs::counter("trace_store.chunk_hits").value();
    const std::uint64_t chunks_evicted =
        obs::counter("trace_store.chunks_evicted").value();
    const std::size_t resident = TraceStore::global().residentBytes();
    std::printf("\ntrace store: %llu chunks built, %llu hits, "
                "%llu evicted, %zu bytes resident\n",
                static_cast<unsigned long long>(chunks_built),
                static_cast<unsigned long long>(chunk_hits),
                static_cast<unsigned long long>(chunks_evicted),
                resident);

    if (const char *json = std::getenv("WSEL_BENCH_JSON");
        json && *json) {
        FILE *f = std::fopen(json, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json);
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"trace_store\",\n"
            "  \"cores\": %u,\n"
            "  \"workloads\": %zu,\n"
            "  \"policies\": %zu,\n"
            "  \"target_uops\": %llu,\n"
            "  \"cells\": %.0f,\n"
            "  \"cells_per_sec_jobs1\": %.2f,\n"
            "  \"cells_per_sec_jobs8\": %.2f,\n"
            "  \"parallel_speedup\": %.2f,\n"
            "  \"trace_store\": {\n"
            "    \"chunks_built\": %llu,\n"
            "    \"chunk_hits\": %llu,\n"
            "    \"chunks_evicted\": %llu,\n"
            "    \"resident_bytes\": %zu\n"
            "  }\n"
            "}\n",
            ts_cores, ts_workloads.size(), paperPolicies().size(),
            static_cast<unsigned long long>(target), cells, cps[0],
            cps[1], cps[1] / cps[0],
            static_cast<unsigned long long>(chunks_built),
            static_cast<unsigned long long>(chunk_hits),
            static_cast<unsigned long long>(chunks_evicted),
            resident);
        std::fclose(f);
        std::printf("bench json written to %s\n", json);
    }
    return 0;
}
