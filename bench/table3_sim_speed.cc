/**
 * @file
 * Table III reproduction: simulation speed (MIPS) of the detailed
 * simulator vs the BADCO simulator for 1, 2, 4 and 8 cores, and the
 * resulting speedup. The paper reports 0.17->0.017 MIPS for Zesto
 * and 2.5->1.2 MIPS for BADCO (speedups 15x to 68x); absolute
 * numbers differ on our scaled substrate, the shape (BADCO much
 * faster, speedup growing with core count) is the target.
 *
 * A second table reports host-parallel scaling: the same BADCO
 * campaign run with --jobs 1/2/4/8 on the exec/ work-stealing
 * pool, with wall-clock speedup over the serial run and a check
 * that every job count produced the identical IPC matrix
 * (docs/PARALLELISM.md).  WSEL_SCALE_WORKLOADS sizes the campaign
 * (default 24 workloads).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "exec/scheduler.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const std::size_t reps =
        static_cast<std::size_t>(envU64("WSEL_SPEED_REPS", 6));

    std::printf("TABLE III. AVERAGE SIMULATION SPEEDUP "
                "(%llu uops/thread, %zu workloads per cell)\n\n",
                static_cast<unsigned long long>(target), reps);
    std::printf("%-18s %8s %8s %8s %8s\n", "number of cores", "1",
                "2", "4", "8");

    double mips_det[4] = {0, 0, 0, 0};
    double mips_bad[4] = {0, 0, 0, 0};
    const std::uint32_t core_counts[4] = {1, 2, 4, 8};

    for (int i = 0; i < 4; ++i) {
        const std::uint32_t k = core_counts[i];
        const UncoreConfig ucfg =
            UncoreConfig::forCores(k == 1 ? 2 : k, PolicyKind::LRU);
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), k);
        Rng rng(33 + k);
        std::vector<Workload> ws;
        for (std::size_t r = 0; r < reps; ++r)
            ws.push_back(pop.sampleUniform(rng));

        DetailedMulticoreSim det(CoreConfig{}, ucfg, k, target);
        BadcoModelStore store(CoreConfig{}, target,
                              ucfg.llcHitLatency,
                              defaultCacheDir());
        const auto models = store.getSuite(suite);
        BadcoMulticoreSim bad(ucfg, k, target);

        double det_insn = 0, det_sec = 0, bad_insn = 0, bad_sec = 0;
        for (const Workload &w : ws) {
            const SimResult rd = det.run(w, suite);
            det_insn += static_cast<double>(rd.instructions);
            det_sec += rd.wallSeconds;
            const SimResult rb = bad.run(w, models);
            bad_insn += static_cast<double>(rb.instructions);
            bad_sec += rb.wallSeconds;
        }
        mips_det[i] = det_insn / det_sec / 1e6;
        mips_bad[i] = bad_insn / bad_sec / 1e6;
    }

    std::printf("%-18s", "MIPS - detailed");
    for (int i = 0; i < 4; ++i)
        std::printf(" %8.3f", mips_det[i]);
    std::printf("   (paper Zesto: 0.170 0.096 0.049 0.017)\n");
    std::printf("%-18s", "MIPS - BADCO");
    for (int i = 0; i < 4; ++i)
        std::printf(" %8.2f", mips_bad[i]);
    std::printf("   (paper BADCO: 2.52 2.41 1.89 1.19)\n");
    std::printf("%-18s", "speedup");
    for (int i = 0; i < 4; ++i)
        std::printf(" %8.1f", mips_bad[i] / mips_det[i]);
    std::printf("   (paper: 14.8 25.2 38.9 68.1)\n");

    // Host-parallel scaling of one BADCO campaign across worker
    // threads.  The matrices must match bitwise for every job
    // count; the speedup column shows what the exec/ scheduler
    // buys on this host (bounded by its hardware threads).
    const std::size_t scale_n = static_cast<std::size_t>(
        envU64("WSEL_SCALE_WORKLOADS", 24));
    const std::uint32_t scale_cores = 4;
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), scale_cores);
    const auto workloads = subsamplePopulation(pop, scale_n);
    const UncoreConfig ucfg =
        UncoreConfig::forCores(scale_cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());

    std::printf("\nHOST-PARALLEL CAMPAIGN SCALING "
                "(badco, %u cores, %zu workloads x %zu policies, "
                "%u hardware threads)\n\n",
                scale_cores, workloads.size(),
                paperPolicies().size(),
                static_cast<unsigned>(exec::hardwareConcurrency()));
    std::printf("%-10s %10s %10s %12s\n", "jobs", "seconds",
                "speedup", "matrix");

    double serial_sec = 0.0;
    Campaign ref;
    const std::size_t job_counts[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
        CampaignOptions opts;
        opts.jobs = job_counts[i];
        const auto t0 = std::chrono::steady_clock::now();
        const Campaign c =
            runBadcoCampaign(workloads, paperPolicies(),
                             scale_cores, target, store, suite,
                             opts);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               t0)
                               .count();
        if (i == 0) {
            serial_sec = sec;
            ref = c;
        }
        const bool same = c.ipc == ref.ipc && c.refIpc == ref.refIpc;
        std::printf("%-10zu %10.2f %10.2f %12s\n", job_counts[i],
                    sec, serial_sec / sec,
                    same ? "identical" : "DIVERGED");
        if (!same)
            return 1;
    }
    return 0;
}
