/**
 * @file
 * Section VII-A reproduction: the simulation-overhead worked
 * example. Using this machine's measured simulation speeds, compute
 * the cost of reaching a given confidence for DIP vs LRU with
 * balanced random sampling vs the BADCO + workload-stratification
 * flow, mirroring the paper's cpu*hours arithmetic.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint32_t cores = 4;
    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();

    // Measure this machine's simulation speeds on a few workloads.
    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    Rng rng(99);
    DetailedMulticoreSim det(CoreConfig{}, ucfg, cores, target);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    const auto models = store.getSuite(suite);
    BadcoMulticoreSim bad(ucfg, cores, target);
    double det_i = 0, det_s = 0, bad_i = 0, bad_s = 0;
    for (int i = 0; i < 5; ++i) {
        const Workload w = pop.sampleUniform(rng);
        const SimResult rd = det.run(w, suite);
        const SimResult rb = bad.run(w, models);
        det_i += static_cast<double>(rd.instructions);
        det_s += rd.wallSeconds;
        bad_i += static_cast<double>(rb.instructions);
        bad_s += rb.wallSeconds;
    }
    const double mips_det = det_i / det_s / 1e6;
    const double mips_bad = bad_i / bad_s / 1e6;
    // Model building: two detailed single-thread traces per
    // benchmark (one perfect-uncore, one slow-uncore run).
    const double model_build_s =
        22.0 * 2.0 *
        (static_cast<double>(target) / (mips_det * 1e6));

    // Confidence targets from the population campaign.
    const Campaign c = standardBadcoCampaign(cores);
    const ThroughputMetric metric = ThroughputMetric::IPCT;
    const auto tx = c.perWorkloadThroughputs(
        c.policyIndex(PolicyKind::LRU), metric);
    const auto ty = c.perWorkloadThroughputs(
        c.policyIndex(PolicyKind::DIP), metric);
    const auto d = perWorkloadDifferences(metric, tx, ty);
    const DifferenceStats ds = differenceStats(d);

    auto rnd = makeRandomSampler(tx.size());
    WorkloadStrataConfig wcfg;
    auto wstrata = makeWorkloadStratifiedSampler(d, wcfg);
    Rng r2(3);
    const std::size_t draws = empiricalDraws();

    const double insn_per_workload =
        static_cast<double>(cores) * static_cast<double>(target);
    const double det_sec_per_workload =
        insn_per_workload / (mips_det * 1e6);
    const double bad_sec_per_workload =
        insn_per_workload / (mips_bad * 1e6);

    std::printf("SECTION VII-A. simulation-overhead example "
                "(DIP vs LRU, %s, %u cores)\n\n",
                toString(metric).c_str(), cores);
    std::printf("measured on this machine: detailed %.3f MIPS, "
                "BADCO %.1f MIPS (%.0fx)\n",
                mips_det, mips_bad, mips_bad / mips_det);
    std::printf("population cv = %.2f -> eq.(8) random sample: "
                "%zu workloads\n\n",
                ds.cv, requiredSampleSize(ds.cv));

    std::printf("%-34s %8s %12s %14s\n", "plan", "W", "confidence",
                "detailed-sim s");
    for (std::size_t w : {10u, 30u, 60u, 120u}) {
        if (w > tx.size())
            continue;
        const double conf = empiricalConfidence(
            *rnd, w, draws, metric, tx, ty, r2);
        std::printf("%-34s %8zu %12.3f %14.1f\n",
                    "random sampling, detailed sim", w, conf,
                    2.0 * static_cast<double>(w) *
                        det_sec_per_workload);
    }
    std::printf("\n");
    for (std::size_t w : {10u, 30u}) {
        const double conf = empiricalConfidence(
            *wstrata, w, draws, metric, tx, ty, r2);
        const double badco_s = 2.0 *
                               static_cast<double>(tx.size()) *
                               bad_sec_per_workload;
        std::printf("%-34s %8zu %12.3f %14.1f  (+%.0fs models, "
                    "+%.0fs badco population)\n",
                    "workload strata (badco-guided)", w, conf,
                    2.0 * static_cast<double>(w) *
                        det_sec_per_workload,
                    model_build_s, badco_s);
    }
    std::printf("\npaper arithmetic: stratification reached 99%% "
                "confidence at the cost of 75%% extra\nsimulation, "
                "where random sampling needed 300%% extra for 90%% "
                "— a 4x smaller overhead\nfor more confidence.\n");
    return 0;
}
