/**
 * @file
 * Distributed campaign service scaling (docs/ROBUSTNESS.md,
 * "Distributed campaigns"): cells/sec of one population campaign
 * served by 1/2/4/8 `wsel_worker` processes through the
 * coordinator, against the in-process population runner at
 * --jobs 8 on the same rank range.  The distributed path pays for
 * process isolation (socket round-trips per lease, per-worker
 * model loads and reference-IPC computation, shard files through
 * the kernel) and this bench quantifies that overhead.
 *
 * Environment knobs (beyond bench_util.hh's):
 *  - WSEL_SERVE_ROWS: population rows in the campaign
 *    (default 96);
 *  - WSEL_SERVE_SHARD_ROWS: rows per shard (default 4 — small
 *    shards so even 8 workers see plenty of leases).
 *
 * When WSEL_BENCH_JSON names a file, the numbers are archived
 * there as JSON (tools/ci.sh stores it as BENCH_serve.json).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "cache/replacement.hh"
#include "serve/context.hh"
#include "serve/coordinator.hh"
#include "serve/protocol.hh"
#include "serve/spawn.hh"
#include "sim/model_store.hh"
#include "sim/population.hh"

namespace
{

using namespace wsel;
using namespace wsel::bench;

namespace fs = std::filesystem;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

serve::CampaignSpec
benchSpec(std::uint64_t rows, std::uint64_t shard_rows,
          std::uint64_t target)
{
    serve::CampaignSpec s;
    s.cores = 4;
    s.targetUops = target;
    s.seed = 1;
    s.firstRank = 0;
    s.lastRank = rows;
    s.shardRows = shard_rows;
    s.policies = {"LRU", "RND", "FIFO", "DIP", "DRRIP"};
    for (const BenchmarkProfile &p : spec2006Suite())
        s.benchmarks.push_back(p.name);
    return s;
}

struct Run
{
    std::size_t workers = 0;
    double seconds = 0.0;
    double cellsPerSec = 0.0;
};

/** One timed distributed run with @p workers worker processes. */
Run
runDistributed(const serve::CampaignSpec &spec,
               std::size_t workers, const std::string &scratch,
               const std::string &cache)
{
    const std::string dir =
        scratch + "/w" + std::to_string(workers);
    fs::remove_all(dir);
    fs::create_directories(dir);

    serve::CoordinatorOptions opts;
    opts.socketPath = dir + "/serve.sock";
    opts.storeRoot = dir + "/store";
    opts.cacheDir = cache;
    serve::Coordinator coordinator(opts);
    std::thread loop([&] { coordinator.run(); });

    const std::string worker_bin = serve::findWorkerBinary();
    std::vector<pid_t> pids;
    for (std::size_t i = 0; i < workers; ++i)
        pids.push_back(serve::spawnProcess(
            {worker_bin, "--socket", opts.socketPath,
             "--cache-dir", cache}));

    Run r;
    r.workers = workers;
    const auto t0 = std::chrono::steady_clock::now();
    {
        serve::Client client(opts.socketPath);
        const serve::StatusMsg st =
            client.waitFinished(client.submit(spec));
        r.seconds = secondsSince(t0);
        if (st.state != serve::CampaignState::Done)
            WSEL_FATAL("distributed bench campaign failed: "
                       << st.message);
    }

    coordinator.requestStop();
    loop.join();
    for (const pid_t pid : pids)
        (void)serve::waitProcess(pid);

    const double cells = static_cast<double>(
        (spec.lastRank - spec.firstRank) * spec.policies.size());
    r.cellsPerSec = cells / r.seconds;
    fs::remove_all(dir);
    return r;
}

} // namespace

int
main()
{
    ObsSession obs_session;

    const std::uint64_t target = targetUops();
    const std::uint64_t rows = envU64("WSEL_SERVE_ROWS", 96);
    const std::uint64_t shard_rows =
        envU64("WSEL_SERVE_SHARD_ROWS", 4);
    const serve::CampaignSpec spec =
        benchSpec(rows, shard_rows, target);
    const double cells =
        static_cast<double>(rows * spec.policies.size());

    const std::string cache = defaultCacheDir();
    const std::string scratch =
        (fs::temp_directory_path() / "wsel_serve_scaling")
            .string();
    fs::remove_all(scratch);
    fs::create_directories(scratch);

    std::printf("DISTRIBUTED CAMPAIGN SERVICE SCALING\n");
    std::printf("%llu rows x %zu policies x %u cores at %llu uops "
                "(%llu-row shards)\n\n",
                static_cast<unsigned long long>(rows),
                spec.policies.size(), spec.cores,
                static_cast<unsigned long long>(target),
                static_cast<unsigned long long>(shard_rows));

    // Warm the model cache once so every configuration below pays
    // the same (small) model-load cost instead of the first run
    // alone paying the build.
    { serve::CampaignContext warm(spec, cache, 8); }

    // In-process baseline: the population runner at --jobs 8.
    double base_sec = 0.0;
    {
        const auto suite = spec2006Suite();
        std::vector<PolicyKind> policies;
        for (const std::string &p : spec.policies)
            policies.push_back(parsePolicyKind(p));
        const WorkloadPopulation pop(suite.size(), spec.cores);
        BadcoModelStore store(
            CoreConfig{}, target,
            UncoreConfig::forCores(spec.cores, PolicyKind::LRU)
                .llcHitLatency,
            cache);
        PopulationOptions opts;
        opts.jobs = 8;
        opts.lastRank = rows;
        opts.resume = false;
        opts.shardCells = static_cast<std::size_t>(
            shard_rows * spec.policies.size());
        const auto t0 = std::chrono::steady_clock::now();
        (void)runBadcoPopulationCampaign(pop, policies, target,
                                         store, suite, {},
                                         scratch + "/inproc.v3",
                                         opts);
        base_sec = secondsSince(t0);
    }
    const double base_cps = cells / base_sec;
    std::printf("%-24s %10s %10s %12s\n", "configuration", "procs",
                "seconds", "cells/sec");
    std::printf("%-24s %10d %10.2f %12.0f\n", "in-process --jobs 8",
                1, base_sec, base_cps);

    std::vector<Run> runs;
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
        const Run r = runDistributed(spec, n, scratch, cache);
        std::printf("%-24s %10zu %10.2f %12.0f\n",
                    "coordinator + workers", r.workers, r.seconds,
                    r.cellsPerSec);
        runs.push_back(r);
    }

    if (const char *json = std::getenv("WSEL_BENCH_JSON");
        json && *json) {
        FILE *f = std::fopen(json, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json);
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"serve_scaling\",\n"
            "  \"target_uops\": %llu,\n"
            "  \"rows\": %llu,\n"
            "  \"policies\": %zu,\n"
            "  \"cores\": %u,\n"
            "  \"shard_rows\": %llu,\n"
            "  \"cells\": %.0f,\n"
            "  \"inprocess_jobs8\": "
            "{\"seconds\": %.3f, \"cells_per_sec\": %.1f},\n"
            "  \"distributed\": [\n",
            static_cast<unsigned long long>(target),
            static_cast<unsigned long long>(rows),
            spec.policies.size(), spec.cores,
            static_cast<unsigned long long>(shard_rows), cells,
            base_sec, base_cps);
        for (std::size_t i = 0; i < runs.size(); ++i)
            std::fprintf(
                f,
                "    {\"workers\": %zu, \"seconds\": %.3f, "
                "\"cells_per_sec\": %.1f}%s\n",
                runs[i].workers, runs[i].seconds,
                runs[i].cellsPerSec,
                i + 1 < runs.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    }

    fs::remove_all(scratch);
    return 0;
}
