/**
 * @file
 * Ablation of the workload-stratification tunables (paper §VI-B2):
 * the stddev threshold TSD and the minimum stratum size WT control
 * the number of strata and the precision gain. Evaluated on the
 * 4-core DIP-vs-LRU pair under IPCT, like Figure 6's top panel.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const ThroughputMetric metric = ThroughputMetric::IPCT;
    const std::size_t draws = empiricalDraws();
    const Campaign c = standardBadcoCampaign(4);

    // The close pair (DRRIP vs DIP) keeps the curves off the 1.0
    // ceiling so parameter effects are visible.
    const auto tx = c.perWorkloadThroughputs(
        c.policyIndex(PolicyKind::DIP), metric);
    const auto ty = c.perWorkloadThroughputs(
        c.policyIndex(PolicyKind::DRRIP), metric);
    const auto d = perWorkloadDifferences(metric, tx, ty);

    std::printf("ABLATION: workload-stratification parameters "
                "(DRRIP vs DIP, IPCT, %zu workloads)\n\n",
                tx.size());
    std::printf("%10s %6s %8s | %s\n", "TSD", "WT", "strata",
                "confidence at W = 4 / 8 / 16");

    Rng rng(21);
    auto rnd = makeRandomSampler(tx.size());
    for (double tsd : {0.0001, 0.001, 0.01, 0.05}) {
        for (std::size_t wt : {10u, 50u, 200u}) {
            WorkloadStrataConfig cfg{tsd, wt};
            const std::size_t strata = countWorkloadStrata(d, cfg);
            auto s = makeWorkloadStratifiedSampler(d, cfg);
            std::printf("%10.4f %6zu %8zu |", tsd, wt, strata);
            for (std::size_t w : {4u, 8u, 16u}) {
                const double conf = empiricalConfidence(
                    *s, w, draws, metric, tx, ty, rng);
                std::printf(" %7.3f", conf);
            }
            std::printf("\n");
        }
    }

    std::printf("\nrandom-sampling reference:       |");
    for (std::size_t w : {4u, 8u, 16u}) {
        std::printf(" %7.3f", empiricalConfidence(*rnd, w, draws,
                                                  metric, tx, ty,
                                                  rng));
    }
    std::printf("\n\npaper defaults TSD=0.001, WT=50: a handful of "
                "strata already capture most of the gain;\n"
                "very small TSD multiplies strata with little "
                "benefit (W cannot go below the stratum count).\n");
    return 0;
}
