/**
 * @file
 * Shared machinery for the paper-reproduction bench binaries: env
 * knobs, cached campaign acquisition, and report formatting.
 *
 * Environment knobs (all optional):
 *  - WSEL_CACHE_DIR: results/model cache directory (default
 *    ./.wsel_cache; set empty to disable persistence).
 *  - WSEL_INSNS: µops per thread slice (default 100000; the paper
 *    uses 100M on real hardware traces).
 *  - WSEL_POP_LIMIT: cap on the 4-core BADCO population campaign
 *    (0 = the full 12650 workloads, the default).
 *  - WSEL_POP8: 8-core BADCO sample size (default 1500; paper 10000).
 *  - WSEL_DETAILED_WORKLOADS: detailed-simulator sample size for
 *    4 cores (default 60; paper 250); WSEL_DETAILED_WORKLOADS8 for
 *    8 cores (default 24).
 *  - WSEL_DRAWS: resampling count for empirical confidence
 *    (default 2000; paper 1000-10000).
 *  - WSEL_JOBS: worker threads for campaign simulation and model
 *    building (default: all hardware threads).  The IPC numbers
 *    are bitwise identical for any job count
 *    (docs/PARALLELISM.md).
 *  - WSEL_METRICS / WSEL_TRACE / WSEL_TRACE_BUF: observability
 *    outputs (docs/OBSERVABILITY.md).  WSEL_METRICS=1 prints a
 *    metrics table to stderr when the bench exits; WSEL_METRICS=
 *    FILE writes the JSON snapshot; WSEL_TRACE=FILE records a
 *    Chrome/Perfetto trace of the run.
 *  - WSEL_TRACE_MEM: resident budget of the shared trace store in
 *    MiB (default 512; docs/PERFORMANCE.md).  Evicted chunks are
 *    regenerated deterministically, so this trades memory for
 *    wall time without changing any result.
 *
 * Campaigns acquired here are fault-tolerant (docs/ROBUSTNESS.md):
 * they checkpoint per-workload progress to a `*.partial` journal
 * and resume after a kill, validate cached files with a checksum
 * and a configuration fingerprint (so changing WSEL_INSNS, the
 * policy list, or the suite re-simulates instead of silently
 * serving stale numbers), and quarantine corrupt caches to
 * `*.corrupt` instead of aborting.
 */

#ifndef WSEL_BENCH_BENCH_UTIL_HH
#define WSEL_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/confidence/confidence.hh"
#include "obs/obs.hh"
#include "stats/logging.hh"
#include "core/sampling/sampling.hh"
#include "sim/campaign.hh"
#include "trace/benchmark_profile.hh"

namespace wsel::bench
{

/**
 * Per-process observability bracket for the bench binaries: picks
 * up $WSEL_METRICS / $WSEL_TRACE on construction and writes the
 * configured outputs when the process exits, so every bench gets
 * `WSEL_METRICS=1 ./bench_x` reporting with no per-bench code.
 */
struct ObsSession
{
    ObsSession() { obs::initFromEnv(); }

    ~ObsSession()
    {
        // Default to the stderr table when metrics were enabled
        // programmatically without an output destination.
        if (obs::metricsEnabled() && obs::metricsOutput().empty())
            obs::setMetricsOutput("-");
        obs::flushOutputs();
    }
};

inline ObsSession obsSession;

/** Read an integer environment knob with a default. */
inline std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::strtoull(v, nullptr, 10);
}

inline std::uint64_t
targetUops()
{
    return envU64("WSEL_INSNS", 100000);
}

inline std::size_t
empiricalDraws()
{
    return static_cast<std::size_t>(envU64("WSEL_DRAWS", 2000));
}

/**
 * An ordered policy pair "a>b": the hypothesis that a outperforms b.
 * d(w) is oriented so positive values (and positive 1/cv) support
 * the hypothesis, matching Figures 4/5 where the bar sign shows
 * which policy of the pair wins.
 */
struct PolicyPair
{
    PolicyKind a; ///< hypothesized winner (left of '>')
    PolicyKind b; ///< hypothesized loser

    std::string
    label() const
    {
        return toString(a) + ">" + toString(b);
    }
};

/** The ten pairs in Figure 4/5 order. */
inline std::vector<PolicyPair>
paperPolicyPairs()
{
    using PK = PolicyKind;
    return {
        {PK::LRU, PK::Random},   {PK::LRU, PK::FIFO},
        {PK::LRU, PK::DIP},      {PK::LRU, PK::DRRIP},
        {PK::Random, PK::FIFO},  {PK::Random, PK::DIP},
        {PK::Random, PK::DRRIP}, {PK::FIFO, PK::DIP},
        {PK::FIFO, PK::DRRIP},   {PK::DIP, PK::DRRIP},
    };
}

/**
 * Difference statistics for a pair under a metric: d(w) oriented so
 * that positive mu means pair.a outperforms pair.b (Y=a, X=b in the
 * Section III model).
 */
inline DifferenceStats
pairStats(const Campaign &c, const PolicyPair &pair,
          ThroughputMetric m)
{
    const auto tb = c.perWorkloadThroughputs(c.policyIndex(pair.b),
                                             m);
    const auto ta = c.perWorkloadThroughputs(c.policyIndex(pair.a),
                                             m);
    return differenceStats(m, tb, ta);
}

/**
 * Deterministic subsample of a population as a rank-based
 * WorkloadSet: the full population costs O(1) memory (no
 * enumeration), a subsample costs O(limit) ranks.
 */
inline WorkloadSet
subsamplePopulation(const WorkloadPopulation &pop, std::size_t limit,
                    std::uint64_t seed = 2013)
{
    if (limit == 0 || limit >= pop.size()) {
        return WorkloadSet::fullPopulation(pop);
    }
    Rng rng(seed);
    std::vector<std::uint64_t> ranks;
    ranks.reserve(limit);
    for (std::size_t i : rng.sampleWithoutReplacement(
             static_cast<std::size_t>(pop.size()), limit))
        ranks.push_back(i);
    return WorkloadSet::fromRanks(pop, std::move(ranks));
}

/** Cached BADCO campaign over (a subsample of) the population. */
inline Campaign
badcoPopulationCampaign(std::uint32_t cores, std::size_t limit,
                        bool verbose = true)
{
    const std::uint64_t target = targetUops();
    const std::string key = "badco_pop_k" + std::to_string(cores) +
                            "_n" + std::to_string(limit) + "_u" +
                            std::to_string(target);
    const auto &suite = spec2006Suite();
    const std::uint64_t fp = campaignFingerprint(
        "badco", cores, target, paperPolicies(), suite);
    return cachedCampaign(key, fp, [&](const std::string &journal) {
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), cores);
        const auto workloads = subsamplePopulation(pop, limit);
        const UncoreConfig ucfg =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        BadcoModelStore store(CoreConfig{}, target,
                              ucfg.llcHitLatency,
                              defaultCacheDir());
        CampaignOptions opts;
        opts.verbose = verbose;
        opts.jobs = 0; // auto: $WSEL_JOBS, else hardware threads
        opts.journalPath = journal;
        std::fprintf(stderr,
                     "[wsel] simulating %zu x %zu workloads "
                     "(badco, %u cores)...\n",
                     workloads.size(), paperPolicies().size(),
                     cores);
        return runBadcoCampaign(workloads, paperPolicies(), cores,
                                target, store, suite, opts);
    });
}

/** Standard population-campaign sizes per core count. */
inline Campaign
standardBadcoCampaign(std::uint32_t cores)
{
    switch (cores) {
      case 2:
        return badcoPopulationCampaign(2, 0); // full 253
      case 4:
        return badcoPopulationCampaign(
            4, static_cast<std::size_t>(envU64("WSEL_POP_LIMIT",
                                               0)));
      case 8:
        return badcoPopulationCampaign(
            8, static_cast<std::size_t>(envU64("WSEL_POP8", 1500)));
      default:
        WSEL_FATAL("no standard campaign for " << cores << " cores");
    }
}

/** Cached detailed-simulator campaign on a random sample. */
inline Campaign
detailedSampleCampaign(std::uint32_t cores, bool verbose = true)
{
    const std::uint64_t target = targetUops();
    // 2 cores: the full 253-workload population, as in the paper.
    // 8 cores costs ~4x per workload, so its default is smaller
    // (override with WSEL_DETAILED_WORKLOADS8).
    std::size_t n;
    if (cores == 2) {
        n = 0;
    } else if (cores == 8) {
        n = static_cast<std::size_t>(
            envU64("WSEL_DETAILED_WORKLOADS8", 24));
    } else {
        n = static_cast<std::size_t>(
            envU64("WSEL_DETAILED_WORKLOADS", 60));
    }
    const std::string key = "detailed_k" + std::to_string(cores) +
                            "_n" + std::to_string(n) + "_u" +
                            std::to_string(target);
    const auto &suite = spec2006Suite();
    const std::uint64_t fp = campaignFingerprint(
        "detailed", cores, target, paperPolicies(), suite);
    return cachedCampaign(key, fp, [&](const std::string &journal) {
        const WorkloadPopulation pop(
            static_cast<std::uint32_t>(suite.size()), cores);
        const auto workloads = subsamplePopulation(pop, n);
        CampaignOptions opts;
        opts.verbose = verbose;
        opts.progressEvery = 50;
        opts.jobs = 0; // auto: $WSEL_JOBS, else hardware threads
        opts.journalPath = journal;
        std::fprintf(stderr,
                     "[wsel] simulating %zu x %zu workloads "
                     "(detailed, %u cores; this is the slow "
                     "simulator)...\n",
                     workloads.size(), paperPolicies().size(),
                     cores);
        return runDetailedCampaign(workloads, paperPolicies(), cores,
                                   target, CoreConfig{}, suite,
                                   opts);
    });
}

/** Render an ASCII bar for +-x in [-range, range]. */
inline std::string
bar(double x, double range, int half_width = 24)
{
    const int n = static_cast<int>(
        std::min(1.0, std::abs(x) / range) * half_width);
    std::string s(static_cast<std::size_t>(2 * half_width + 1), ' ');
    s[half_width] = '|';
    for (int i = 1; i <= n; ++i)
        s[half_width + (x >= 0 ? i : -i)] = '#';
    return s;
}

} // namespace wsel::bench

#endif // WSEL_BENCH_BENCH_UTIL_HH
