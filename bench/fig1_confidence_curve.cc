/**
 * @file
 * Figure 1 reproduction: the degree of confidence as a function of
 * x = (1/cv) * sqrt(W/2) (eq. 5), printed as the series the paper
 * plots, with a Monte-Carlo cross-check of the normal
 * approximation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/confidence/confidence.hh"
#include "stats/rng.hh"

int
main()
{
    using namespace wsel;

    std::printf("FIGURE 1. degree of confidence vs "
                "(1/cv)*sqrt(W/2)  (eq. 5)\n\n");
    std::printf("%8s %10s %12s\n", "x", "conf", "montecarlo");

    Rng rng(1);
    for (double x = -2.0; x <= 2.0001; x += 0.25) {
        const double conf = confidenceFromX(x);

        // Monte-Carlo: mean of W=8 samples from N(mu, sigma) with
        // (1/cv)sqrt(W/2) = x  =>  mu/sigma = x / sqrt(W/2).
        const int w = 8;
        const double mu_over_sigma = x / std::sqrt(w / 2.0);
        int wins = 0;
        const int trials = 40000;
        for (int t = 0; t < trials; ++t) {
            double sum = 0.0;
            for (int i = 0; i < w; ++i)
                sum += mu_over_sigma + rng.nextGaussian();
            wins += sum > 0.0;
        }
        std::printf("%8.2f %10.4f %12.4f\n", x, conf,
                    wins / static_cast<double>(trials));
    }

    std::printf("\nconfidence saturates at |x| = 2 "
                "(conf(2) = %.4f), giving eq. (8): W = 8*cv^2\n",
                confidenceFromX(2.0));
    std::printf("examples of eq. (8): cv=1 -> W=%zu, cv=2.5 -> "
                "W=%zu, cv=10 -> W=%zu\n",
                requiredSampleSize(1.0), requiredSampleSize(2.5),
                requiredSampleSize(10.0));
    return 0;
}
