/**
 * @file
 * Mixed-fidelity campaign sweep (docs/FIDELITY.md): how much of the
 * detailed ranking accuracy does the hybrid recover as a function
 * of the escalation budget?
 *
 * One seeded 4-core DIP-vs-DRRIP question over the full population
 * of a suite prefix is answered three ways: pure BADCO (budget 0),
 * hybrid at a ladder of budgets, and the pure detailed ground
 * truth.  For every budget the table reports the escalated row
 * fraction, the spliced mean d(w), its distance from the detailed
 * mean, whether the verdict sign agrees with the detailed one, and
 * whether the combined (sampling + model) bound contains the
 * detailed mean.  When WSEL_BENCH_JSON names a file, the rows are
 * archived there for CI trend tracking (tools/ci.sh release leg).
 *
 * Knobs: WSEL_INSNS (per-benchmark uops, default 100000),
 * WSEL_HYBRID_BENCHES (suite-prefix size, default 5).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fidelity/calibrate.hh"
#include "sim/hybrid.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;
    namespace fs = std::filesystem;
    using clock = std::chrono::steady_clock;

    const std::uint32_t cores = 4;
    const std::uint64_t target = targetUops();
    const auto &full = spec2006Suite();
    const std::size_t nbench = static_cast<std::size_t>(
        envU64("WSEL_HYBRID_BENCHES", 5));
    const std::vector<BenchmarkProfile> suite(
        full.begin(),
        full.begin() + std::min(nbench, full.size()));
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    const PolicyKind x = PolicyKind::DIP;
    const PolicyKind y = PolicyKind::DRRIP;
    const ThroughputMetric m = ThroughputMetric::IPCT;

    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());

    std::printf("HYBRID FIDELITY. escalation budget vs recovered "
                "ranking accuracy\n");
    std::printf("DIP vs DRRIP, IPCT, %u cores, %llu-row "
                "population, %llu uops/benchmark\n\n",
                cores, static_cast<unsigned long long>(pop.size()),
                static_cast<unsigned long long>(target));

    // Ground truth: the full campaign pair (cached across runs).
    CampaignOptions copts;
    copts.jobs = 0; // auto: $WSEL_JOBS, else hardware threads
    const std::string tag = "k" + std::to_string(cores) + "_b" +
                            std::to_string(suite.size()) + "_u" +
                            std::to_string(target);
    const std::uint64_t fpb =
        campaignFingerprint("badco", cores, target, {x, y}, suite);
    const Campaign bad = cachedCampaign(
        "hybrid_bench_badco_" + tag, fpb,
        [&](const std::string &journal) {
            CampaignOptions o = copts;
            o.journalPath = journal;
            return runBadcoCampaign(WorkloadSet::fullPopulation(pop),
                                    {x, y}, cores, target, store,
                                    suite, o);
        });
    const std::uint64_t fpd = campaignFingerprint(
        "detailed", cores, target, {x, y}, suite);
    const Campaign det = cachedCampaign(
        "hybrid_bench_detailed_" + tag, fpd,
        [&](const std::string &journal) {
            CampaignOptions o = copts;
            o.journalPath = journal;
            std::fprintf(stderr, "[wsel] detailed ground truth "
                                 "(%llu rows x 2 policies)...\n",
                         static_cast<unsigned long long>(
                             pop.size()));
            return runDetailedCampaign(
                WorkloadSet::fullPopulation(pop), {x, y}, cores,
                target, CoreConfig{}, suite, o);
        });

    auto meanD = [&](const Campaign &c) {
        const auto tx = c.perWorkloadThroughputs(0, m);
        const auto ty = c.perWorkloadThroughputs(1, m);
        double s = 0.0;
        for (std::size_t i = 0; i < tx.size(); ++i)
            s += perWorkloadDifference(m, tx[i], ty[i]);
        return s / static_cast<double>(tx.size());
    };
    const double mBadco = meanD(bad);
    const double mDetailed = meanD(det);
    std::printf("pure BADCO mean d = %+.6f   detailed mean d = "
                "%+.6f   %s\n\n",
                mBadco, mDetailed,
                (mBadco > 0) == (mDetailed > 0)
                    ? "(signs agree)"
                    : "(BADCO FLIPS the verdict)");

    // A profile calibrated from the pair; each budget run gets a
    // fresh copy so the online update of one run cannot leak into
    // the next.
    fidelity::ErrorProfile calibrated(suite);
    fidelity::calibrateProfile(calibrated, det, bad);

    const std::string scratch =
        (fs::temp_directory_path() / "wsel_bench_hybrid").string();
    fs::remove_all(scratch);

    struct Row
    {
        double budget;
        std::uint64_t escalated;
        double fraction;
        double meanD;
        double absErr;
        bool signOk;
        bool boundOk;
        double comboLo, comboHi;
        double seconds;
    };
    std::vector<Row> rows;

    std::printf("%-8s %10s %9s %11s %10s %6s %7s %9s\n", "budget",
                "escalated", "fraction", "mean-d", "|d-det|",
                "sign", "bound", "secs");
    for (double budget : {0.0, 0.05, 0.1, 0.2, 0.4}) {
        fidelity::ErrorProfile profile = calibrated;
        HybridOptions o;
        o.jobs = static_cast<std::size_t>(envU64("WSEL_JOBS", 0));
        o.quantile = 0.95;
        o.budgetFraction = budget;
        const std::string out =
            scratch + "/b" + std::to_string(budget);
        const auto t0 = clock::now();
        const HybridResult r = runHybridCampaign(
            pop, x, y, m, target, store, suite, profile, out, o);
        const double secs =
            std::chrono::duration<double>(clock::now() - t0)
                .count();
        const bool sign_ok =
            (r.report.meanD > 0) == (mDetailed > 0);
        const bool bound_ok = r.report.comboLo <= mDetailed &&
                              mDetailed <= r.report.comboHi;
        std::printf("%-8.2f %10llu %9.3f %+11.6f %10.6f %6s %7s "
                    "%8.1f\n",
                    budget,
                    static_cast<unsigned long long>(
                        r.report.escalated),
                    r.report.escalationFraction, r.report.meanD,
                    std::abs(r.report.meanD - mDetailed),
                    sign_ok ? "ok" : "FLIP",
                    bound_ok ? "ok" : "MISS", secs);
        rows.push_back({budget, r.report.escalated,
                        r.report.escalationFraction, r.report.meanD,
                        std::abs(r.report.meanD - mDetailed),
                        sign_ok, bound_ok, r.report.comboLo,
                        r.report.comboHi, secs});
    }
    std::printf("\nthe escalation budget buys back the detailed "
                "verdict: the spliced mean marches\nfrom the BADCO "
                "estimate toward the detailed one while the "
                "combined bound keeps\nthe ground truth inside "
                "(docs/FIDELITY.md).\n");

    if (const char *json = std::getenv("WSEL_BENCH_JSON");
        json && *json) {
        FILE *f = std::fopen(json, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json);
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"hybrid_fidelity\",\n"
                     "  \"target_uops\": %llu,\n"
                     "  \"cores\": %u,\n"
                     "  \"benchmarks\": %zu,\n"
                     "  \"population\": %llu,\n"
                     "  \"mean_d_badco\": %.8f,\n"
                     "  \"mean_d_detailed\": %.8f,\n"
                     "  \"runs\": [\n",
                     static_cast<unsigned long long>(target), cores,
                     suite.size(),
                     static_cast<unsigned long long>(pop.size()),
                     mBadco, mDetailed);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                f,
                "    {\"budget\": %.2f, \"escalated\": %llu, "
                "\"fraction\": %.4f, \"mean_d\": %.8f, "
                "\"abs_err_vs_detailed\": %.8f, "
                "\"sign_matches_detailed\": %s, "
                "\"bound_contains_detailed\": %s, "
                "\"combo_lo\": %.8f, \"combo_hi\": %.8f, "
                "\"seconds\": %.3f}%s\n",
                r.budget,
                static_cast<unsigned long long>(r.escalated),
                r.fraction, r.meanD, r.absErr,
                r.signOk ? "true" : "false",
                r.boundOk ? "true" : "false", r.comboLo, r.comboHi,
                r.seconds, i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "[wsel] bench json -> %s\n", json);
    }

    fs::remove_all(scratch);
    return 0;
}
