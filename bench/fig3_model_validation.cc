/**
 * @file
 * Figure 3 reproduction: degree of confidence that DRRIP outperforms
 * DIP as a function of sample size (WSU metric), for 2, 4 and 8
 * cores — the analytical model (eq. 5) against the experimental
 * degree of confidence measured by drawing many random samples from
 * the BADCO-simulated population.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const ThroughputMetric metric = ThroughputMetric::WSU;
    const std::size_t draws = empiricalDraws();
    const std::size_t sizes[] = {10, 20,  30,  50,  80, 120,
                                 180, 250, 400, 600, 1000};

    std::printf("FIGURE 3. confidence that DRRIP outperforms DIP vs "
                "sample size (metric: %s)\n",
                toString(metric).c_str());
    std::printf("model = eq. (5); exp = fraction of %zu random "
                "samples where DRRIP wins\n\n",
                draws);

    for (std::uint32_t cores : {2u, 4u, 8u}) {
        const Campaign c = standardBadcoCampaign(cores);
        const auto t_dip = c.perWorkloadThroughputs(
            c.policyIndex(PolicyKind::DIP), metric);
        const auto t_drrip = c.perWorkloadThroughputs(
            c.policyIndex(PolicyKind::DRRIP), metric);
        const DifferenceStats ds =
            differenceStats(metric, t_dip, t_drrip);
        auto sampler = makeRandomSampler(t_dip.size());
        Rng rng(42 + cores);

        std::printf("%u cores (population %zu, cv = %.2f):\n",
                    cores, t_dip.size(), ds.cv);
        std::printf("  %8s %10s %10s\n", "W", "model", "exp");
        for (std::size_t w : sizes) {
            if (w > t_dip.size())
                continue;
            const double model = modelConfidence(ds.cv, w);
            const double emp = empiricalConfidence(
                *sampler, w, draws, metric, t_dip, t_drrip, rng);
            std::printf("  %8zu %10.4f %10.4f\n", w, model, emp);
        }
        std::printf("\n");
    }
    std::printf("paper: the model curve matches the experimental "
                "points well even for small samples.\n");
    return 0;
}
