/**
 * @file
 * Figure 6 reproduction — the paper's central experiment: the
 * experimental degree of confidence as a function of sample size
 * for four sampling methods (simple random, balanced random,
 * benchmark stratification, workload stratification), on four
 * policy pairs (DIP>LRU, DRRIP>LRU, DRRIP>DIP, FIFO>RND), 4 cores,
 * IPCT metric, estimated with BADCO over the workload population.
 *
 * Two adaptive-engine rows ride along (docs/SAMPLING.md): a
 * ranked-set sampler column (Ekman-style order-statistic draws,
 * here ranked by the exact d(w) — the upper bound a BADCO pre-pass
 * approximates), and a per-pair sequential-stopping summary: the
 * workloads a live eq. 5 stopping rule needs to reach the 0.977
 * target, against the eq. 8 fixed sample size.
 */

#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.hh"

#include "core/adaptive/adaptive.hh"
#include "core/adaptive/controller.hh"

namespace
{

/**
 * One sequential-stopping replicate: shuffle the population with
 * @p seed, feed batches of @p batch differences to the controller
 * and return the workload count at the stop (the cells-to-reach-
 * confidence metric, per policy pair).
 */
std::size_t
sequentialStopWorkloads(std::span<const double> d, std::size_t batch,
                        std::uint64_t seed)
{
    using namespace wsel;
    SequentialConfig cfg;
    cfg.targetConfidence = 0.977;
    cfg.minWorkloads = batch;
    SequentialController ctl(cfg, d.size());
    Rng rng(seed);
    const auto order =
        rng.sampleWithoutReplacement(d.size(), d.size());
    std::size_t at = 0;
    while (!ctl.decision().stop() && at < order.size()) {
        RunningStats s;
        for (std::size_t i = 0; i < batch && at < order.size();
             ++i, ++at)
            s.add(d[order[at]]);
        ctl.observeBatch(s);
    }
    return static_cast<std::size_t>(ctl.decision().workloads);
}

} // namespace

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const ThroughputMetric metric = ThroughputMetric::IPCT;
    const std::size_t draws = empiricalDraws();
    const Campaign c = standardBadcoCampaign(4);
    const auto &suite = spec2006Suite();

    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), 4);
    const bool full_population = c.workloads.size() == pop.size();

    // Benchmark classes for benchmark stratification: Table IV.
    std::vector<std::uint32_t> cls;
    for (const auto &p : suite)
        cls.push_back(static_cast<std::uint32_t>(p.paperClass));

    // The paper's four panels are DIP>LRU, DRRIP>LRU, DRRIP>DIP and
    // FIFO>RND. Two adaptations: on our substrate RND slightly beats
    // FIFO (the paper's Zesto setup has FIFO ahead), so the last
    // pair is oriented RND>FIFO to keep the confidence curves
    // rising; and our policy gaps have smaller cv than the paper's,
    // so the method separation happens at smaller sample sizes —
    // the size grid therefore starts at W=2.
    const PolicyPair pairs[] = {
        {PolicyKind::DIP, PolicyKind::LRU},
        {PolicyKind::DRRIP, PolicyKind::LRU},
        {PolicyKind::DRRIP, PolicyKind::DIP},
        {PolicyKind::Random, PolicyKind::FIFO},
    };
    const std::size_t sizes[] = {2,  3,  4,  6,  8,   10, 15,
                                 20, 30, 40, 60, 100, 160};

    std::printf("FIGURE 6. experimental degree of confidence vs "
                "sample size\n");
    std::printf("metric %s, 4 cores, %zu-workload population, %zu "
                "draws per point\n",
                toString(metric).c_str(), c.workloads.size(),
                draws);
    if (!full_population) {
        std::printf("NOTE: population is subsampled "
                    "(WSEL_POP_LIMIT); balanced random sampling "
                    "needs the full population and is skipped.\n");
    }
    std::printf("\n");

    // Samplers that do not depend on the pair.
    auto rnd = makeRandomSampler(c.workloads.size());
    std::unique_ptr<Sampler> bal;
    if (full_population) {
        // The campaign enumerates the population in lexicographic
        // order, so rank == position.
        std::vector<std::size_t> index_of_rank(pop.size());
        for (std::size_t i = 0; i < index_of_rank.size(); ++i)
            index_of_rank[i] = i;
        bal = makeBalancedRandomSampler(pop,
                                        std::move(index_of_rank));
    }
    auto bench_strata =
        makeBenchmarkStratifiedSampler(c.workloads, cls, 3);

    for (const PolicyPair &pair : pairs) {
        const auto tx = c.perWorkloadThroughputs(
            c.policyIndex(pair.b), metric);
        const auto ty = c.perWorkloadThroughputs(
            c.policyIndex(pair.a), metric);
        const auto d = perWorkloadDifferences(metric, tx, ty);
        const DifferenceStats ds = differenceStats(d);

        // Workload stratification is rebuilt per pair (paper:
        // "strata are defined separately and independently for
        // each pair and metric"), TSD = 0.001, WT = 50.
        WorkloadStrataConfig wcfg;
        auto wstrata = makeWorkloadStratifiedSampler(d, wcfg);
        const std::size_t n_strata = countWorkloadStrata(d, wcfg);
        auto rset = makeRankedSetSampler(d);

        std::printf("%s   (cv = %.2f, eq.8 random W = %zu, "
                    "workload strata: %zu)\n",
                    pair.label().c_str(), ds.cv,
                    requiredSampleSize(ds.cv), n_strata);
        std::printf("  %6s %8s %8s %8s %8s %8s\n", "W", "random",
                    "balanced", "bench-st", "wkld-st", "rank-set");
        Rng rng(7);
        for (std::size_t w : sizes) {
            if (w > c.workloads.size())
                continue;
            const double c_rnd = empiricalConfidence(
                *rnd, w, draws, metric, tx, ty, rng);
            double c_bal = -1.0;
            if (bal) {
                c_bal = empiricalConfidence(*bal, w, draws, metric,
                                            tx, ty, rng);
            }
            const double c_bench = empiricalConfidence(
                *bench_strata, w, draws, metric, tx, ty, rng);
            const double c_wkld = empiricalConfidence(
                *wstrata, w, draws, metric, tx, ty, rng);
            const double c_rset = empiricalConfidence(
                *rset, w, draws, metric, tx, ty, rng);
            std::printf("  %6zu %8.3f ", w, c_rnd);
            if (c_bal >= 0)
                std::printf("%8.3f ", c_bal);
            else
                std::printf("%8s ", "-");
            std::printf("%8.3f %8.3f %8.3f\n", c_bench, c_wkld,
                        c_rset);
        }

        // Live sequential stopping on the same pair: workloads
        // until eq. 5 confidence first holds 0.977, averaged over
        // shuffled replicates (batches of 10).
        RunningStats stops;
        std::size_t worst = 0;
        for (std::uint64_t rep = 0; rep < 40; ++rep) {
            const std::size_t w = sequentialStopWorkloads(
                d, 10, 1000 + rep);
            stops.add(static_cast<double>(w));
            worst = std::max(worst, w);
        }
        std::printf("  sequential stop at 0.977: mean W = %.1f "
                    "(max %zu, eq.8 fixed W = %zu)\n\n",
                    stops.mean(), worst,
                    requiredSampleSize(ds.cv));
    }
    std::printf("paper shape: workload stratification reaches high "
                "confidence with the fewest workloads,\nbalanced "
                "random is second, benchmark stratification only "
                "slightly improves on random;\nranked-set draws "
                "(exact ranking) track workload stratification, and "
                "the sequential\nstopping rule lands near the eq. 8 "
                "sample size without knowing cv up front.\n");
    return 0;
}
