/**
 * @file
 * Figure 7 reproduction: the *actual* degree of confidence — the
 * sampling methods are driven by BADCO numbers (workload strata
 * built from BADCO d(w)), but the confidence is measured with the
 * detailed simulator, so the approximate simulator's own error is
 * included. Pair DIP vs LRU, IPCT, small sample sizes.
 *
 * As in the paper: 2 cores uses the full 253-workload population
 * simulated with the detailed simulator; 4 cores uses a detailed
 * random sample (paper: 250 workloads; default here is smaller,
 * see WSEL_DETAILED_WORKLOADS).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "sim/model_store.hh"

namespace
{

using namespace wsel;
using namespace wsel::bench;

/**
 * Confidence for one core count: detailed campaign supplies the
 * measured throughputs; BADCO supplies d(w) for stratification.
 */
void
runFor(std::uint32_t cores)
{
    const ThroughputMetric metric = ThroughputMetric::IPCT;
    const std::size_t draws = std::min<std::size_t>(
        empiricalDraws(), 1000); // paper uses 100 samples
    const Campaign det = detailedSampleCampaign(cores);
    const Campaign bad = standardBadcoCampaign(cores);

    // Detailed-measured throughputs on the detailed sample.
    const auto tx_det = det.perWorkloadThroughputs(
        det.policyIndex(PolicyKind::LRU), metric);
    const auto ty_det = det.perWorkloadThroughputs(
        det.policyIndex(PolicyKind::DIP), metric);

    // BADCO d(w) for the same workloads (by population rank).
    const auto &suite = spec2006Suite();
    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    std::map<std::uint64_t, std::size_t> bad_pos;
    for (std::size_t i = 0; i < bad.workloads.size(); ++i)
        bad_pos[pop.rank(bad.workloads[i])] = i;
    const auto tx_bad = bad.perWorkloadThroughputs(
        bad.policyIndex(PolicyKind::LRU), metric);
    const auto ty_bad = bad.perWorkloadThroughputs(
        bad.policyIndex(PolicyKind::DIP), metric);

    std::vector<double> d_bad;
    std::vector<std::size_t> usable; // detailed-sample positions
    for (std::size_t i = 0; i < det.workloads.size(); ++i) {
        const auto it = bad_pos.find(pop.rank(det.workloads[i]));
        if (it == bad_pos.end())
            continue;
        usable.push_back(i);
        d_bad.push_back(perWorkloadDifference(
            metric, tx_bad[it->second], ty_bad[it->second]));
    }
    // Restrict the detailed throughputs to the usable workloads.
    std::vector<double> tx, ty;
    for (std::size_t i : usable) {
        tx.push_back(tx_det[i]);
        ty.push_back(ty_det[i]);
    }

    std::printf("%u cores: %zu workloads simulated in detail, "
                "strata from BADCO d(w)\n",
                cores, tx.size());

    auto rnd = makeRandomSampler(tx.size());
    WorkloadStrataConfig wcfg;
    wcfg.wt = std::max<std::size_t>(4, tx.size() / 16);
    auto wstrata = makeWorkloadStratifiedSampler(d_bad, wcfg);
    std::vector<std::uint32_t> cls;
    for (const auto &p : suite)
        cls.push_back(static_cast<std::uint32_t>(p.paperClass));
    std::vector<Workload> usable_workloads;
    for (std::size_t i : usable)
        usable_workloads.push_back(det.workloads[i]);
    auto bench_strata =
        makeBenchmarkStratifiedSampler(usable_workloads, cls, 3);

    std::printf("  %6s %8s %8s %8s\n", "W", "random", "bench-st",
                "wkld-st");
    Rng rng(17);
    for (std::size_t w : {10u, 20u, 30u, 40u, 50u}) {
        if (w > tx.size())
            continue;
        const double c_rnd = empiricalConfidence(*rnd, w, draws,
                                                 metric, tx, ty,
                                                 rng);
        const double c_bench = empiricalConfidence(
            *bench_strata, w, draws, metric, tx, ty, rng);
        const double c_wkld = empiricalConfidence(
            *wstrata, w, draws, metric, tx, ty, rng);
        std::printf("  %6zu %8.3f %8.3f %8.3f\n", w, c_rnd,
                    c_bench, c_wkld);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("FIGURE 7. actual degree of confidence (measured "
                "with the detailed simulator)\nDIP vs LRU, IPCT; "
                "workload strata defined with BADCO\n\n");
    runFor(2);
    runFor(4);
    std::printf("paper shape: workload stratification still beats "
                "random and benchmark stratification\nwhen scored "
                "by the detailed simulator, though slightly less "
                "than the BADCO-only estimate\n(the approximate "
                "simulator's error is now included).\n");
    return 0;
}
