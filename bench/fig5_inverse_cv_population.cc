/**
 * @file
 * Figure 5 reproduction: 1/cv measured with BADCO on the full
 * 4-core population, for all ten policy pairs and all three
 * metrics, showing that the metrics rank policies identically
 * (same signs) but require different sample sizes (different
 * magnitudes).
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const Campaign c = standardBadcoCampaign(4);

    std::printf("FIGURE 5. 1/cv on the 4-core population "
                "(%zu workloads, BADCO)\n\n",
                c.workloads.size());
    std::printf("%-12s %8s %8s %8s   %s\n", "pair", "IPCT", "WSU",
                "HSU", "sign agreement / eq.(8) sample size (IPCT)");

    bool all_signs_agree = true;
    for (const PolicyPair &pair : paperPolicyPairs()) {
        double inv[3];
        int i = 0;
        for (ThroughputMetric m : paperMetrics())
            inv[i++] = pairStats(c, pair, m).inverseCv();
        const bool agree = (inv[0] >= 0) == (inv[1] >= 0) &&
                           (inv[1] >= 0) == (inv[2] >= 0);
        all_signs_agree = all_signs_agree && agree;
        const double cv_ipct = 1.0 / inv[0];
        std::printf("%-12s %8.3f %8.3f %8.3f   %s  W=%zu\n",
                    pair.label().c_str(), inv[0], inv[1], inv[2],
                    agree ? "same sign" : "SIGN FLIP",
                    requiredSampleSize(cv_ipct));
    }
    std::printf("\nall three metrics rank the policies identically: "
                "%s\n",
                all_signs_agree ? "yes (as in the paper)" : "NO");
    std::printf("paper shape: sign of 1/cv identical across "
                "metrics; magnitudes differ, so the required\n"
                "sample size (eq. 8) depends on the metric "
                "(paper example: RND-FIFO needs 32 with HSU,\n"
                "50 with IPCT).\n");
    return 0;
}
