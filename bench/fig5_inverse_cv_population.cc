/**
 * @file
 * Figure 5 reproduction: 1/cv measured with BADCO on the full
 * 4-core population, for all ten policy pairs and all three
 * metrics, showing that the metrics rank policies identically
 * (same signs) but require different sample sizes (different
 * magnitudes).
 *
 * Two population-engine sections extend the figure
 * (docs/PERFORMANCE.md, "Population campaigns"):
 *
 *  - a 4-core cells/sec comparison of the pre-existing campaign
 *    path (per-cell journal + in-memory matrix + campaign_v2 text
 *    save) against the streamed population runner (campaign_v3
 *    shards + streaming statistics) over the same rank range at
 *    --jobs 8 (WSEL_POP_BENCH_ROWS sizes it, default 600 rows);
 *  - an 8-core streamed run (WSEL_POP8_ROWS rows, default 1500;
 *    0 = the full 4.3M-workload population) reporting per-pair
 *    1/cv from the one-pass Welford statistics, cells/sec, and
 *    peak RSS — the paper's Figure 5 point that 8-core populations
 *    are only approachable with bounded-memory streaming;
 *  - a batched-cell-engine sweep (sim/batch.hh) over
 *    --batch-cells {1, 8, 16, 32, 64} on the same 4-core rank
 *    range, reporting cells/sec and peak RSS per batch size
 *    (docs/PERFORMANCE.md, "Batched execution"). Peak RSS is the
 *    process high-water mark, so later sweep points can only
 *    inherit earlier peaks — flat numbers across the sweep mean
 *    batching added nothing.
 *  - a wavefront composition matrix over --jobs x --batch-cells x
 *    --batch-wave (docs/PERFORMANCE.md, "Wavefront interleaving"):
 *    wave 1 is cell-major, larger waves keep W uncores resident
 *    and resolve their LLC probes in gathered SIMD sweeps. Every
 *    point produces byte-identical shards (tests/test_batch.cc),
 *    so the matrix again measures pure execution efficiency —
 *    including how the wave composes with thread-level (--jobs)
 *    parallelism.
 *
 * When WSEL_BENCH_JSON names a file, the engine sections are
 * archived there as JSON (tools/ci.sh stores it as
 * BENCH_population.json); WSEL_BENCH_JSON_BATCH does the same for
 * the batch sweep and wave matrix (BENCH_batch.json), which
 * tools/ci.sh also uses as its batched-throughput and wavefront
 * floor checks.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#if __has_include(<sys/resource.h>)
#include <sys/resource.h>
#define WSEL_HAVE_RUSAGE 1
#endif

#include "bench_util.hh"
#include "exec/scheduler.hh"
#include "sim/model_store.hh"
#include "sim/population.hh"

namespace
{

using namespace wsel;
using namespace wsel::bench;

double
peakRssMib()
{
#ifdef WSEL_HAVE_RUSAGE
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0)
        return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
    return 0.0;
}

std::vector<PopulationPairSpec>
paperPairSpecs(const std::vector<PolicyKind> &policies,
               ThroughputMetric m)
{
    auto index_of = [&](PolicyKind k) {
        for (std::size_t i = 0; i < policies.size(); ++i)
            if (policies[i] == k)
                return i;
        WSEL_FATAL("policy not in campaign");
    };
    std::vector<PopulationPairSpec> specs;
    for (const PolicyPair &pair : paperPolicyPairs()) {
        PopulationPairSpec s;
        s.y = index_of(pair.a); // hypothesized winner
        s.x = index_of(pair.b);
        s.metric = m;
        s.label = pair.label();
        specs.push_back(std::move(s));
    }
    return specs;
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;

    const Campaign c = standardBadcoCampaign(4);

    std::printf("FIGURE 5. 1/cv on the 4-core population "
                "(%zu workloads, BADCO)\n\n",
                c.workloads.size());
    std::printf("%-12s %8s %8s %8s   %s\n", "pair", "IPCT", "WSU",
                "HSU", "sign agreement / eq.(8) sample size (IPCT)");

    bool all_signs_agree = true;
    for (const PolicyPair &pair : paperPolicyPairs()) {
        double inv[3];
        int i = 0;
        for (ThroughputMetric m : paperMetrics())
            inv[i++] = pairStats(c, pair, m).inverseCv();
        const bool agree = (inv[0] >= 0) == (inv[1] >= 0) &&
                           (inv[1] >= 0) == (inv[2] >= 0);
        all_signs_agree = all_signs_agree && agree;
        const double cv_ipct = 1.0 / inv[0];
        std::printf("%-12s %8.3f %8.3f %8.3f   %s  W=%zu\n",
                    pair.label().c_str(), inv[0], inv[1], inv[2],
                    agree ? "same sign" : "SIGN FLIP",
                    requiredSampleSize(cv_ipct));
    }
    std::printf("\nall three metrics rank the policies identically: "
                "%s\n",
                all_signs_agree ? "yes (as in the paper)" : "NO");
    std::printf("paper shape: sign of 1/cv identical across "
                "metrics; magnitudes differ, so the required\n"
                "sample size (eq. 8) depends on the metric "
                "(paper example: RND-FIFO needs 32 with HSU,\n"
                "50 with IPCT).\n");

    // --------------------------------------------------------------
    // Population-engine comparison: old campaign path vs streamed
    // runner on the same 4-core rank range, both at 8 jobs.
    // --------------------------------------------------------------
    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const std::uint32_t b =
        static_cast<std::uint32_t>(suite.size());
    const WorkloadPopulation pop4(b, 4);
    const std::uint64_t bench_rows = std::min<std::uint64_t>(
        pop4.size(), envU64("WSEL_POP_BENCH_ROWS", 600));
    const auto policies = paperPolicies();
    const std::size_t np = policies.size();
    const std::string scratch = ".wsel_bench_population";
    fs::create_directories(scratch);

    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    // Build the models outside the timed runs.
    (void)store.getSuite(suite, exec::resolveJobs(0));

    const double cells4 =
        static_cast<double>(bench_rows) * static_cast<double>(np);
    std::printf("\nPOPULATION ENGINE (badco, 4 cores, %llu "
                "workloads x %zu policies, jobs=8)\n\n",
                static_cast<unsigned long long>(bench_rows), np);
    std::printf("%-28s %10s %12s\n", "path", "seconds", "cells/sec");

    double old_cps = 0.0;
    {
        const std::string journal = scratch + "/old_path.partial";
        const std::string out = scratch + "/old_path.campaign";
        std::error_code ec;
        fs::remove(journal, ec);
        CampaignOptions opts;
        opts.jobs = 8;
        opts.journalPath = journal;
        const auto t0 = std::chrono::steady_clock::now();
        const Campaign oc = runBadcoCampaign(
            WorkloadSet::populationRange(pop4, 0, bench_rows),
            policies, 4, target, store, suite, opts);
        oc.save(out);
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        old_cps = cells4 / sec;
        std::printf("%-28s %10.2f %12.0f\n",
                    "journal + v2 text save", sec, old_cps);
    }

    double new_cps = 0.0;
    {
        const std::string out = scratch + "/new_path.v3";
        PopulationOptions opts;
        opts.jobs = 8;
        opts.lastRank = bench_rows;
        opts.resume = false;
        const auto t0 = std::chrono::steady_clock::now();
        const PopulationResult r = runBadcoPopulationCampaign(
            pop4, policies, target, store, suite,
            paperPairSpecs(policies, ThroughputMetric::IPCT), out,
            opts);
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        new_cps = cells4 / sec;
        std::printf("%-28s %10.2f %12.0f\n",
                    "streamed v3 shards", sec, new_cps);
        (void)r;
    }
    const double speedup = old_cps > 0.0 ? new_cps / old_cps : 0.0;
    std::printf("%-28s %10s %11.2fx\n", "speedup", "", speedup);

    // --------------------------------------------------------------
    // Batched cell engine: cells/sec vs batch size B on the same
    // 4-core rank range. batch=1 is the serial engine shape; the
    // artifact bytes are identical at every B (tests/test_batch.cc),
    // so this sweep measures pure execution efficiency.
    // --------------------------------------------------------------
    struct BatchPoint
    {
        std::uint32_t batch;
        double sec;
        double cps;
        double rssMib;
    };
    std::vector<BatchPoint> batch_points;
    std::printf("\nBATCHED CELL ENGINE (badco, 4 cores, %llu "
                "workloads x %zu policies, jobs=8)\n\n",
                static_cast<unsigned long long>(bench_rows), np);
    std::printf("%-12s %10s %12s %12s\n", "batch-cells", "seconds",
                "cells/sec", "peak-RSS-MiB");
    for (std::uint32_t bsz : {1u, 8u, 16u, 32u, 64u}) {
        const std::string out =
            scratch + "/batch" + std::to_string(bsz) + ".v3";
        PopulationOptions opts;
        opts.jobs = 8;
        opts.lastRank = bench_rows;
        opts.resume = false;
        opts.batchCells = bsz;
        const auto t0 = std::chrono::steady_clock::now();
        const PopulationResult r = runBadcoPopulationCampaign(
            pop4, policies, target, store, suite, {}, out, opts);
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        batch_points.push_back(
            {bsz, sec, cells4 / sec, peakRssMib()});
        std::printf("%-12u %10.2f %12.0f %12.1f\n", bsz, sec,
                    batch_points.back().cps,
                    batch_points.back().rssMib);
        (void)r;
    }

    // --------------------------------------------------------------
    // Wavefront composition matrix: jobs x batch-cells x wave.
    // wave=1 repeats the cell-major shape so each (jobs, batch)
    // row carries its own baseline; the jobs=1 column isolates the
    // wave's single-thread effect from thread-level parallelism.
    // --------------------------------------------------------------
    struct WavePoint
    {
        std::size_t jobs;
        std::uint32_t batch;
        std::uint32_t wave;
        double sec;
        double cps;
        double rssMib;
    };
    std::vector<WavePoint> wave_points;
    std::printf("\nWAVEFRONT MATRIX (badco, 4 cores, %llu "
                "workloads x %zu policies)\n\n",
                static_cast<unsigned long long>(bench_rows), np);
    std::printf("%-6s %-12s %-11s %10s %12s %12s\n", "jobs",
                "batch-cells", "batch-wave", "seconds", "cells/sec",
                "peak-RSS-MiB");
    const auto run_wave_point = [&](std::size_t jobs,
                                    std::uint32_t bsz,
                                    std::uint32_t wave) {
        const std::string out =
            scratch + "/wave_j" + std::to_string(jobs) + "_b" +
            std::to_string(bsz) + "_w" + std::to_string(wave) +
            ".v3";
        PopulationOptions opts;
        opts.jobs = jobs;
        opts.lastRank = bench_rows;
        opts.resume = false;
        opts.batchCells = bsz;
        opts.batchWave = wave;
        const auto t0 = std::chrono::steady_clock::now();
        const PopulationResult r = runBadcoPopulationCampaign(
            pop4, policies, target, store, suite, {}, out, opts);
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        wave_points.push_back(
            {jobs, bsz, wave, sec, cells4 / sec, peakRssMib()});
        std::printf("%-6zu %-12u %-11u %10.2f %12.0f %12.1f\n",
                    jobs, bsz, wave, sec, wave_points.back().cps,
                    wave_points.back().rssMib);
        (void)r;
    };
    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}})
        for (std::uint32_t bsz : {8u, 32u})
            for (std::uint32_t wave : {1u, 8u})
                run_wave_point(jobs, bsz, wave);
    run_wave_point(8, 32, 32); // whole batch resident

    if (const char *json = std::getenv("WSEL_BENCH_JSON_BATCH");
        json && *json) {
        FILE *f = std::fopen(json, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json);
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"batch\",\n"
                     "  \"target_uops\": %llu,\n"
                     "  \"workloads\": %llu,\n"
                     "  \"policies\": %zu,\n"
                     "  \"jobs\": 8,\n"
                     "  \"points\": [\n",
                     static_cast<unsigned long long>(target),
                     static_cast<unsigned long long>(bench_rows),
                     np);
        for (std::size_t i = 0; i < batch_points.size(); ++i) {
            const BatchPoint &p = batch_points[i];
            std::fprintf(
                f,
                "    {\"batch\": %u, \"seconds\": %.2f, "
                "\"cells_per_sec\": %.2f, \"peak_rss_mib\": "
                "%.1f}%s\n",
                p.batch, p.sec, p.cps, p.rssMib,
                i + 1 == batch_points.size() ? "" : ",");
        }
        std::fprintf(f, "  ],\n  \"wave_points\": [\n");
        for (std::size_t i = 0; i < wave_points.size(); ++i) {
            const WavePoint &p = wave_points[i];
            std::fprintf(
                f,
                "    {\"jobs\": %zu, \"batch\": %u, \"wave\": %u, "
                "\"seconds\": %.2f, \"cells_per_sec\": %.2f, "
                "\"peak_rss_mib\": %.1f}%s\n",
                p.jobs, p.batch, p.wave, p.sec, p.cps, p.rssMib,
                i + 1 == wave_points.size() ? "" : ",");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    }

    // --------------------------------------------------------------
    // 8-core streamed population: per-pair 1/cv from the one-pass
    // statistics, plus throughput and peak RSS.
    // --------------------------------------------------------------
    const WorkloadPopulation pop8(b, 8);
    const std::uint64_t rows8_req = envU64("WSEL_POP8_ROWS", 1500);
    const std::uint64_t rows8 =
        rows8_req == 0 ? pop8.size()
                       : std::min<std::uint64_t>(pop8.size(),
                                                 rows8_req);
    BadcoModelStore store8(CoreConfig{}, target,
                           UncoreConfig::forCores(8, PolicyKind::LRU)
                               .llcHitLatency,
                           defaultCacheDir());
    (void)store8.getSuite(suite, exec::resolveJobs(0));

    PopulationOptions opts8;
    opts8.jobs = 0; // $WSEL_JOBS, else hardware threads
    opts8.lastRank = rows8;
    opts8.resume = false;
    const PopulationResult r8 = runBadcoPopulationCampaign(
        pop8, policies, target, store8, suite,
        paperPairSpecs(policies, ThroughputMetric::IPCT),
        scratch + "/pop8.v3", opts8);

    std::printf("\n8-CORE STREAMED POPULATION "
                "(%llu of %llu workloads, IPCT)\n\n",
                static_cast<unsigned long long>(rows8),
                static_cast<unsigned long long>(pop8.size()));
    std::printf("%-12s %8s %8s %8s\n", "pair", "1/cv", "eq8-W",
                "strata");
    for (const PopulationPairSummary &p : r8.pairs) {
        const StreamedWorkloadStrata strata(
            p.sketch, p.d.count(), WorkloadStrataConfig{});
        std::printf("%-12s %8.3f %8zu %7zu\n", p.spec.label.c_str(),
                    p.inverseCv(), requiredSampleSize(p.cv()),
                    strata.strataCount());
    }
    const double rss = peakRssMib();
    std::printf("\n%llu cells at %.0f cells/sec into %llu shards; "
                "peak RSS %.1f MiB\n",
                static_cast<unsigned long long>(r8.cellsSimulated),
                r8.cellsPerSec(),
                static_cast<unsigned long long>(r8.shardsWritten),
                rss);

    if (const char *json = std::getenv("WSEL_BENCH_JSON");
        json && *json) {
        FILE *f = std::fopen(json, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json);
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"population\",\n"
            "  \"target_uops\": %llu,\n"
            "  \"bench4\": {\n"
            "    \"workloads\": %llu,\n"
            "    \"policies\": %zu,\n"
            "    \"cells_per_sec_old\": %.2f,\n"
            "    \"cells_per_sec_new\": %.2f,\n"
            "    \"speedup\": %.3f\n"
            "  },\n"
            "  \"pop8\": {\n"
            "    \"workloads\": %llu,\n"
            "    \"population\": %llu,\n"
            "    \"cells\": %llu,\n"
            "    \"cells_per_sec\": %.2f,\n"
            "    \"shards\": %llu,\n"
            "    \"peak_rss_mib\": %.1f\n"
            "  }\n"
            "}\n",
            static_cast<unsigned long long>(target),
            static_cast<unsigned long long>(bench_rows), np,
            old_cps, new_cps, speedup,
            static_cast<unsigned long long>(rows8),
            static_cast<unsigned long long>(pop8.size()),
            static_cast<unsigned long long>(r8.cellsSimulated),
            r8.cellsPerSec(),
            static_cast<unsigned long long>(r8.shardsWritten), rss);
        std::fclose(f);
    }

    std::error_code ec;
    fs::remove_all(scratch, ec);
    return 0;
}
