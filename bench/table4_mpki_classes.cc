/**
 * @file
 * Table IV reproduction: classification of the 22 benchmarks by LLC
 * memory intensity (MPKI), measured with the detailed simulator on
 * the 4-core uncore running each benchmark alone.
 *
 * Also runs the automatic alternative mentioned in the paper's
 * §II-B (Vandierendonck & Seznec): k-means clustering of the MPKI
 * values instead of manual thresholds.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "cpu/detailed_core.hh"
#include "mem/uncore.hh"
#include "stats/kmeans.hh"
#include "trace/trace_generator.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);

    std::printf("TABLE IV. CLASSIFICATION OF BENCHMARKS BY MEMORY "
                "INTENSITY\n");
    std::printf("thresholds scaled %gx: Low < %g, Medium < %g, "
                "High >= %g MPKI (paper: 1 / 5)\n\n",
                kMpkiClassScale, 1.0 * kMpkiClassScale,
                5.0 * kMpkiClassScale, 5.0 * kMpkiClassScale);

    std::vector<double> mpkis;
    std::map<MpkiClass, std::vector<std::string>> classes;
    int agree = 0;
    std::printf("%-12s %8s %8s %8s %6s\n", "benchmark", "MPKI",
                "class", "paper", "match");
    for (const auto &p : suite) {
        Uncore uncore(ucfg, 1, 1);
        CoreConfig ccfg;
        DetailedCore core(ccfg, TraceStore::global().cursor(p),
                          uncore, 0, target, 1);
        std::uint64_t now = 0;
        while (!core.reachedTarget()) {
            core.tick(now);
            const std::uint64_t next = core.nextEventCycle(now);
            now = std::max(now + 1,
                           next == UINT64_MAX ? now + 1 : next);
        }
        const double mpki =
            static_cast<double>(uncore.coreStats(0).demandMisses) /
            (static_cast<double>(target) / 1000.0);
        mpkis.push_back(mpki);
        const MpkiClass cls = classifyMpki(mpki);
        classes[cls].push_back(p.name);
        const bool match = cls == p.paperClass;
        agree += match;
        std::printf("%-12s %8.2f %8s %8s %6s\n", p.name.c_str(),
                    mpki, toString(cls).c_str(),
                    toString(p.paperClass).c_str(),
                    match ? "ok" : "DIFF");
    }
    std::printf("\nagreement with the paper's classes: %d/22\n\n",
                agree);

    for (MpkiClass c :
         {MpkiClass::Low, MpkiClass::Medium, MpkiClass::High}) {
        std::printf("%-8s:", toString(c).c_str());
        for (const auto &n : classes[c])
            std::printf(" %s", n.c_str());
        std::printf("\n");
    }

    // Automatic 3-class clustering (paper §II-B alternative).
    Rng rng(5);
    double best_inertia = 1e300;
    KMeansResult best;
    for (int restart = 0; restart < 10; ++restart) {
        Rng r(100 + restart);
        KMeansResult res = kmeans1d(mpkis, 3, r);
        if (res.inertia < best_inertia) {
            best_inertia = res.inertia;
            best = std::move(res);
        }
    }
    (void)rng;
    std::printf("\nautomatic k-means(3) clustering of the same MPKI "
                "values:\n");
    for (std::size_t c = 0; c < 3; ++c) {
        std::printf("  cluster around %.2f MPKI:",
                    best.centroids[c][0]);
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (best.assignment[i] == c)
                std::printf(" %s", suite[i].name.c_str());
        }
        std::printf("\n");
    }
    return 0;
}
