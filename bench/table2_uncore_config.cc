/**
 * @file
 * Table II reproduction: the uncore configurations for 2, 4 and 8
 * cores, paper values next to the scaled values.
 */

#include <cstdio>

#include "bench_util.hh"
#include "mem/uncore_config.hh"

int
main()
{
    using namespace wsel;
    std::printf("TABLE II. UNCORE CONFIGURATIONS "
                "(paper -> this library)\n\n");
    const char *paper_size[] = {"1MB/5cyc", "2MB/6cyc", "4MB/7cyc"};
    const std::uint32_t cores[] = {2, 4, 8};
    std::printf("%-24s %-10s %-10s %-10s\n", "", "2 cores",
                "4 cores", "8 cores");
    std::printf("%-24s", "LLC size/latency (paper)");
    for (const char *s : paper_size)
        std::printf(" %-10s", s);
    std::printf("\n%-24s", "LLC size/latency (wsel)");
    for (std::uint32_t k : cores) {
        const auto c = UncoreConfig::forCores(k, PolicyKind::LRU);
        std::printf(" %llukB/%ucyc",
                    static_cast<unsigned long long>(
                        c.llc.sizeBytes / 1024),
                    c.llcHitLatency);
    }
    const auto c4 = UncoreConfig::forCores(4, PolicyKind::LRU);
    std::printf("\n\nshared parameters:\n");
    std::printf("  %-26s %u-way, %uB lines, write-back\n",
                "LLC organization", c4.llc.ways, c4.llc.lineBytes);
    std::printf("  %-26s %u entries\n", "LLC write buffer",
                c4.writeBufferEntries);
    std::printf("  %-26s %u\n", "MSHRs", c4.mshrs);
    std::printf("  %-26s IP-stride + stream, degree %u\n",
                "LLC prefetchers", c4.prefetchDegree);
    std::printf("  %-26s %u core cycles per 64B line "
                "(paper: 30; scaled 4x with trace traffic)\n",
                "FSB occupancy", c4.fsbCyclesPerTransfer);
    std::printf("  %-26s %u cycles\n", "DRAM latency",
                c4.dramLatency);
    std::printf("  %-26s first-touch page allocation, %uB pages\n",
                "address translation", c4.pageBytes);
    std::printf("\nfull 4-core description: %s\n",
                c4.describe().c_str());
    return 0;
}
