/**
 * @file
 * Figure 2 reproduction: detailed-simulator CPI vs BADCO CPI for
 * every thread of every sampled workload, on 2, 4 and 8 cores.
 * Prints the scatter points (bucketed) plus the paper's summary
 * statistics: average/max CPI error per core count and the average
 * speedup error across replacement policies (the paper: CPI error
 * 4.6/4.0/4.1 %, speedup error 0.66/0.61/1.43 %, max error < 22%).
 *
 * The comparison math lives in fidelity/calibrate.hh
 * (fidelity::compareCampaigns) and is shared with the mixed-
 * fidelity layer, which seeds its ErrorProfile from exactly this
 * detailed-vs-BADCO harness (docs/FIDELITY.md).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "fidelity/calibrate.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();

    std::printf("FIGURE 2. detailed CPI vs BADCO CPI\n\n");

    for (std::uint32_t cores : {2u, 4u, 8u}) {
        const Campaign det = detailedSampleCampaign(cores);

        // Re-simulate the same workloads with BADCO.
        const UncoreConfig u0 =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        BadcoModelStore store(CoreConfig{}, target, u0.llcHitLatency,
                              defaultCacheDir());
        CampaignOptions opts;
        const std::string key =
            "badco_on_detailed_sample_k" + std::to_string(cores) +
            "_n" + std::to_string(det.workloads.size()) + "_u" +
            std::to_string(target);
        const std::uint64_t fp = campaignFingerprint(
            "badco", cores, target, det.policies, suite);
        const Campaign bad = cachedCampaign(
            key, fp, [&](const std::string &journal) {
                opts.journalPath = journal;
                return runBadcoCampaign(det.workloads, det.policies,
                                        cores, target, store, suite,
                                        opts);
            });

        // The paper's CPI-error and speedup-error summary, shared
        // with the error-model calibration pass.
        const fidelity::CalibrationStats st =
            fidelity::compareCampaigns(det, bad);

        std::printf("%u cores (%zu workloads): avg |CPI error| = "
                    "%.2f%%  max = %.1f%%  avg speedup error = "
                    "%.2f%%\n",
                    cores, det.workloads.size(),
                    100.0 * st.cpiErr.mean(), 100.0 * st.maxCpiErr,
                    100.0 * st.speedupErr.mean());

        // Compact scatter: CPI_detailed vs CPI_badco percentiles.
        std::vector<double> ratio;
        ratio.reserve(st.cpiDetailed.size());
        for (std::size_t i = 0; i < st.cpiDetailed.size(); ++i)
            ratio.push_back(st.cpiBadco[i] / st.cpiDetailed[i]);
        std::printf("  CPI (detailed) p10/p50/p90: %.2f / %.2f / "
                    "%.2f   badco/detailed ratio p10/p50/p90: "
                    "%.2f / %.2f / %.2f   corr(CPI) = %.3f\n",
                    quantile(st.cpiDetailed, 0.1),
                    quantile(st.cpiDetailed, 0.5),
                    quantile(st.cpiDetailed, 0.9),
                    quantile(ratio, 0.1), quantile(ratio, 0.5),
                    quantile(ratio, 0.9),
                    pearsonCorrelation(st.cpiDetailed, st.cpiBadco));
    }
    std::printf("\npaper: avg CPI error 4.59/3.98/4.09%% for 2/4/8 "
                "cores, max < 22%%;\nspeedup error 0.66/0.61/1.43%%."
                " BADCO slightly underestimates CPI (ratio < 1).\n");
    return 0;
}
