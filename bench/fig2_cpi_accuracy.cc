/**
 * @file
 * Figure 2 reproduction: detailed-simulator CPI vs BADCO CPI for
 * every thread of every sampled workload, on 2, 4 and 8 cores.
 * Prints the scatter points (bucketed) plus the paper's summary
 * statistics: average/max CPI error per core count and the average
 * speedup error across replacement policies (the paper: CPI error
 * 4.6/4.0/4.1 %, speedup error 0.66/0.61/1.43 %, max error < 22%).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "stats/summary.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();

    std::printf("FIGURE 2. detailed CPI vs BADCO CPI\n\n");

    for (std::uint32_t cores : {2u, 4u, 8u}) {
        const Campaign det = detailedSampleCampaign(cores);

        // Re-simulate the same workloads with BADCO.
        const std::uint64_t t0 = target;
        const UncoreConfig u0 =
            UncoreConfig::forCores(cores, PolicyKind::LRU);
        BadcoModelStore store(CoreConfig{}, t0, u0.llcHitLatency,
                              defaultCacheDir());
        CampaignOptions opts;
        const std::string key =
            "badco_on_detailed_sample_k" + std::to_string(cores) +
            "_n" + std::to_string(det.workloads.size()) + "_u" +
            std::to_string(t0);
        const std::uint64_t fp = campaignFingerprint(
            "badco", cores, t0, det.policies, suite);
        const Campaign bad = cachedCampaign(
            key, fp, [&](const std::string &journal) {
                opts.journalPath = journal;
                return runBadcoCampaign(det.workloads, det.policies,
                                        cores, t0, store, suite,
                                        opts);
            });

        // CPI scatter for the LRU baseline (the paper plots one
        // point per benchmark per combination).
        RunningStats err;
        double max_err = 0.0;
        const std::size_t p_lru = det.policyIndex(PolicyKind::LRU);
        for (std::size_t w = 0; w < det.workloads.size(); ++w) {
            for (std::size_t k = 0; k < cores; ++k) {
                const double cpi_d = 1.0 / det.ipc[p_lru][w][k];
                const double cpi_b = 1.0 / bad.ipc[p_lru][w][k];
                const double e = (cpi_b - cpi_d) / cpi_d;
                err.add(std::abs(e));
                max_err = std::max(max_err, std::abs(e));
            }
        }

        // Speedup error: per policy pair vs LRU, compare the two
        // simulators' mean speedups.
        RunningStats sp_err;
        for (PolicyKind pol :
             {PolicyKind::Random, PolicyKind::FIFO, PolicyKind::DIP,
              PolicyKind::DRRIP}) {
            const std::size_t p = det.policyIndex(pol);
            RunningStats sd, sb;
            for (std::size_t w = 0; w < det.workloads.size(); ++w) {
                for (std::size_t k = 0; k < cores; ++k) {
                    sd.add(det.ipc[p][w][k] /
                           det.ipc[p_lru][w][k]);
                    sb.add(bad.ipc[p][w][k] /
                           bad.ipc[p_lru][w][k]);
                }
            }
            sp_err.add(std::abs(sb.mean() - sd.mean()) / sd.mean());
        }

        std::printf("%u cores (%zu workloads): avg |CPI error| = "
                    "%.2f%%  max = %.1f%%  avg speedup error = "
                    "%.2f%%\n",
                    cores, det.workloads.size(), 100.0 * err.mean(),
                    100.0 * max_err, 100.0 * sp_err.mean());

        // Compact scatter: CPI_detailed vs CPI_badco percentiles.
        std::vector<double> cpi_d_all, ratio;
        for (std::size_t w = 0; w < det.workloads.size(); ++w) {
            for (std::size_t k = 0; k < cores; ++k) {
                const double cd = 1.0 / det.ipc[p_lru][w][k];
                const double cb = 1.0 / bad.ipc[p_lru][w][k];
                cpi_d_all.push_back(cd);
                ratio.push_back(cb / cd);
            }
        }
        std::vector<double> cpi_b_all;
        for (std::size_t i = 0; i < cpi_d_all.size(); ++i)
            cpi_b_all.push_back(cpi_d_all[i] * ratio[i]);
        std::printf("  CPI (detailed) p10/p50/p90: %.2f / %.2f / "
                    "%.2f   badco/detailed ratio p10/p50/p90: "
                    "%.2f / %.2f / %.2f   corr(CPI) = %.3f\n",
                    quantile(cpi_d_all, 0.1),
                    quantile(cpi_d_all, 0.5),
                    quantile(cpi_d_all, 0.9), quantile(ratio, 0.1),
                    quantile(ratio, 0.5), quantile(ratio, 0.9),
                    pearsonCorrelation(cpi_d_all, cpi_b_all));
    }
    std::printf("\npaper: avg CPI error 4.59/3.98/4.09%% for 2/4/8 "
                "cores, max < 22%%;\nspeedup error 0.66/0.61/1.43%%."
                " BADCO slightly underestimates CPI (ratio < 1).\n");
    return 0;
}
