/**
 * @file
 * Ablation of the multiprogram measurement protocol (paper §IV-A
 * and footnote 4): the paper restarts a thread that finishes its
 * slice so it keeps producing interference until every thread is
 * done. The common lazier alternative halts finished threads, which
 * under-reports contention for the slow threads. This bench
 * quantifies the difference and its effect on a policy comparison.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/model_store.hh"
#include "sim/multicore.hh"
#include "stats/summary.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const std::uint32_t cores = 4;
    const std::uint64_t target = targetUops();
    const auto &suite = spec2006Suite();
    const UncoreConfig ucfg =
        UncoreConfig::forCores(cores, PolicyKind::LRU);
    BadcoModelStore store(CoreConfig{}, target, ucfg.llcHitLatency,
                          defaultCacheDir());
    const auto models = store.getSuite(suite);

    const WorkloadPopulation pop(
        static_cast<std::uint32_t>(suite.size()), cores);
    Rng rng(2013);
    std::vector<Workload> ws;
    for (std::size_t i : rng.sampleWithoutReplacement(
             static_cast<std::size_t>(pop.size()), 120))
        ws.push_back(pop.unrank(i));

    std::printf("ABLATION: restart-finished-threads protocol vs "
                "halt-at-target (%zu workloads, 4 cores)\n\n",
                ws.size());

    // Per-thread IPC inflation when finished threads halt.
    RunningStats inflation;
    BadcoMulticoreSim restart(ucfg, cores, target);
    BadcoMulticoreSim halt(ucfg, cores, target);
    halt.restartFinishedThreads(false);
    std::vector<double> t_restart, t_halt;
    for (const Workload &w : ws) {
        const SimResult a = restart.run(w, models);
        const SimResult b = halt.run(w, models);
        double slowest_a = 1e300, slowest_b = 1e300;
        for (std::uint32_t k = 0; k < cores; ++k) {
            slowest_a = std::min(slowest_a, a.ipc[k]);
            slowest_b = std::min(slowest_b, b.ipc[k]);
        }
        // The slowest thread benefits most when its co-runners
        // stop early.
        inflation.add(slowest_b / slowest_a - 1.0);
        std::vector<double> refs(cores, 1.0);
        t_restart.push_back(perWorkloadThroughput(
            ThroughputMetric::IPCT, a.ipc, refs));
        t_halt.push_back(perWorkloadThroughput(
            ThroughputMetric::IPCT, b.ipc, refs));
    }
    std::printf("slowest-thread IPC inflation when co-runners halt "
                "early:\n  mean %+.1f%%  max %+.1f%%\n\n",
                100.0 * inflation.mean(),
                100.0 * inflation.max());
    std::printf("per-workload IPCT correlation between protocols: "
                "%.4f\n",
                pearsonCorrelation(t_restart, t_halt));
    std::printf("mean IPCT: restart %.4f vs halt %.4f "
                "(halt overstates throughput by %+.1f%%)\n",
                arithmeticMean(t_restart), arithmeticMean(t_halt),
                100.0 * (arithmeticMean(t_halt) /
                             arithmeticMean(t_restart) -
                         1.0));
    std::printf("\nthe paper's protocol (restart) keeps pressure on "
                "the shared LLC for the full measurement\nwindow; "
                "halting finished threads systematically flatters "
                "slow threads.\n");
    return 0;
}
