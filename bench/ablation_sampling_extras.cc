/**
 * @file
 * Extension methods beyond the paper's four samplers, evaluated on
 * the same Figure-6 setup (DIP vs LRU and DRRIP vs DIP, IPCT,
 * 4 cores):
 *
 *  - workload stratification with Neyman-optimal allocation;
 *  - workload-cluster sampling (Van Biesbrouck-style §II-B);
 *  - benchmark stratification with automatically clustered classes
 *    (Vandierendonck/Seznec-style §II-B) instead of Table IV.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/classify/classify.hh"
#include "sim/characterize.hh"

int
main()
{
    using namespace wsel;
    using namespace wsel::bench;

    const ThroughputMetric metric = ThroughputMetric::IPCT;
    const std::size_t draws = empiricalDraws();
    const Campaign c = standardBadcoCampaign(4);
    const auto &suite = spec2006Suite();

    // Automatic benchmark classes from measured features.
    const UncoreConfig ucfg =
        UncoreConfig::forCores(4, PolicyKind::LRU);
    std::fprintf(stderr, "[wsel] characterizing the suite for "
                         "automatic classes...\n");
    const auto feats = characterizeSuite(suite, CoreConfig{}, ucfg,
                                         targetUops());
    Rng cls_rng(3);
    const auto auto_cls = classifyByFeatures(
        featureMatrix(feats), 3, BenchmarkFeatures::kLlcMpkiColumn,
        cls_rng);
    std::vector<std::uint32_t> table4_cls;
    for (const auto &p : suite)
        table4_cls.push_back(
            static_cast<std::uint32_t>(p.paperClass));

    const PolicyPair pairs[] = {
        {PolicyKind::DIP, PolicyKind::LRU},
        {PolicyKind::DRRIP, PolicyKind::DIP},
    };
    const std::size_t sizes[] = {10, 20, 30, 50, 80, 120};

    std::printf("EXTENSION: sampling methods beyond the paper "
                "(IPCT, 4 cores, %zu workloads, %zu draws)\n\n",
                c.workloads.size(), draws);

    for (const PolicyPair &pair : pairs) {
        const auto tx = c.perWorkloadThroughputs(
            c.policyIndex(pair.b), metric);
        const auto ty = c.perWorkloadThroughputs(
            c.policyIndex(pair.a), metric);
        const auto d = perWorkloadDifferences(metric, tx, ty);

        auto rnd = makeRandomSampler(tx.size());
        WorkloadStrataConfig prop;
        auto ws_prop = makeWorkloadStratifiedSampler(d, prop);
        WorkloadStrataConfig ney = prop;
        ney.allocation = Allocation::Neyman;
        auto ws_ney = makeWorkloadStratifiedSampler(d, ney);
        auto bench_t4 = makeBenchmarkStratifiedSampler(
            c.workloads, table4_cls, 3);
        auto bench_auto = makeBenchmarkStratifiedSampler(
            c.workloads, auto_cls, 3);
        Rng clu_rng(11);
        auto cluster = makeWorkloadClusterSampler(
            classCountFeatures(c.workloads, table4_cls, 3), 12,
            clu_rng);

        std::printf("%s\n", pair.label().c_str());
        std::printf("  %6s %8s %8s %8s %8s %8s %8s\n", "W",
                    "random", "wkld-st", "neyman", "bench-t4",
                    "bench-au", "cluster");
        Rng rng(7);
        for (std::size_t w : sizes) {
            std::printf("  %6zu", w);
            for (Sampler *s :
                 {rnd.get(), ws_prop.get(), ws_ney.get(),
                  bench_t4.get(), bench_auto.get(),
                  cluster.get()}) {
                std::printf(" %8.3f",
                            empiricalConfidence(*s, w, draws,
                                                metric, tx, ty,
                                                rng));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("expected shape: Neyman tracks or slightly beats "
                "proportional allocation; class-count\nworkload "
                "clustering sits between benchmark stratification "
                "and d(w)-based stratification\n(it knows the "
                "workload composition but not the measured "
                "difference).\n");
    return 0;
}
