/**
 * @file
 * Ablations of the DIP and DRRIP design parameters (DESIGN.md §5):
 * PSEL width, leader-set spacing, bimodal throttle and RRPV width,
 * evaluated on a thrash-plus-reuse traffic mix where the insertion
 * policy matters most.
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "cache/cache.hh"

namespace
{

using namespace wsel;

const CacheGeometry kGeom{64 * 1024, 16, 64}; // 1024 lines

/**
 * Hit rate on mixed traffic: a recency-friendly hot set (half the
 * capacity), a cyclic thrash scan at 1.5x capacity, and noise.
 */
double
runTraffic(Cache &cache)
{
    Rng rng(7);
    std::uint64_t hits = 0, total = 0;
    for (std::uint64_t round = 0; round < 60000; ++round) {
        std::uint64_t addr;
        const double r = rng.nextDouble();
        if (r < 0.55) {
            addr = 64 * rng.nextInt(512); // hot: 512 lines
        } else if (r < 0.9) {
            addr = (1ULL << 24) + 64 * (round % 1536); // thrash
        } else {
            addr = (1ULL << 26) + 64 * rng.nextInt(16384); // noise
        }
        hits += cache.access(addr, false).hit;
        ++total;
    }
    return static_cast<double>(hits) / static_cast<double>(total);
}

double
dipHitRate(const DuelingConfig &cfg)
{
    Cache c(kGeom,
            [&cfg]() {
                return makeDip(kGeom.sets(), kGeom.ways, 1, cfg);
            },
            "dip-ablation");
    return runTraffic(c);
}

double
drripHitRate(const DuelingConfig &cfg, std::uint32_t rrpv_bits)
{
    Cache c(kGeom,
            [&cfg, rrpv_bits]() {
                return makeDrrip(kGeom.sets(), kGeom.ways, 1, cfg,
                                 rrpv_bits);
            },
            "drrip-ablation");
    return runTraffic(c);
}

} // namespace

int
main()
{
    using namespace wsel;

    std::printf("ABLATION: insertion-policy design parameters\n");
    std::printf("traffic: 55%% reuse (0.5x capacity) + 35%% thrash "
                "scan (1.5x capacity) + 10%% noise\n\n");

    std::printf("baseline hit rates:\n");
    for (PolicyKind k :
         {PolicyKind::LRU, PolicyKind::Random, PolicyKind::FIFO,
          PolicyKind::NRU, PolicyKind::PLRU, PolicyKind::SRRIP,
          PolicyKind::BRRIP, PolicyKind::LIP, PolicyKind::BIP,
          PolicyKind::DIP, PolicyKind::DRRIP}) {
        Cache c(kGeom, k, 1);
        std::printf("  %-6s %.4f\n", toString(k).c_str(),
                    runTraffic(c));
    }

    std::printf("\nDIP leader-set spacing (one leader pair per N "
                "sets; paper-standard 32):\n");
    for (std::uint32_t spacing : {4u, 8u, 16u, 32u, 64u}) {
        DuelingConfig cfg;
        cfg.leaderSpacing = spacing;
        std::printf("  spacing %2u: hit rate %.4f\n", spacing,
                    dipHitRate(cfg));
    }

    std::printf("\nDIP PSEL width:\n");
    for (std::uint32_t bits : {6u, 8u, 10u, 12u}) {
        DuelingConfig cfg;
        cfg.pselBits = bits;
        std::printf("  psel %2u bits: hit rate %.4f\n", bits,
                    dipHitRate(cfg));
    }

    std::printf("\nDIP/BIP bimodal throttle (1-in-N MRU "
                "insertions):\n");
    for (std::uint32_t eps : {8u, 16u, 32u, 64u, 128u}) {
        DuelingConfig cfg;
        cfg.bimodalEpsilon = eps;
        std::printf("  epsilon %3u: hit rate %.4f\n", eps,
                    dipHitRate(cfg));
    }

    std::printf("\nDRRIP RRPV width:\n");
    for (std::uint32_t bits : {1u, 2u, 3u, 4u}) {
        DuelingConfig cfg;
        std::printf("  rrpv %u bits: hit rate %.4f\n", bits,
                    drripHitRate(cfg, bits));
    }

    std::printf("\nexpected shape: dueling parameters are "
                "second-order (DIP robust across them);\nRRPV of 2 "
                "bits is the sweet spot, as in Jaleel et al.\n");
    return 0;
}
